//! The [`Arbitrary`] trait and the `any::<T>()` entry point.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical "generate anything" strategy.
pub trait Arbitrary: Sized {
    /// The canonical strategy for this type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// Returns the canonical strategy for `T` (e.g. `any::<bool>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Canonical strategy for `bool`: a fair coin.
#[derive(Clone, Copy, Debug)]
pub struct AnyBool;

impl Strategy for AnyBool {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for bool {
    type Strategy = AnyBool;

    fn arbitrary() -> AnyBool {
        AnyBool
    }
}

macro_rules! impl_arbitrary_full_range_int {
    ($($t:ty => $any:ident),* $(,)?) => {$(
        /// Canonical full-range strategy for the corresponding integer type.
        #[derive(Clone, Copy, Debug)]
        pub struct $any;

        impl Strategy for $any {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }

        impl Arbitrary for $t {
            type Strategy = $any;

            fn arbitrary() -> $any {
                $any
            }
        }
    )*};
}

impl_arbitrary_full_range_int! {
    u8 => AnyU8,
    u16 => AnyU16,
    u32 => AnyU32,
    u64 => AnyU64,
    usize => AnyUsize,
    i8 => AnyI8,
    i16 => AnyI16,
    i32 => AnyI32,
    i64 => AnyI64,
    isize => AnyIsize,
}
