//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! crate.
//!
//! Supports the subset this workspace's property tests use: the [`proptest!`]
//! macro with `#![proptest_config(...)]`, `prop_assert!` / `prop_assert_eq!` /
//! `prop_assume!`, the [`strategy::Strategy`] trait with `prop_map`, numeric
//! range and tuple strategies, `prop::collection::vec`, `prop::sample::select`,
//! `prop::option::of` and `any::<bool>()`.
//!
//! Unlike the real crate there is **no shrinking** and no failure persistence:
//! a failing case panics with the generated inputs' case number only. Cases
//! are generated from a deterministic per-test seed so failures reproduce.

#![forbid(unsafe_code)]

pub mod arbitrary;
pub mod collection;
pub mod option;
pub mod sample;
pub mod strategy;
pub mod test_runner;

/// What `use proptest::prelude::*` is expected to bring into scope.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};

    /// Namespaced access to strategy constructors (`prop::collection::vec`,
    /// `prop::sample::select`, `prop::option::of`).
    pub mod prop {
        pub use crate::collection;
        pub use crate::option;
        pub use crate::sample;
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }` item
/// expands to a `#[test]` that runs `body` against `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::test_runner::Config::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($config:expr); ) => {};
    (
        config = ($config:expr);
        $(#[$meta:meta])*
        fn $name:ident( $($arg:pat in $strategy:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::deterministic(stringify!($name));
            for case in 0..config.cases {
                let outcome = (|| -> ::core::result::Result<(), $crate::test_runner::TestCaseError> {
                    $(let $arg = $crate::strategy::Strategy::generate(&($strategy), &mut rng);)+
                    $body
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(error) = outcome {
                    ::core::panic!(
                        "property `{}` failed at case {}/{}: {}",
                        stringify!($name), case + 1, config.cases, error
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($config); $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the current case (not
/// the whole process) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                ::std::format!($($fmt)*),
            ));
        }
    };
}

/// Asserts two values are equal inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left == *right,
            "assertion failed: `{:?}` != `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left == *right, $($fmt)*);
    }};
}

/// Asserts two values are unequal inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            *left != *right,
            "assertion failed: `{:?}` == `{:?}`", left, right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(*left != *right, $($fmt)*);
    }};
}

/// Skips the current case (counting it as a success) when the precondition
/// does not hold. The real crate rejects and retries; for this stand-in a
/// skipped case simply passes.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}
