//! The [`Strategy`] trait plus the built-in numeric-range, tuple and mapping
//! strategies.

use std::ops::{Range, RangeInclusive};

use crate::test_runner::TestRng;

/// A recipe for generating values of one type. Unlike the real crate there is
/// no value tree and no shrinking: `generate` directly produces a value.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value from the deterministic test RNG.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Returns a strategy producing `map(v)` for each generated `v`.
    fn prop_map<Output, F>(self, map: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> Output,
    {
        Map { source: self, map }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    source: S,
    map: F,
}

impl<S, F, Output> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> Output,
{
    type Value = Output;

    fn generate(&self, rng: &mut TestRng) -> Output {
        (self.map)(self.source.generate(rng))
    }
}

/// Strategy generating a fixed value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Primitive types whose bounded ranges act as strategies. A single blanket
/// impl over this trait (rather than one impl per primitive) keeps type
/// inference working for unsuffixed numeric literals.
pub trait RangeValue: Copy + PartialOrd {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self;

    /// Draws a uniform sample from `[low, high]`.
    fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self;
}

impl<T: RangeValue> Strategy for Range<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        assert!(self.start < self.end, "empty range strategy");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: RangeValue> Strategy for RangeInclusive<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "empty range strategy");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_range_value_int {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }

            fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_range_value_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_value_float {
    ($($t:ty),*) => {$(
        impl RangeValue for $t {
            fn sample_half_open(low: Self, high: Self, rng: &mut TestRng) -> Self {
                low + rng.unit_f64() as $t * (high - low)
            }

            fn sample_inclusive(low: Self, high: Self, rng: &mut TestRng) -> Self {
                low + rng.unit_f64() as $t * (high - low)
            }
        }
    )*};
}

impl_range_value_float!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A, B)
    (A, B, C)
    (A, B, C, D)
}
