//! Sampling strategies (`prop::sample::select`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Returns a strategy choosing uniformly among the given values.
pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
    assert!(!options.is_empty(), "select requires at least one option");
    Select { options }
}

/// Strategy returned by [`select`].
#[derive(Clone, Debug)]
pub struct Select<T: Clone> {
    options: Vec<T>,
}

impl<T: Clone> Strategy for Select<T> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        self.options[rng.index(self.options.len())].clone()
    }
}
