//! Test-runner plumbing: per-test configuration, case failure errors and the
//! deterministic RNG driving strategy generation.

/// Per-test configuration (`#![proptest_config(...)]`).
#[derive(Clone, Debug)]
pub struct Config {
    /// Number of generated cases to run per property.
    pub cases: u32,
}

impl Config {
    /// A configuration running `cases` generated inputs per property.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// Failure of a single generated case, carrying the assertion message.
#[derive(Clone, Debug)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl std::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for TestCaseError {}

/// Deterministic SplitMix64 generator seeding every property from its own
/// name, so failures reproduce run-to-run without a persistence file.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seeds the generator from a test name (FNV-1a over the bytes).
    pub fn deterministic(name: &str) -> Self {
        let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
        for byte in name.bytes() {
            hash ^= u64::from(byte);
            hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng { state: hash }
    }

    /// Returns the next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Returns a float uniform on `[0, 1)`.
    pub fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform index in `[0, bound)`. Panics if `bound` is zero.
    pub fn index(&mut self, bound: usize) -> usize {
        assert!(bound > 0, "cannot sample an index from an empty domain");
        (self.next_u64() % bound as u64) as usize
    }
}
