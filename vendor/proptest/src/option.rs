//! Option strategies (`prop::option::of`).

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Returns a strategy producing `None` a quarter of the time and `Some` of the
/// inner strategy's value otherwise.
pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
    OptionStrategy { inner }
}

/// Strategy returned by [`of`].
#[derive(Clone, Debug)]
pub struct OptionStrategy<S> {
    inner: S,
}

impl<S: Strategy> Strategy for OptionStrategy<S> {
    type Value = Option<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
        if rng.index(4) == 0 {
            None
        } else {
            Some(self.inner.generate(rng))
        }
    }
}
