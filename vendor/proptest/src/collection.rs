//! Collection strategies (`prop::collection::vec`).

use std::ops::{Range, RangeInclusive};

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Inclusive bounds on a generated collection's length.
#[derive(Clone, Copy, Debug)]
pub struct SizeRange {
    min: usize,
    max_inclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(exact: usize) -> Self {
        SizeRange {
            min: exact,
            max_inclusive: exact,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(range: Range<usize>) -> Self {
        assert!(range.start < range.end, "empty collection size range");
        SizeRange {
            min: range.start,
            max_inclusive: range.end - 1,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(range: RangeInclusive<usize>) -> Self {
        assert!(range.start() <= range.end(), "empty collection size range");
        SizeRange {
            min: *range.start(),
            max_inclusive: *range.end(),
        }
    }
}

/// Returns a strategy producing `Vec`s whose length lies in `size` and whose
/// elements are drawn from `element`.
pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
    VecStrategy {
        element,
        size: size.into(),
    }
}

/// Strategy returned by [`vec`].
#[derive(Clone, Debug)]
pub struct VecStrategy<S> {
    element: S,
    size: SizeRange,
}

impl<S: Strategy> Strategy for VecStrategy<S> {
    type Value = Vec<S::Value>;

    fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
        let span = self.size.max_inclusive - self.size.min + 1;
        let len = self.size.min + rng.index(span.max(1)).min(span - 1);
        (0..len).map(|_| self.element.generate(rng)).collect()
    }
}
