//! Offline stand-in for the [`rand_chacha`](https://crates.io/crates/rand_chacha)
//! crate, providing [`ChaCha8Rng`]: a real ChaCha stream cipher with 8 rounds
//! used as a deterministic PRNG.
//!
//! The keystream is a faithful ChaCha8 implementation, but seeding via
//! `seed_from_u64` expands the seed with SplitMix64 rather than the real
//! crate's scheme, so streams differ from upstream `rand_chacha` for the same
//! seed (determinism per seed — the property the workspace relies on — holds).

#![forbid(unsafe_code)]

use rand::{RngCore, SeedableRng};

/// A deterministic PRNG backed by the ChaCha block function with 8 rounds.
#[derive(Clone, Debug)]
pub struct ChaCha8Rng {
    /// The 16-word ChaCha input block: constants, 8 key words, a 64-bit block
    /// counter and a 64-bit nonce.
    state: [u32; 16],
    /// Output of the most recent block invocation.
    buffer: [u32; 16],
    /// Next unread word in `buffer`; 16 means "buffer exhausted".
    cursor: usize,
}

const CHACHA_CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
const ROUNDS: usize = 8;

#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

fn chacha_block(input: &[u32; 16]) -> [u32; 16] {
    let mut working = *input;
    for _ in 0..ROUNDS / 2 {
        // Column round.
        quarter_round(&mut working, 0, 4, 8, 12);
        quarter_round(&mut working, 1, 5, 9, 13);
        quarter_round(&mut working, 2, 6, 10, 14);
        quarter_round(&mut working, 3, 7, 11, 15);
        // Diagonal round.
        quarter_round(&mut working, 0, 5, 10, 15);
        quarter_round(&mut working, 1, 6, 11, 12);
        quarter_round(&mut working, 2, 7, 8, 13);
        quarter_round(&mut working, 3, 4, 9, 14);
    }
    for (w, i) in working.iter_mut().zip(input.iter()) {
        *w = w.wrapping_add(*i);
    }
    working
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl ChaCha8Rng {
    fn refill(&mut self) {
        self.buffer = chacha_block(&self.state);
        self.cursor = 0;
        // Advance the 64-bit block counter (words 12–13).
        let counter = (u64::from(self.state[13]) << 32 | u64::from(self.state[12])).wrapping_add(1);
        self.state[12] = counter as u32;
        self.state[13] = (counter >> 32) as u32;
    }
}

impl SeedableRng for ChaCha8Rng {
    fn seed_from_u64(seed: u64) -> Self {
        let mut expander = seed;
        let mut state = [0u32; 16];
        state[..4].copy_from_slice(&CHACHA_CONSTANTS);
        for pair in (4..12).step_by(2) {
            let word = splitmix64(&mut expander);
            state[pair] = word as u32;
            state[pair + 1] = (word >> 32) as u32;
        }
        // Counter starts at zero; the nonce gets one more expander word.
        let nonce = splitmix64(&mut expander);
        state[14] = nonce as u32;
        state[15] = (nonce >> 32) as u32;
        ChaCha8Rng {
            state,
            buffer: [0; 16],
            cursor: 16,
        }
    }
}

impl RngCore for ChaCha8Rng {
    fn next_u64(&mut self) -> u64 {
        if self.cursor >= 15 {
            self.refill();
        }
        let low = self.buffer[self.cursor];
        let high = self.buffer[self.cursor + 1];
        self.cursor += 2;
        u64::from(high) << 32 | u64::from(low)
    }

    fn next_u32(&mut self) -> u32 {
        if self.cursor >= 16 {
            self.refill();
        }
        let word = self.buffer[self.cursor];
        self.cursor += 1;
        word
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = ChaCha8Rng::seed_from_u64(42);
        let mut b = ChaCha8Rng::seed_from_u64(42);
        let mut c = ChaCha8Rng::seed_from_u64(43);
        let xs: Vec<u64> = (0..64).map(|_| a.next_u64()).collect();
        let ys: Vec<u64> = (0..64).map(|_| b.next_u64()).collect();
        let zs: Vec<u64> = (0..64).map(|_| c.next_u64()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn blocks_advance() {
        let mut rng = ChaCha8Rng::seed_from_u64(7);
        let first: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        let second: Vec<u64> = (0..8).map(|_| rng.next_u64()).collect();
        assert_ne!(first, second);
    }

    #[test]
    fn rough_uniformity() {
        use rand::Rng;
        let mut rng = ChaCha8Rng::seed_from_u64(1);
        let mut buckets = [0usize; 10];
        for _ in 0..10_000 {
            buckets[rng.gen_range(0usize..10)] += 1;
        }
        for &count in &buckets {
            assert!((800..1200).contains(&count), "skewed bucket: {count}");
        }
    }
}
