//! Offline stand-in for the [`criterion`](https://crates.io/crates/criterion)
//! benchmark harness.
//!
//! Implements the API subset this workspace's benches use — [`Criterion`],
//! [`Criterion::benchmark_group`], `bench_function`, [`BenchmarkId`],
//! [`Bencher::iter`], [`black_box`] and the [`criterion_group!`] /
//! [`criterion_main!`] macros — with a short fixed measurement loop instead of
//! the real crate's statistical analysis. Each benchmark prints one
//! machine-readable JSON line so harnesses (e.g. the CI bench job) can parse
//! timings without scraping free-form text:
//! `{"type":"bench","id":"<group>/<id>","ns_per_iter":<mean>,"iterations":<n>}`.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Prevents the optimizer from discarding a benchmarked computation.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Escapes a benchmark id for embedding in a JSON string literal.
fn escape_json(label: &str) -> String {
    let mut out = String::with_capacity(label.len());
    for c in label.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Identifies one benchmark as a function name plus an optional parameter.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    function: String,
    parameter: Option<String>,
}

impl BenchmarkId {
    /// An id rendered as `function/parameter`.
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        BenchmarkId {
            function: function.into(),
            parameter: Some(parameter.to_string()),
        }
    }

    /// An id with a parameter only, rendered as the parameter itself.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            function: String::new(),
            parameter: Some(parameter.to_string()),
        }
    }

    fn render(&self) -> String {
        match &self.parameter {
            Some(p) if self.function.is_empty() => p.clone(),
            Some(p) => format!("{}/{}", self.function, p),
            None => self.function.clone(),
        }
    }
}

/// Conversion into a [`BenchmarkId`], accepted by the `bench_function`
/// methods (mirrors the real crate's `IntoBenchmarkId`).
pub trait IntoBenchmarkId {
    /// Converts `self` into a [`BenchmarkId`].
    fn into_benchmark_id(self) -> BenchmarkId;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_benchmark_id(self) -> BenchmarkId {
        self
    }
}

impl IntoBenchmarkId for &str {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self.to_string(),
            parameter: None,
        }
    }
}

impl IntoBenchmarkId for String {
    fn into_benchmark_id(self) -> BenchmarkId {
        BenchmarkId {
            function: self,
            parameter: None,
        }
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    iterations: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Runs `routine` repeatedly (one warm-up call plus a short measured
    /// loop) and records the mean wall-clock time per iteration.
    pub fn iter<Output, F: FnMut() -> Output>(&mut self, mut routine: F) {
        black_box(routine());
        let started = Instant::now();
        let mut measured = 0u64;
        // Stop after the target iteration count or ~250 ms, whichever first,
        // so heavyweight benches stay responsive under this stand-in.
        while measured < self.iterations && started.elapsed() < Duration::from_millis(250) {
            black_box(routine());
            measured += 1;
        }
        self.iterations = measured.max(1);
        self.elapsed = started.elapsed();
    }

    fn report(&self, label: &str) {
        let per_iter = self.elapsed.as_nanos() / u128::from(self.iterations.max(1));
        // One JSON object per line (JSON Lines): trivially parseable without
        // a JSON library by splitting on newlines, and ignorable by humans.
        println!(
            "{{\"type\":\"bench\",\"id\":\"{}\",\"ns_per_iter\":{per_iter},\"iterations\":{}}}",
            escape_json(label),
            self.iterations
        );
    }
}

/// Entry point mirroring `criterion::Criterion`.
pub struct Criterion {
    default_sample_size: u64,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            default_sample_size: 20,
        }
    }
}

impl Criterion {
    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            sample_size: 20,
        }
    }

    /// Runs a standalone benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.default_sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        bencher.report(&id.into_benchmark_id().render());
        self
    }
}

/// A named group of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    sample_size: u64,
}

impl BenchmarkGroup<'_> {
    /// Sets the measured iteration count for subsequent benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.sample_size = samples as u64;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut routine: F,
    ) -> &mut Self {
        let mut bencher = Bencher {
            iterations: self.sample_size,
            elapsed: Duration::ZERO,
        };
        routine(&mut bencher);
        bencher.report(&format!(
            "{}/{}",
            self.name,
            id.into_benchmark_id().render()
        ));
        self
    }

    /// Ends the group (a no-op in this stand-in).
    pub fn finish(self) {}
}

/// Collects benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Expands to `fn main` running the given benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
