//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) crate.
//!
//! Implements exactly the API subset this workspace uses: [`RngCore`],
//! [`Rng::gen_range`] / [`Rng::gen_bool`], [`SeedableRng::seed_from_u64`] and
//! [`seq::SliceRandom::choose`]. Streams are deterministic per seed but not
//! byte-compatible with the real crate (see `vendor/README.md`).

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

pub mod seq;

/// A source of pseudo-random 64-bit words. The only method generators must
/// implement; everything else is provided via the [`Rng`] extension trait.
pub trait RngCore {
    /// Returns the next 64 random bits of the stream.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 random bits (the high half of [`Self::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator constructible from a 64-bit seed.
pub trait SeedableRng: Sized {
    /// Builds the generator from a single `u64` seed, expanding it into
    /// whatever internal state the generator needs.
    fn seed_from_u64(state: u64) -> Self;
}

/// User-facing sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open or inclusive).
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    fn gen_bool(&mut self, p: f64) -> bool {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Maps 64 random bits onto `[0, 1)` with 53 bits of precision.
fn unit_f64(word: u64) -> f64 {
    (word >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// Primitive types that support uniform sampling from a bounded interval.
pub trait SampleUniform: Copy + PartialOrd {
    /// Draws a uniform sample from `[low, high)`.
    fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;

    /// Draws a uniform sample from `[low, high]`.
    fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
}

/// A range that can produce a uniform sample of `T`.
pub trait SampleRange<T> {
    /// Draws one uniform sample from the range. Panics if the range is empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for Range<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        assert!(self.start < self.end, "cannot sample from empty range");
        T::sample_half_open(self.start, self.end, rng)
    }
}

impl<T: SampleUniform> SampleRange<T> for RangeInclusive<T> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        let (start, end) = (*self.start(), *self.end());
        assert!(start <= end, "cannot sample from empty range");
        T::sample_inclusive(start, end, rng)
    }
}

macro_rules! impl_sample_uniform_int {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                let span = (high as i128 - low as i128) as u128 + 1;
                let offset = (rng.next_u64() as u128) % span;
                (low as i128 + offset as i128) as $t
            }
        }
    )*};
}

impl_sample_uniform_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_uniform_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_half_open<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                low + unit_f64(rng.next_u64()) as $t * (high - low)
            }

            fn sample_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                low + unit_f64(rng.next_u64()) as $t * (high - low)
            }
        }
    )*};
}

impl_sample_uniform_float!(f32, f64);

#[cfg(test)]
mod tests {
    use super::*;

    struct Counter(u64);
    impl RngCore for Counter {
        fn next_u64(&mut self) -> u64 {
            self.0 = self
                .0
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            self.0
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = Counter(7);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i16..=5);
            assert!((-5..=5).contains(&v));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let u = rng.gen_range(3usize..9);
            assert!((3..9).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = Counter(1);
        for _ in 0..100 {
            assert!(rng.gen_bool(1.0));
            assert!(!rng.gen_bool(0.0));
        }
    }

    #[test]
    fn float_inference_defaults_to_f64() {
        let mut rng = Counter(3);
        let speed = 2.0 * rng.gen_range(0.8..1.2);
        assert!((1.6..2.4).contains(&speed));
    }
}
