//! Slice sampling helpers (the `SliceRandom::choose` subset).

use crate::RngCore;

/// Random selection from slices.
pub trait SliceRandom {
    /// The element type of the slice.
    type Item;

    /// Returns a uniformly chosen reference into the slice, or `None` if the
    /// slice is empty.
    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
}

impl<T> SliceRandom for [T] {
    type Item = T;

    fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
        if self.is_empty() {
            None
        } else {
            let index = (rng.next_u64() % self.len() as u64) as usize;
            Some(&self[index])
        }
    }
}
