//! Cross-crate integration tests: generators → framework → retrieval, on all
//! three synthetic datasets and all index backends.

use ssr_datagen::{
    generate_proteins, generate_songs, generate_trajectories, plant_query, PitchMutator,
    PointMutator, ProteinConfig, QueryConfig, SongsConfig, SymbolMutator, TrajConfig,
};
use subsequence_retrieval::prelude::*;

#[test]
fn protein_planted_query_is_recovered_by_every_backend() {
    let lambda = 24;
    let proteins = generate_proteins(&ProteinConfig {
        num_sequences: 20,
        min_len: 80,
        max_len: 120,
        seed: 1,
        ..Default::default()
    });
    let planted = plant_query(
        &proteins,
        &SymbolMutator,
        &QueryConfig {
            planted_len: 40,
            context_len: 8,
            perturbation_rate: 0.03,
            seed: 2,
        },
    )
    .unwrap();

    for backend in [
        IndexBackend::ReferenceNet,
        IndexBackend::CoverTree,
        IndexBackend::MvReference { references: 5 },
        IndexBackend::LinearScan,
    ] {
        let db = SubsequenceDatabase::builder(
            FrameworkConfig::new(lambda)
                .with_max_shift(2)
                .with_backend(backend),
            Levenshtein::new(),
        )
        .add_dataset(&proteins)
        .build()
        .unwrap();
        let outcome = db.query_type2(&planted.query, 8.0);
        let m = outcome
            .result
            .unwrap_or_else(|| panic!("backend {backend} failed to find the planted match"));
        assert!(m.distance <= 8.0);
        assert!(m.query_len() >= lambda);
        assert_eq!(
            m.sequence, planted.source,
            "backend {backend} matched the wrong sequence"
        );
        assert!(
            m.db_range.start < planted.source_range.end
                && m.db_range.end > planted.source_range.start,
            "backend {backend} match {:?} does not overlap planted region {:?}",
            m.db_range,
            planted.source_range
        );
    }
}

#[test]
fn song_phrase_is_recovered_under_both_time_series_distances() {
    let songs = generate_songs(&SongsConfig {
        num_sequences: 40,
        min_len: 60,
        max_len: 120,
        seed: 3,
        ..Default::default()
    });
    let planted = plant_query(
        &songs,
        &PitchMutator,
        &QueryConfig {
            planted_len: 30,
            context_len: 5,
            perturbation_rate: 0.05,
            seed: 4,
        },
    )
    .unwrap();
    let config = FrameworkConfig::new(20).with_max_shift(2);

    let dfd_db = SubsequenceDatabase::builder(config.clone(), DiscreteFrechet::new())
        .add_dataset(&songs)
        .build()
        .unwrap();
    let dfd_match = dfd_db.query_type2(&planted.query, 2.0).result;
    assert!(dfd_match.is_some(), "DFD failed to recover the phrase");

    let erp_db = SubsequenceDatabase::builder(config, Erp::new())
        .add_dataset(&songs)
        .build()
        .unwrap();
    let erp_match = erp_db.query_type2(&planted.query, 30.0).result;
    assert!(erp_match.is_some(), "ERP failed to recover the phrase");
}

#[test]
fn trajectory_query_recovers_the_observed_track() {
    let trajectories = generate_trajectories(&TrajConfig {
        num_sequences: 30,
        min_len: 50,
        max_len: 90,
        seed: 5,
        ..Default::default()
    });
    let planted = plant_query(
        &trajectories,
        &PointMutator {
            jitter: 0.2,
            extent: 100.0,
        },
        &QueryConfig {
            planted_len: 30,
            context_len: 4,
            perturbation_rate: 0.5,
            seed: 6,
        },
    )
    .unwrap();
    let db = SubsequenceDatabase::builder(FrameworkConfig::new(20).with_max_shift(2), Erp::new())
        .add_dataset(&trajectories)
        .build()
        .unwrap();
    let outcome = db.query_type2(&planted.query, 20.0);
    let m = outcome.result.expect("trajectory match found");
    assert_eq!(m.sequence, planted.source);
}

#[test]
fn framework_agrees_with_brute_force_on_tiny_inputs() {
    // On inputs small enough for the O(|Q|^2 |X|^2) search, the framework's
    // Type II answer must be at least as long as... exactly as long as the
    // brute-force optimum whenever the optimum's length is reachable from a
    // candidate chain; we assert the answer is valid and no shorter than the
    // planted lower bound, and that Type I output is a subset of brute force.
    let db_text = "ACGTACGTTTGCAGCATACGTACGA";
    let query_text = "GGACGTACGTTTGCAGG";
    let to_seq = |t: &str| Sequence::new(t.chars().map(Symbol::from_char).collect::<Vec<_>>());
    let dataset: SequenceDataset<Symbol> = vec![to_seq(db_text)].into_iter().collect();

    let config = FrameworkConfig::new(8).with_max_shift(1);
    let db = SubsequenceDatabase::builder(config.clone(), Levenshtein::new())
        .add_dataset(&dataset)
        .build()
        .unwrap();
    let query = to_seq(query_text);
    let epsilon = 1.0;

    let constraints = BruteConstraints {
        lambda: config.lambda,
        max_shift: config.max_shift,
    };
    let brute =
        ssr_core::all_similar_pairs(&query, &dataset, &Levenshtein::new(), constraints, epsilon);
    assert!(!brute.is_empty());

    let type1 = db.query_type1(&query, epsilon);
    assert!(!type1.result.is_empty());
    for m in &type1.result {
        assert!(
            brute.iter().any(|b| b.sequence == m.sequence
                && b.db_range == m.db_range
                && b.query_range == m.query_range),
            "framework reported {m:?} which brute force does not contain"
        );
    }

    let brute_longest =
        ssr_core::longest_similar_pair(&query, &dataset, &Levenshtein::new(), constraints, epsilon)
            .unwrap();
    let type2 = db.query_type2(&query, epsilon).result.unwrap();
    assert_eq!(
        type2.query_len(),
        brute_longest.query_len(),
        "framework longest {:?} vs brute-force longest {:?}",
        type2,
        brute_longest
    );
}

#[test]
fn query_statistics_reflect_the_filtering_pipeline() {
    let proteins = generate_proteins(&ProteinConfig {
        num_sequences: 10,
        min_len: 60,
        max_len: 100,
        seed: 8,
        ..Default::default()
    });
    let planted = plant_query(
        &proteins,
        &SymbolMutator,
        &QueryConfig {
            planted_len: 30,
            context_len: 5,
            perturbation_rate: 0.05,
            seed: 9,
        },
    )
    .unwrap();
    let db = SubsequenceDatabase::builder(
        FrameworkConfig::new(16).with_max_shift(1),
        Levenshtein::new(),
    )
    .add_dataset(&proteins)
    .build()
    .unwrap();
    let outcome = db.query_type2(&planted.query, 5.0);
    let stats = outcome.stats;
    // (2*lambda0 + 1) * |Q| is the paper's bound on the number of segments.
    assert!(stats.segments <= 3 * planted.query.len());
    assert!(stats.unique_windows <= db.window_count());
    assert!(stats.segment_matches >= stats.unique_windows);
    // The planted region spans >= 3 windows, so consecutive windows exist.
    assert!(stats.consecutive_windows >= 2);
}
