//! Quickstart: index a handful of protein-like strings and run all three
//! query types against them.
//!
//! ```text
//! cargo run --example quickstart
//! ```

use subsequence_retrieval::prelude::*;

fn encode(text: &str) -> Sequence<Symbol> {
    Sequence::new(text.chars().map(Symbol::from_char).collect())
}

fn main() {
    // λ = 8: we only care about matching regions of at least 8 residues.
    // λ0 = 1: the two sides of a match may differ in length by at most 1.
    let config = FrameworkConfig::new(8).with_max_shift(1);

    let db = SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(encode("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
        .add_sequence(encode("GGGGGGGGGGGGACDEFGHIKLGGGGGGGGGG"))
        .add_sequence(encode("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"))
        .build()
        .expect("database builds");

    println!(
        "indexed {} windows of length {} using the {} backend",
        db.window_count(),
        db.config().window_len(),
        db.config().backend
    );

    // The query embeds a (slightly noisy) copy of the motif present in the
    // first two database sequences.
    let query = encode("YYYYACDEFGHIKLMNPQRSTVWYYYYY");

    // Type II: the longest similar subsequence.
    let longest = db.query_type2(&query, 3.0);
    match &longest.result {
        Some(m) => println!(
            "Type II: query[{}..{}] matches {}[{}..{}] at Levenshtein distance {}",
            m.query_range.start,
            m.query_range.end,
            m.sequence,
            m.db_range.start,
            m.db_range.end,
            m.distance
        ),
        None => println!("Type II: no similar subsequence within epsilon = 3"),
    }
    println!(
        "         ({} index distance calls, {} verifications)",
        longest.stats.index_distance_calls, longest.stats.verification_calls
    );

    // Type I: every similar pair (capped), useful to see how many overlapping
    // pairs a single long match induces — the reason the paper prefers
    // Types II and III.
    let all = db.query_type1(&query, 2.0);
    println!(
        "Type I : {} similar pairs within epsilon = 2",
        all.result.len()
    );

    // Type III: the closest pair irrespective of a preset epsilon.
    let nearest = db.query_type3(&query, 10.0, 1.0);
    if let Some(m) = &nearest.result {
        println!(
            "Type III: nearest pair has distance {} ({} vs query[{}..{}])",
            m.distance, m.sequence, m.query_range.start, m.query_range.end
        );
    }
}
