//! Persistence round-trip: build a database, save it as a versioned
//! snapshot, cold-start a second database by loading the file, and show that
//! (a) loading is far cheaper than rebuilding and (b) the loaded database
//! answers queries identically — results and statistics.
//!
//! ```text
//! cargo run --release --example snapshot_roundtrip
//! ```

use std::time::Instant;

use subsequence_retrieval::datagen::{
    generate_proteins, plant_query, ProteinConfig, QueryConfig, SymbolMutator,
};
use subsequence_retrieval::prelude::*;

fn main() {
    // A synthetic protein database: ~400 windows of length λ/2 = 20.
    let proteins = generate_proteins(&ProteinConfig::sized_for_windows(400, 20, 42));
    let config = FrameworkConfig::new(40).with_max_shift(2);

    // Steps 1–2: partition into windows and build the Reference Net. This is
    // the expensive part a snapshot lets a restart skip.
    let build_started = Instant::now();
    let db = SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_dataset(&proteins)
        .build()
        .expect("database builds");
    let build_ms = build_started.elapsed().as_secs_f64() * 1e3;
    println!(
        "built   {} windows in {build_ms:.1} ms ({} distance calls)",
        db.window_count(),
        db.build_distance_calls()
    );

    // Save the database — sequences, windows and the prebuilt index — as a
    // checksummed snapshot.
    let path = std::env::temp_dir().join("ssr-example.ssr");
    let save_started = Instant::now();
    db.save_snapshot(&path).expect("snapshot writes");
    let bytes = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
    println!(
        "saved   {} ({bytes} bytes) in {:.1} ms",
        path.display(),
        save_started.elapsed().as_secs_f64() * 1e3
    );

    // Cold start: load instead of rebuild. Zero distance calls.
    let load_started = Instant::now();
    let loaded =
        SubsequenceDatabase::<Symbol, Levenshtein>::load_snapshot(&path, Levenshtein::new())
            .expect("snapshot loads");
    let load_ms = load_started.elapsed().as_secs_f64() * 1e3;
    println!(
        "loaded  {} windows in {load_ms:.1} ms ({} distance calls) — {:.0}x faster than rebuild",
        loaded.window_count(),
        loaded.query_distance_counter().get(),
        build_ms / load_ms.max(1e-6)
    );

    // The snapshot manifest is readable without the element type — this is
    // what `ssr info` prints.
    let snapshot = Snapshot::open(&path).expect("snapshot re-opens");
    let manifest = SnapshotManifest::read(&snapshot).expect("manifest decodes");
    println!(
        "format  element={} distance={} sections={:?}",
        manifest.element,
        manifest.distance,
        snapshot
            .sections()
            .iter()
            .map(|s| format!("{}:{}B", s.name, s.len))
            .collect::<Vec<_>>()
    );

    // Query both databases: identical results AND identical work accounting.
    let planted = plant_query(
        &proteins,
        &SymbolMutator,
        &QueryConfig {
            planted_len: 60,
            context_len: 20,
            perturbation_rate: 0.05,
            seed: 7,
        },
    )
    .expect("plants a query");
    let a = db.query_type2(&planted.query, 8.0);
    let b = loaded.query_type2(&planted.query, 8.0);
    assert_eq!(a.result, b.result, "results must match");
    assert_eq!(a.stats, b.stats, "statistics must match");
    match &b.result {
        Some(m) => println!(
            "query   loaded db found {} db[{}..{}] at distance {:.1} — parity with built db ✓",
            m.sequence, m.db_range.start, m.db_range.end, m.distance
        ),
        None => println!("query   no match found (unexpected for a planted query)"),
    }

    std::fs::remove_file(&path).ok();
}
