//! Trajectory subsequence search — the TRAJ workload.
//!
//! The paper's TRAJ dataset consists of trajectories extracted from parking
//! lot surveillance video, indexed under ERP and the discrete Fréchet
//! distance. This example simulates such trajectories, asks "which stored
//! track contains a segment similar to this partial observation?" and prints
//! the answer together with the work the index saved compared to scanning
//! every window.
//!
//! ```text
//! cargo run --release --example trajectory_search
//! ```

use ssr_datagen::{generate_trajectories, plant_query, PointMutator, QueryConfig, TrajConfig};
use subsequence_retrieval::prelude::*;

fn main() {
    let lambda = 24;
    let config = FrameworkConfig::new(lambda).with_max_shift(2);

    let trajectories = generate_trajectories(&TrajConfig::sized_for_windows(300, lambda / 2, 13));
    println!(
        "simulated {} trajectories with {} points in total",
        trajectories.len(),
        trajectories.total_elements()
    );

    // A partial, noisy re-observation of one of the stored trajectories.
    let planted = plant_query(
        &trajectories,
        &PointMutator {
            jitter: 0.3,
            extent: 120.0,
        },
        &QueryConfig {
            planted_len: 40,
            context_len: 6,
            perturbation_rate: 0.5,
            seed: 31,
        },
    )
    .expect("plantable trajectory exists");
    println!(
        "query observes {} points of {} (with 0.3 m jitter)",
        planted.source_range.len(),
        planted.source
    );

    let db = SubsequenceDatabase::builder(config, Erp::new())
        .add_dataset(&trajectories)
        .build()
        .expect("database builds");

    let naive_distance_calls = db.window_count() as u64
        * subsequence_retrieval::sequence::segment_count(
            planted.query.len(),
            db.config().segment_spec(),
        ) as u64;
    let outcome = db.query_type2(&planted.query, 30.0);
    match &outcome.result {
        Some(m) => {
            println!(
                "longest matching track segment: {}[{}..{}] vs query[{}..{}], ERP distance {:.2}",
                m.sequence,
                m.db_range.start,
                m.db_range.end,
                m.query_range.start,
                m.query_range.end,
                m.distance
            );
            println!(
                "recovered the observed trajectory: {}",
                m.sequence == planted.source
            );
        }
        None => println!("no similar track segment within ERP distance 30"),
    }
    println!(
        "index distance calls: {} (a naive scan of every window for every segment length would \
         be on the order of {naive_distance_calls})",
        outcome.stats.index_distance_calls
    );

    // Type III: how close is the closest stored track segment, regardless of
    // the threshold we guessed above?
    let nearest = db.query_type3(&planted.query, 60.0, 5.0);
    if let Some(m) = &nearest.result {
        println!(
            "nearest stored segment overall: {} at ERP distance {:.2}",
            m.sequence, m.distance
        );
    }
}
