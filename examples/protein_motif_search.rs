//! Protein motif search: the workload the paper's PROTEINS experiments model.
//!
//! A synthetic protein database (20-letter alphabet, planted motifs) is
//! indexed under the Levenshtein distance. A query is built by excising a
//! region from one database protein, mutating a few residues and wrapping it
//! in unrelated residues — mimicking a remote-homology search. The example
//! then shows that the framework recovers the planted region, and compares
//! the Reference Net against a plain linear scan in terms of distance
//! computations.
//!
//! ```text
//! cargo run --release --example protein_motif_search
//! ```

use ssr_datagen::{generate_proteins, plant_query, ProteinConfig, QueryConfig, SymbolMutator};
use subsequence_retrieval::prelude::*;

fn main() {
    let lambda = 40;
    let config = FrameworkConfig::new(lambda).with_max_shift(2);

    // ~200 windows of length 20: small enough to run in seconds even in debug
    // builds, large enough to show pruning at work.
    let proteins = generate_proteins(&ProteinConfig::sized_for_windows(200, lambda / 2, 7));
    println!(
        "generated {} proteins, {} residues total",
        proteins.len(),
        proteins.total_elements()
    );

    let planted = plant_query(
        &proteins,
        &SymbolMutator,
        &QueryConfig {
            planted_len: 60,
            context_len: 15,
            perturbation_rate: 0.05,
            seed: 99,
        },
    )
    .expect("database has a sequence long enough to plant from");
    println!(
        "query of length {} carries a mutated copy of {}[{}..{}]",
        planted.query.len(),
        planted.source,
        planted.source_range.start,
        planted.source_range.end
    );

    for backend in [IndexBackend::ReferenceNet, IndexBackend::LinearScan] {
        let db =
            SubsequenceDatabase::builder(config.clone().with_backend(backend), Levenshtein::new())
                .add_dataset(&proteins)
                .build()
                .expect("database builds");

        let outcome = db.query_type2(&planted.query, 6.0);
        let calls = outcome.stats.index_distance_calls;
        match &outcome.result {
            Some(m) => {
                let hit_source = m.sequence == planted.source
                    && m.db_range.start < planted.source_range.end
                    && m.db_range.end > planted.source_range.start;
                println!(
                    "[{backend}] longest match: {}[{}..{}] vs query[{}..{}], distance {:.1} \
                     ({calls} index distance calls; recovered planted region: {hit_source})",
                    m.sequence,
                    m.db_range.start,
                    m.db_range.end,
                    m.query_range.start,
                    m.query_range.end,
                    m.distance,
                );
            }
            None => println!("[{backend}] no match within epsilon = 6 ({calls} calls)"),
        }
    }
}
