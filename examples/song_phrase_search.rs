//! Melodic phrase search over pitch sequences — the SONGS workload.
//!
//! The paper's SONGS experiments index windows of pitch time series under the
//! discrete Fréchet distance and ERP. This example builds the same kind of
//! database from the synthetic SONGS generator, plants a hummed "query
//! phrase" (a perturbed excerpt of one song embedded in random pitches) and
//! retrieves it with both distances, showing how the distance choice affects
//! the index and the result.
//!
//! ```text
//! cargo run --release --example song_phrase_search
//! ```

use ssr_datagen::{generate_songs, plant_query, PitchMutator, QueryConfig, SongsConfig};
use subsequence_retrieval::prelude::*;

fn run<D: SequenceDistance<Pitch> + Clone>(
    name: &str,
    distance: D,
    songs: &SequenceDataset<Pitch>,
    query: &Sequence<Pitch>,
    epsilon: f64,
) {
    let config = FrameworkConfig::new(24).with_max_shift(2);
    let db = SubsequenceDatabase::builder(config, distance)
        .add_dataset(songs)
        .build()
        .expect("database builds");
    let space = db.index_space_stats();
    println!(
        "[{name}] {} windows indexed, {} reference-list entries, {:.2} parents/window",
        space.items, space.entries, space.avg_parents
    );
    let outcome = db.query_type2(query, epsilon);
    match &outcome.result {
        Some(m) => println!(
            "[{name}] longest phrase match: {} positions of {} (distance {:.2}, \
             {} index distance calls)",
            m.db_len(),
            m.sequence,
            m.distance,
            outcome.stats.index_distance_calls
        ),
        None => println!("[{name}] no phrase within epsilon = {epsilon}"),
    }
}

fn main() {
    let songs = generate_songs(&SongsConfig::sized_for_windows(300, 12, 21));
    println!(
        "generated {} songs, {} pitch events total",
        songs.len(),
        songs.total_elements()
    );

    let planted = plant_query(
        &songs,
        &PitchMutator,
        &QueryConfig {
            planted_len: 36,
            context_len: 8,
            perturbation_rate: 0.1,
            seed: 5,
        },
    )
    .expect("plantable song exists");
    println!(
        "query hums {} notes copied (with ornamentation) from {}",
        planted.source_range.len(),
        planted.source
    );

    // The discrete Fréchet distance bounds the worst coupled pitch gap; ERP
    // accumulates gaps, so it needs a larger epsilon for the same phrase.
    run("DFD", DiscreteFrechet::new(), &songs, &planted.query, 2.0);
    run("ERP", Erp::new(), &songs, &planted.query, 8.0);
}
