//! Batched, parallel retrieval with the [`QueryEngine`]: build a protein
//! database, plant a handful of queries with known answers, and answer them
//! all in one fan-out over the worker pool — then re-run sequentially to
//! show the outcomes are bit-identical at any thread count.
//!
//! ```text
//! cargo run --release --example batched_engine
//! ```

use subsequence_retrieval::datagen::{
    generate_proteins, plant_query, ProteinConfig, QueryConfig, SymbolMutator,
};
use subsequence_retrieval::prelude::*;

fn main() {
    let proteins = generate_proteins(&ProteinConfig {
        num_sequences: 30,
        min_len: 100,
        max_len: 160,
        seed: 7,
        ..Default::default()
    });

    // Eight queries, each containing a perturbed copy of a database region.
    let queries: Vec<Sequence<Symbol>> = (0..8)
        .map(|i| {
            plant_query(
                &proteins,
                &SymbolMutator,
                &QueryConfig {
                    planted_len: 40,
                    context_len: 12,
                    perturbation_rate: 0.05,
                    seed: 40 + i,
                },
            )
            .expect("dataset has sequences long enough to plant in")
            .query
        })
        .collect();

    let db = SubsequenceDatabase::builder(
        FrameworkConfig::new(24).with_max_shift(2),
        Levenshtein::new(),
    )
    .add_dataset(&proteins)
    .with_threads(0) // parallel build: 0 = one worker per hardware thread
    .build()
    .expect("database builds");
    println!(
        "indexed {} windows ({} build distance calls)\n",
        db.window_count(),
        db.build_distance_calls()
    );

    // Fan the whole batch out over the worker pool.
    let engine = QueryEngine::new(&db).with_threads(0);
    let batch = engine.batch_type2(&queries, 6.0);
    println!(
        "batch of {} queries on {} threads: {:.1} ms wall-clock",
        batch.outcomes.len(),
        batch.threads,
        batch.wall_ns as f64 / 1e6
    );
    for (i, outcome) in batch.outcomes.iter().enumerate() {
        match &outcome.result {
            Some(m) => println!(
                "  query {i}: longest match |SQ|={} in sequence {} at {:?} (distance {:.0})",
                m.query_len(),
                m.sequence.0,
                m.db_range,
                m.distance
            ),
            None => println!("  query {i}: no similar subsequence"),
        }
    }

    // The per-stage breakdown the bench harness records as BENCH_<date>.json.
    let t = batch.timings;
    println!(
        "\nstage totals: segment {:.2} ms, filter {:.2} ms, chain {:.2} ms, verify {:.2} ms",
        t.segment_ns as f64 / 1e6,
        t.filter_ns as f64 / 1e6,
        t.chain_ns as f64 / 1e6,
        t.verify_ns as f64 / 1e6
    );

    // Determinism: a sequential run produces identical outcomes and stats.
    let sequential = QueryEngine::new(&db).batch_type2(&queries, 6.0);
    assert_eq!(sequential.outcomes, batch.outcomes);
    println!("sequential re-run is bit-identical (results and statistics)");
}
