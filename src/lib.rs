//! # subsequence-retrieval
//!
//! A Rust implementation of **"A Generic Framework for Efficient and Effective
//! Subsequence Retrieval"** (Zhu, Kollios, Athitsos — PVLDB 5(11), 2012).
//!
//! Given a query sequence `Q` and a database of sequences, the framework finds
//! pairs of *subsequences* — one from the query, one from a database sequence —
//! that are similar under a user-chosen distance. It works with any distance
//! that is **consistent** (Definition 1 of the paper) and, when the distance is
//! also a **metric**, accelerates the search with the **Reference Net**, a
//! linear-space hierarchical metric index introduced by the paper.
//!
//! The workspace is organised as one crate per subsystem, all re-exported here:
//!
//! * [`sequence`] (`ssr-sequence`) — elements, alphabets, sequences, the flat
//!   [`ElementArena`](crate::sequence::ElementArena) that owns every dataset
//!   element in one contiguous buffer, view-based windows, query segments;
//! * [`distance`] (`ssr-distance`) — Euclidean, Hamming, Levenshtein, DTW, ERP
//!   and discrete Fréchet distances, alignments, and distance-call counting;
//! * [`index`] (`ssr-index`) — Reference Net, Cover Tree, MV reference-based
//!   indexing and linear scan, all answering metric range queries;
//! * [`datagen`] (`ssr-datagen`) — synthetic PROTEINS / SONGS / TRAJ / DNA
//!   generators and planted-query construction;
//! * [`core`] (`ssr-core`) — the five-step retrieval framework, the three
//!   query types (range, longest, nearest), and the parallel batched
//!   [`QueryEngine`](crate::prelude::QueryEngine) that fans a batch of
//!   queries out over a dependency-free worker pool with bit-identical
//!   results at every thread count;
//! * [`storage`] (`ssr-storage`) — versioned, checksummed on-disk snapshots:
//!   a built database (windows + prebuilt index) round-trips through disk via
//!   [`SubsequenceDatabase::save_snapshot`](crate::prelude::SubsequenceDatabase::save_snapshot)
//!   / `load_snapshot`, so a restart cold-starts by loading in milliseconds
//!   instead of rebuilding with millions of distance calls.
//!
//! ## Quick start
//!
//! ```
//! use subsequence_retrieval::prelude::*;
//!
//! // A tiny protein-like database and a query containing a copy of a region
//! // of the first sequence, surrounded by unrelated residues.
//! let config = FrameworkConfig::new(8).with_max_shift(1);
//! let db = SubsequenceDatabase::builder(config, Levenshtein::new())
//!     .add_sequence(Sequence::new(encode("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM")))
//!     .add_sequence(Sequence::new(encode("WWWWWWWWWWWWWWWWWWWWWWWW")))
//!     .build()
//!     .unwrap();
//!
//! let query = Sequence::new(encode("YYYYACDEFGHIKLMNPQRSTVWYYYYY"));
//! let best = db.query_type2(&query, 3.0).result.expect("match found");
//! assert!(best.distance <= 3.0);
//! assert!(best.query_len() >= 8);
//!
//! fn encode(text: &str) -> Vec<Symbol> {
//!     text.chars().map(Symbol::from_char).collect()
//! }
//! ```

#![warn(missing_docs)]

pub use ssr_core as core;
pub use ssr_datagen as datagen;
pub use ssr_distance as distance;
pub use ssr_index as index;
pub use ssr_sequence as sequence;
pub use ssr_storage as storage;

/// The most commonly used types, re-exported for convenient glob import.
pub mod prelude {
    pub use ssr_core::{
        BatchOutcome, BruteConstraints, DatabaseBuilder, FrameworkConfig, FrameworkError,
        IndexBackend, QueryEngine, QueryOutcome, QueryStats, SegmentScan, SnapshotManifest,
        StageTimings, SubsequenceDatabase, SubsequenceMatch,
    };
    pub use ssr_distance::{
        CallCounter, DiscreteFrechet, Dtw, Erp, Euclidean, Hamming, Levenshtein, SequenceDistance,
    };
    pub use ssr_index::{
        CoverTree, LinearScan, MvReferenceIndex, RangeIndex, ReferenceNet, ReferenceNetConfig,
    };
    pub use ssr_sequence::{
        Alphabet, Element, Pitch, Point2D, Point3D, Sequence, SequenceDataset, SequenceId, Symbol,
    };
    pub use ssr_storage::{Snapshot, StorageError};
}
