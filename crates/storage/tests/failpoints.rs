//! Failpoint-backed crash tests for the WAL and snapshot layers.
//!
//! These live in their own test binary (not the lib's unit tests) because
//! the failpoint registry is process-global: arming `wal.append` here must
//! not make an unrelated unit test's append fail. Every test owns the
//! registry through an [`ssr_fault::FailpointGuard`], which serializes the
//! armed section and disarms (resetting the per-site counters) on drop —
//! even when an assertion panics mid-test.

use std::path::PathBuf;

use ssr_fault::FailpointGuard;
use ssr_storage::{
    read_wal_file, write_atomic, Snapshot, SnapshotBuilder, StorageError, WalBinding, WalWriter,
};

fn temp_path(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join("ssr-failpoint-tests");
    std::fs::create_dir_all(&dir).unwrap();
    dir.join(format!("{name}-{}", std::process::id()))
}

const BINDING: WalBinding = WalBinding {
    snapshot_len: 64,
    snapshot_crc: 0xFEED_F00D,
};

fn assert_injected(result: Result<(), StorageError>, site: &str) {
    match result {
        Err(StorageError::Io(e)) => assert!(
            e.to_string().contains(&format!("failpoint '{site}'")),
            "error should name the site: {e}"
        ),
        other => panic!("expected injected io error from '{site}', got {other:?}"),
    }
}

/// The durability-gap regression test: every append that returned Ok was
/// fsynced (`sync_all` — data AND length metadata) and survives a crash; an
/// append torn mid-write by the failpoint loses only itself. Before the
/// `sync_data` → `sync_all` fix, the acked records' very existence (the file
/// length) was not durable — this pins the failpoint-modelled half of that
/// story: the torn frame never resurrects and every acked record replays
/// byte-exactly.
#[test]
fn torn_wal_append_loses_only_the_unacked_record() {
    let guard = FailpointGuard::disarmed();
    let path = temp_path("torn-append.wal");
    let _ = std::fs::remove_file(&path);
    let (mut wal, _) = WalWriter::open(&path, BINDING).unwrap();
    wal.append(b"acked-one").unwrap();
    wal.append(b"acked-two").unwrap();
    // The 3rd append tears after 5 bytes of its frame.
    guard.rearm("wal.append=nth-1:partial-5").unwrap();
    let torn = wal.append(b"never-acked");
    guard.disarm();
    assert_injected(torn, "wal.append");
    drop(wal); // the "crash": the writer is gone, the torn tail remains
    let read = read_wal_file(&path).unwrap();
    assert_eq!(read.dropped_bytes, 5, "the torn frame prefix is on disk");
    let (mut wal, replay) = WalWriter::open(&path, BINDING).unwrap();
    assert_eq!(
        replay,
        vec![b"acked-one".to_vec(), b"acked-two".to_vec()],
        "acked records survive, the unacked one is gone"
    );
    wal.append(b"after-recovery").unwrap();
    drop(wal);
    let read = read_wal_file(&path).unwrap();
    assert_eq!(read.records.len(), 3);
    assert_eq!(read.dropped_bytes, 0);
    std::fs::remove_file(&path).unwrap();
}

/// An injected (non-torn) append failure leaves the log byte-identical:
/// nothing was acked, nothing may change.
#[test]
fn injected_append_error_leaves_the_log_intact() {
    let guard = FailpointGuard::disarmed();
    let path = temp_path("error-append.wal");
    let _ = std::fs::remove_file(&path);
    let (mut wal, _) = WalWriter::open(&path, BINDING).unwrap();
    wal.append(b"kept").unwrap();
    let before = std::fs::read(&path).unwrap();
    guard.rearm("wal.append=always:error").unwrap();
    let result = wal.append(b"refused");
    guard.disarm();
    assert_injected(result, "wal.append");
    assert_eq!(std::fs::read(&path).unwrap(), before);
    std::fs::remove_file(&path).unwrap();
}

fn snapshot_bytes(tag: &str) -> Vec<u8> {
    let mut builder = SnapshotBuilder::new();
    builder.section("payload", |w| w.put_str(tag));
    builder.to_bytes()
}

/// A torn temp-file write never touches the target snapshot: the old file
/// still opens and validates, and a retry after the "crash" succeeds.
#[test]
fn torn_write_atomic_preserves_the_old_snapshot() {
    let guard = FailpointGuard::disarmed();
    let path = temp_path("torn.snapshot");
    let old = snapshot_bytes("old-and-valid");
    write_atomic(&path, &old).unwrap();
    guard
        .rearm("snapshot.write_atomic=nth-1:partial-9")
        .unwrap();
    let result = write_atomic(&path, &snapshot_bytes("newer"));
    guard.disarm();
    assert_injected(result, "snapshot.write_atomic");
    assert_eq!(std::fs::read(&path).unwrap(), old, "target untouched");
    Snapshot::open(&path).expect("old snapshot still validates");
    // The torn temp file is on disk but harmless; the retry overwrites it.
    let newer = snapshot_bytes("newer");
    write_atomic(&path, &newer).unwrap();
    assert_eq!(std::fs::read(&path).unwrap(), newer);
    let _ = std::fs::remove_file(path.with_extension("tmp"));
    std::fs::remove_file(&path).unwrap();
}

/// A crash between the durable temp write and the rename (the
/// `snapshot.rename` window) also leaves the old snapshot in place — the
/// atomicity contract holds on both sides of the rename.
#[test]
fn crash_before_rename_preserves_the_old_snapshot() {
    let guard = FailpointGuard::disarmed();
    let path = temp_path("prerename.snapshot");
    let old = snapshot_bytes("survives");
    write_atomic(&path, &old).unwrap();
    guard.rearm("snapshot.rename=nth-1:error").unwrap();
    let result = write_atomic(&path, &snapshot_bytes("lost-in-window"));
    guard.disarm();
    assert_injected(result, "snapshot.rename");
    assert_eq!(std::fs::read(&path).unwrap(), old);
    // The fully-written temp file was left behind, as a real crash would.
    let tmp = path.with_extension("tmp");
    assert_eq!(
        std::fs::read(&tmp).unwrap(),
        snapshot_bytes("lost-in-window")
    );
    let _ = std::fs::remove_file(tmp);
    std::fs::remove_file(&path).unwrap();
}

/// Disarmed failpoints cost nothing and change nothing: the same workload
/// produces byte-identical files with the registry armed-then-cleared and
/// never-armed.
#[test]
fn disarmed_failpoints_do_not_alter_behavior() {
    let guard = FailpointGuard::disarmed();
    assert!(!ssr_fault::armed());
    let run = |tag: &str| -> Vec<u8> {
        let path = temp_path(&format!("disarmed-{tag}.wal"));
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = WalWriter::open(&path, BINDING).unwrap();
        wal.append(b"one").unwrap();
        wal.append(b"two").unwrap();
        drop(wal);
        let bytes = std::fs::read(&path).unwrap();
        std::fs::remove_file(&path).unwrap();
        bytes
    };
    let baseline = run("a");
    // Arm an unrelated site, disarm, run again: identical bytes.
    guard.rearm("some.other.site=always:error").unwrap();
    guard.disarm();
    assert_eq!(run("b"), baseline);
}
