//! Append-only write-ahead log.
//!
//! The snapshot container is immutable: mutating a database through it would
//! mean rewriting the whole file per operation. The WAL is the cheap half of
//! the usual pairing — mutations append fixed-framing records to a sibling
//! log, and opening a database replays the log on top of the last snapshot.
//! A compaction folds the log back into a fresh snapshot and truncates it.
//!
//! # On-disk layout
//!
//! ```text
//! +---------------------------+----------------------------------------------+
//! | header (24 bytes)         | records...                                   |
//! | magic  "SSRWAL\0\0"       | [u32 len][u32 crc32(payload)][payload] ...   |
//! | u32 version (LE)          |                                              |
//! | u64 snapshot len (LE)     |  <- binding: identity of the snapshot        |
//! | u32 snapshot crc (LE)     |     file this log extends                    |
//! +---------------------------+----------------------------------------------+
//! ```
//!
//! This layer frames opaque byte payloads; what a payload *means* (an
//! appended sequence, a removal) is the caller's codec, layered on top.
//!
//! # The snapshot binding
//!
//! The header names the exact snapshot file (length + CRC-32 of its bytes)
//! the log's records apply to. This closes the one crash window framing
//! alone cannot: a compaction writes the folded snapshot first and truncates
//! the log second, so a crash between the two leaves a log whose every
//! record is *already folded* into the snapshot next to it. Replaying it
//! would silently double-apply. With the binding, such a log names the
//! *previous* snapshot, the mismatch is detected at open, and
//! [`WalWriter::open`] discards the stale log instead of replaying it —
//! finishing the interrupted compaction.
//!
//! # Recovery policy
//!
//! Reading is **total**: any byte string maps to either a clean prefix of
//! records or a typed [`StorageError`], never a panic. Damage is classified
//! by where it can plausibly come from:
//!
//! - A *torn tail* — the file ends mid-header, mid-frame, with a length that
//!   overruns EOF, with a final record whose CRC fails, or with a zero-filled
//!   run where a record should start — is what an interrupted append (or a
//!   filesystem's zero-fill after a crash) legitimately leaves behind. The
//!   damaged tail is dropped; every record before it survives byte-exactly,
//!   and [`WalRead::dropped_bytes`] reports what was discarded. The writer
//!   truncates the file back to the surviving prefix on open.
//! - Damage *before* the final record — a CRC failure on a non-final record,
//!   a non-zero empty frame, a wrong magic or version — cannot be produced
//!   by a torn append and is reported as a typed error instead of being
//!   silently skipped: dropping a middle record would silently diverge the
//!   replayed state from the logged history.

use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::Path;

use crate::crc32::crc32;
use crate::error::StorageError;

/// Magic bytes opening every WAL file.
pub const WAL_MAGIC: [u8; 8] = *b"SSRWAL\0\0";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Bytes of the file header (magic + version + snapshot binding).
pub const WAL_HEADER_LEN: usize = 24;
/// Bytes of the header prefix that is constant across files (magic +
/// version); the binding after it varies per snapshot.
const WAL_FIXED_PREFIX_LEN: usize = 12;

/// Identity of the snapshot file a WAL extends: its byte length and the
/// CRC-32 of all its bytes. Recorded in the log's header so that a log can
/// never be replayed onto a snapshot it was not written against (see the
/// module docs on the compaction crash window).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct WalBinding {
    /// Length of the snapshot file in bytes.
    pub snapshot_len: u64,
    /// CRC-32 over the whole snapshot file.
    pub snapshot_crc: u32,
}

impl WalBinding {
    /// The binding naming a snapshot given its full file bytes.
    pub fn of(snapshot_bytes: &[u8]) -> WalBinding {
        WalBinding {
            snapshot_len: snapshot_bytes.len() as u64,
            snapshot_crc: crc32(snapshot_bytes),
        }
    }
}

fn header_for(binding: WalBinding) -> [u8; WAL_HEADER_LEN] {
    let mut header = [0u8; WAL_HEADER_LEN];
    header[..8].copy_from_slice(&WAL_MAGIC);
    header[8..12].copy_from_slice(&WAL_VERSION.to_le_bytes());
    header[12..20].copy_from_slice(&binding.snapshot_len.to_le_bytes());
    header[20..24].copy_from_slice(&binding.snapshot_crc.to_le_bytes());
    header
}

/// The outcome of reading a WAL: the surviving records plus enough position
/// information for a writer to resume exactly where the clean prefix ends.
#[derive(Clone, PartialEq, Debug)]
pub struct WalRead {
    /// The snapshot binding from the header, or `None` when even the header
    /// was torn (the file must be re-created).
    pub binding: Option<WalBinding>,
    /// Payloads of the intact records, in append order.
    pub records: Vec<Vec<u8>>,
    /// Byte length of the clean prefix (header + intact records). A value
    /// below [`WAL_HEADER_LEN`] means the header was torn.
    pub valid_len: usize,
    /// Bytes of torn tail dropped after the clean prefix (0 for a clean log).
    pub dropped_bytes: usize,
}

/// Decodes WAL bytes under the module's recovery policy. Total: every input
/// yields `Ok` (possibly with a dropped tail) or a typed error.
pub fn decode_wal(bytes: &[u8]) -> Result<WalRead, StorageError> {
    let torn_header = |valid: usize| {
        Ok(WalRead {
            binding: None,
            records: Vec::new(),
            valid_len: valid,
            dropped_bytes: bytes.len() - valid,
        })
    };
    if bytes.len() < WAL_FIXED_PREFIX_LEN {
        // Shorter than the constant prefix: a torn creation left a prefix of
        // the canonical magic + version behind; anything else was never a WAL.
        let canonical = header_for(WalBinding {
            snapshot_len: 0,
            snapshot_crc: 0,
        });
        return if *bytes == canonical[..bytes.len()] {
            torn_header(0)
        } else {
            Err(StorageError::BadMagic)
        };
    }
    if bytes[..8] != WAL_MAGIC {
        return Err(StorageError::BadMagic);
    }
    let version = u32::from_le_bytes(bytes[8..12].try_into().expect("4 bytes"));
    if version != WAL_VERSION {
        return Err(StorageError::UnsupportedVersion(version));
    }
    if bytes.len() < WAL_HEADER_LEN {
        // Magic and version are intact but the binding is cut short: a torn
        // creation. (The binding bytes are arbitrary, so no prefix check is
        // possible — magic + version vouch for the file.)
        return torn_header(0);
    }
    let binding = WalBinding {
        snapshot_len: u64::from_le_bytes(bytes[12..20].try_into().expect("8 bytes")),
        snapshot_crc: u32::from_le_bytes(bytes[20..24].try_into().expect("4 bytes")),
    };
    let mut records = Vec::new();
    let mut offset = WAL_HEADER_LEN;
    while offset < bytes.len() {
        if bytes.len() - offset < 8 {
            break; // torn tail: frame header cut short
        }
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(bytes[offset + 4..offset + 8].try_into().expect("4 bytes"));
        if len == 0 {
            // Appends never frame an empty payload, but crc32("") == 0, so a
            // zero-filled tail (filesystems may zero-extend across a crash)
            // would otherwise parse as an endless run of valid empty records.
            if crc == 0 && bytes[offset..].iter().all(|&b| b == 0) {
                break; // torn tail: zero-filled
            }
            return Err(StorageError::Malformed(format!(
                "wal record {} has an empty payload",
                records.len()
            )));
        }
        let end = offset + 8 + len;
        if end > bytes.len() {
            break; // torn tail: length overruns EOF
        }
        let payload = &bytes[offset + 8..end];
        if crc32(payload) != crc {
            if end == bytes.len() {
                break; // torn final record
            }
            return Err(StorageError::ChecksumMismatch {
                section: format!("wal record {}", records.len()),
            });
        }
        records.push(payload.to_vec());
        offset = end;
    }
    Ok(WalRead {
        binding: Some(binding),
        records,
        valid_len: offset,
        dropped_bytes: bytes.len() - offset,
    })
}

/// Reads and decodes a WAL file. Fails with [`StorageError::Io`] when the
/// file does not exist (callers that want "missing means empty" use
/// [`WalWriter::open`], which creates it).
pub fn read_wal_file(path: impl AsRef<Path>) -> Result<WalRead, StorageError> {
    decode_wal(&std::fs::read(path)?)
}

/// An open, resumable WAL. Every append is one `write_all` of a fully framed
/// record followed by a full `fsync` (`sync_all` — data *and* metadata, so
/// an acked record survives power loss even when the append grew the file),
/// so the file only ever grows by whole frames plus at most one torn tail —
/// exactly the shape [`decode_wal`] recovers from.
///
/// # Failpoints
///
/// [`Self::append`] hosts the `wal.append` failpoint (a `partial-N` action
/// writes only the first N bytes of the frame — a modelled torn write) and
/// [`Self::reset`] hosts `wal.reset`. An append that returns an injected
/// error leaves the file with a torn tail, exactly like a crash mid-append;
/// the writer must be discarded and reopened, which is what the chaos
/// harness does to simulate the crash.
pub struct WalWriter {
    file: File,
    len: u64,
    records: usize,
}

impl WalWriter {
    /// Creates (or truncates) the WAL at `path`, writing a fresh header
    /// bound to `binding`.
    pub fn create(path: impl AsRef<Path>, binding: WalBinding) -> Result<WalWriter, StorageError> {
        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(true)
            .open(path)?;
        file.write_all(&header_for(binding))?;
        file.sync_all()?;
        Ok(WalWriter {
            file,
            len: WAL_HEADER_LEN as u64,
            records: 0,
        })
    }

    /// Opens the WAL at `path` for the snapshot identified by `expected`,
    /// recovering per the module policy:
    ///
    /// - missing file or torn header → a fresh empty log, nothing to replay;
    /// - clean log bound to `expected` → resume, returning the surviving
    ///   record payloads (a torn tail is truncated away first);
    /// - clean log bound to a *different* snapshot → a compaction was
    ///   interrupted after its snapshot landed: every record is already
    ///   folded, so the stale log is discarded and the compaction finished
    ///   (a fresh empty log bound to `expected`);
    /// - mid-log corruption, bad magic or bad version → a typed error.
    pub fn open(
        path: impl AsRef<Path>,
        expected: WalBinding,
    ) -> Result<(WalWriter, Vec<Vec<u8>>), StorageError> {
        let path = path.as_ref();
        let bytes = match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e.into()),
        };
        let read = decode_wal(&bytes)?;
        match read.binding {
            Some(binding) if binding == expected => {
                let mut file = OpenOptions::new().read(true).write(true).open(path)?;
                if read.dropped_bytes > 0 {
                    file.set_len(read.valid_len as u64)?;
                    file.sync_data()?;
                }
                file.seek(SeekFrom::Start(read.valid_len as u64))?;
                let records = read.records;
                Ok((
                    WalWriter {
                        file,
                        len: read.valid_len as u64,
                        records: records.len(),
                    },
                    records,
                ))
            }
            // Torn header, missing file, or a stale log whose records are
            // already folded into the snapshot: start empty.
            _ => Ok((WalWriter::create(path, expected)?, Vec::new())),
        }
    }

    /// Appends one record (framed, checksummed, fsynced — the record is
    /// durable when this returns). The payload must be non-empty — empty
    /// frames are reserved for torn-tail detection.
    pub fn append(&mut self, payload: &[u8]) -> Result<(), StorageError> {
        let frame = crate::frame::frame_bytes(payload)?;
        match ssr_fault::evaluate("wal.append") {
            Some(ssr_fault::Fault::PartialWrite(n)) => {
                // A torn write: only a prefix of the frame reaches the disk
                // before the "crash". The tear is synced so the recovery
                // path sees exactly what a real power loss would leave.
                self.file.write_all(&frame[..n.min(frame.len())])?;
                self.file.sync_all()?;
                return Err(ssr_fault::injected_io_error("wal.append").into());
            }
            Some(ssr_fault::Fault::Error) => {
                return Err(ssr_fault::injected_io_error("wal.append").into());
            }
            None => {}
        }
        self.file.write_all(&frame)?;
        // sync_all, not sync_data: an append grows the file, and on many
        // filesystems the new length is metadata — without it an acked
        // record can vanish on power loss even though its bytes were synced.
        self.file.sync_all()?;
        self.len += frame.len() as u64;
        self.records += 1;
        Ok(())
    }

    /// Truncates the log back to an empty header bound to `binding` — the
    /// tail end of a compaction, after the folded snapshot (whose identity
    /// `binding` names) has been durably renamed into place.
    pub fn reset(&mut self, binding: WalBinding) -> Result<(), StorageError> {
        if ssr_fault::evaluate("wal.reset").is_some() {
            return Err(ssr_fault::injected_io_error("wal.reset").into());
        }
        self.file.set_len(WAL_HEADER_LEN as u64)?;
        self.file.seek(SeekFrom::Start(0))?;
        self.file.write_all(&header_for(binding))?;
        self.file.sync_all()?;
        self.len = WAL_HEADER_LEN as u64;
        self.records = 0;
        Ok(())
    }

    /// Number of records in the log.
    pub fn record_count(&self) -> usize {
        self.records
    }

    /// Current file length in bytes (header + frames).
    pub fn len_bytes(&self) -> u64 {
        self.len
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const BINDING: WalBinding = WalBinding {
        snapshot_len: 41,
        snapshot_crc: 0x1234_5678,
    };
    const OTHER: WalBinding = WalBinding {
        snapshot_len: 99,
        snapshot_crc: 0x9ABC_DEF0,
    };

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join("ssr-wal-tests");
        std::fs::create_dir_all(&dir).unwrap();
        dir.join(format!("{name}-{}", std::process::id()))
    }

    fn framed(records: &[&[u8]]) -> Vec<u8> {
        let mut bytes = header_for(BINDING).to_vec();
        for payload in records {
            crate::frame::frame_into(&mut bytes, payload).unwrap();
        }
        bytes
    }

    #[test]
    fn append_read_roundtrip_and_resume() {
        let path = temp_path("roundtrip.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, replay) = WalWriter::open(&path, BINDING).unwrap();
        assert!(replay.is_empty());
        wal.append(b"one").unwrap();
        wal.append(b"two-two").unwrap();
        assert_eq!(wal.record_count(), 2);
        drop(wal);
        let (mut wal, replay) = WalWriter::open(&path, BINDING).unwrap();
        assert_eq!(replay, vec![b"one".to_vec(), b"two-two".to_vec()]);
        wal.append(b"three").unwrap();
        drop(wal);
        let read = read_wal_file(&path).unwrap();
        assert_eq!(read.binding, Some(BINDING));
        assert_eq!(read.records.len(), 3);
        assert_eq!(read.dropped_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn torn_tails_are_dropped_cleanly() {
        let clean = framed(&[b"alpha", b"beta"]);
        let first_end = WAL_HEADER_LEN + 8 + 5;
        // Every strict prefix recovers without error and never invents or
        // loses records before the tear.
        for cut in 0..clean.len() {
            let read = decode_wal(&clean[..cut]).unwrap();
            // "alpha" survives exactly when its full frame made it to disk;
            // "beta"'s frame only completes at the uncut length.
            let expect = usize::from(cut >= first_end);
            assert_eq!(read.records.len(), expect, "cut at {cut}");
            assert_eq!(read.valid_len + read.dropped_bytes, cut);
            if cut < WAL_HEADER_LEN {
                assert_eq!(read.binding, None, "cut at {cut}");
            } else {
                assert_eq!(read.binding, Some(BINDING), "cut at {cut}");
            }
        }
        // Zero-filled extension after a crash.
        let mut zeroed = clean.clone();
        zeroed.extend_from_slice(&[0u8; 23]);
        let read = decode_wal(&zeroed).unwrap();
        assert_eq!(read.records.len(), 2);
        assert_eq!(read.dropped_bytes, 23);
    }

    #[test]
    fn mid_log_corruption_is_a_typed_error() {
        let clean = framed(&[b"alpha", b"beta"]);
        // Flip a payload byte of the FIRST record: non-final damage.
        let mut bad = clean.clone();
        bad[WAL_HEADER_LEN + 8] ^= 0x40;
        match decode_wal(&bad) {
            Err(StorageError::ChecksumMismatch { section }) => {
                assert_eq!(section, "wal record 0");
            }
            other => panic!("expected mid-log checksum error, got {other:?}"),
        }
        // The same flip in the FINAL record is indistinguishable from a torn
        // append and drops only that record.
        let mut torn = clean.clone();
        let last = clean.len() - 1;
        torn[last] ^= 0x40;
        let read = decode_wal(&torn).unwrap();
        assert_eq!(read.records, vec![b"alpha".to_vec()]);
        assert!(read.dropped_bytes > 0);
    }

    #[test]
    fn bad_magic_and_version_are_rejected() {
        let mut bytes = framed(&[b"x"]);
        bytes[0] ^= 0xFF;
        assert!(matches!(decode_wal(&bytes), Err(StorageError::BadMagic)));
        let mut bytes = framed(&[b"x"]);
        bytes[8] = 9;
        assert!(matches!(
            decode_wal(&bytes),
            Err(StorageError::UnsupportedVersion(9))
        ));
        assert!(matches!(
            decode_wal(b"NOTAWAL"),
            Err(StorageError::BadMagic)
        ));
    }

    #[test]
    fn open_truncates_torn_tail_and_resumes() {
        let path = temp_path("resume.wal");
        let mut bytes = framed(&[b"keep"]);
        bytes.extend_from_slice(&[7u8, 0, 0]); // torn frame header
        std::fs::write(&path, &bytes).unwrap();
        let (mut wal, replay) = WalWriter::open(&path, BINDING).unwrap();
        assert_eq!(replay, vec![b"keep".to_vec()]);
        wal.append(b"appended").unwrap();
        drop(wal);
        let read = read_wal_file(&path).unwrap();
        assert_eq!(read.records, vec![b"keep".to_vec(), b"appended".to_vec()]);
        assert_eq!(read.dropped_bytes, 0);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn stale_binding_discards_the_log() {
        // A log bound to the OLD snapshot next to a NEW snapshot is the
        // leftover of an interrupted compaction: every record is already
        // folded, so opening against the new binding must not replay them.
        let path = temp_path("stale.wal");
        std::fs::write(&path, framed(&[b"folded-op"])).unwrap();
        let (wal, replay) = WalWriter::open(&path, OTHER).unwrap();
        assert!(replay.is_empty());
        assert_eq!(wal.record_count(), 0);
        drop(wal);
        let read = read_wal_file(&path).unwrap();
        assert_eq!(read.binding, Some(OTHER));
        assert!(read.records.is_empty());
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn reset_empties_and_rebinds_the_log() {
        let path = temp_path("reset.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = WalWriter::open(&path, BINDING).unwrap();
        wal.append(b"gone soon").unwrap();
        wal.reset(OTHER).unwrap();
        assert_eq!(wal.record_count(), 0);
        assert_eq!(wal.len_bytes(), WAL_HEADER_LEN as u64);
        wal.append(b"fresh").unwrap();
        drop(wal);
        let read = read_wal_file(&path).unwrap();
        assert_eq!(read.binding, Some(OTHER));
        assert_eq!(read.records, vec![b"fresh".to_vec()]);
        std::fs::remove_file(&path).unwrap();
    }

    #[test]
    fn empty_payloads_are_rejected_at_both_ends() {
        let path = temp_path("empty.wal");
        let _ = std::fs::remove_file(&path);
        let (mut wal, _) = WalWriter::open(&path, BINDING).unwrap();
        assert!(matches!(wal.append(b""), Err(StorageError::Malformed(_))));
        drop(wal);
        std::fs::remove_file(&path).unwrap();
        // A non-zero empty frame mid-log is malformed, not a tear.
        let mut bytes = framed(&[]);
        bytes.extend_from_slice(&0u32.to_le_bytes());
        bytes.extend_from_slice(&0xDEAD_BEEFu32.to_le_bytes());
        bytes.extend_from_slice(b"junk");
        assert!(matches!(
            decode_wal(&bytes),
            Err(StorageError::Malformed(_))
        ));
    }
}
