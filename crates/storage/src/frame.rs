//! Length-prefixed, checksummed byte frames.
//!
//! One framing convention is shared by everything in the system that moves
//! opaque payloads over a byte boundary: the write-ahead log ([`crate::wal`])
//! frames its records with it on disk, and the query server's wire protocol
//! (`ssr-core::wire`) frames its requests and responses with it over TCP.
//!
//! ```text
//! +-------------+---------------------+------------------+
//! | u32 len (LE)| u32 crc32(payload)  | payload (len B)  |
//! +-------------+---------------------+------------------+
//! ```
//!
//! Payloads must be non-empty: `len == 0` is reserved so that a zero-filled
//! region (what a crashed filesystem may leave behind a WAL, or a missing
//! write leaves on a socket) can never parse as an endless run of valid
//! empty frames — `crc32("") == 0`.
//!
//! Decoding is **total**: every input yields a payload or a typed
//! [`StorageError`], never a panic, and the stream reader
//! ([`read_frame`]) is bounded by an explicit maximum payload length so a
//! flipped length byte can never make it wait for gigabytes that will never
//! arrive.

use std::io::{Read, Write};

use crate::crc32::crc32;
use crate::error::StorageError;

/// Bytes of the frame header (`u32` length + `u32` CRC-32).
pub const FRAME_HEADER_LEN: usize = 8;

/// Appends one framed payload to `out`. The payload must be non-empty and at
/// most `u32::MAX` bytes.
pub fn frame_into(out: &mut Vec<u8>, payload: &[u8]) -> Result<(), StorageError> {
    check_frame_len(payload)?;
    out.reserve(FRAME_HEADER_LEN + payload.len());
    out.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out.extend_from_slice(payload);
    Ok(())
}

/// One framed payload as a fresh byte vector.
pub fn frame_bytes(payload: &[u8]) -> Result<Vec<u8>, StorageError> {
    let mut out = Vec::with_capacity(FRAME_HEADER_LEN + payload.len());
    frame_into(&mut out, payload)?;
    Ok(out)
}

fn check_frame_len(payload: &[u8]) -> Result<(), StorageError> {
    if payload.is_empty() {
        return Err(StorageError::Malformed(
            "frame payloads must be non-empty".into(),
        ));
    }
    if payload.len() > u32::MAX as usize {
        return Err(StorageError::Malformed(format!(
            "frame payload of {} bytes exceeds the u32 length limit",
            payload.len()
        )));
    }
    Ok(())
}

/// Decodes a buffer holding **exactly one** frame, returning its payload.
///
/// Every deviation is a typed error: a buffer shorter than the header or the
/// declared payload is [`StorageError::Truncated`], a buffer with bytes after
/// the payload is [`StorageError::TrailingBytes`], a zero length is
/// [`StorageError::Malformed`] and a checksum failure is
/// [`StorageError::ChecksumMismatch`].
pub fn decode_frame(bytes: &[u8]) -> Result<&[u8], StorageError> {
    if bytes.len() < FRAME_HEADER_LEN {
        return Err(StorageError::Truncated {
            context: "frame header",
        });
    }
    let len = u32::from_le_bytes(bytes[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(bytes[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(StorageError::Malformed("frame has an empty payload".into()));
    }
    let end = FRAME_HEADER_LEN
        .checked_add(len)
        .ok_or(StorageError::Malformed("frame length overflows".into()))?;
    if bytes.len() < end {
        return Err(StorageError::Truncated {
            context: "frame payload",
        });
    }
    if bytes.len() > end {
        return Err(StorageError::TrailingBytes {
            region: "frame payload".into(),
        });
    }
    let payload = &bytes[FRAME_HEADER_LEN..end];
    if crc32(payload) != crc {
        return Err(StorageError::ChecksumMismatch {
            section: "frame payload".into(),
        });
    }
    Ok(payload)
}

/// Writes one framed payload to a stream (header + payload, no flush —
/// callers flush when a message boundary matters, e.g. before awaiting a
/// response).
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> Result<(), StorageError> {
    check_frame_len(payload)?;
    let mut header = [0u8; FRAME_HEADER_LEN];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    w.write_all(&header)?;
    w.write_all(payload)?;
    Ok(())
}

/// Reads one framed payload from a stream.
///
/// Returns `Ok(None)` on a clean end of stream (EOF before the first header
/// byte) — the peer hanging up between messages is not an error. Everything
/// else is total and typed: EOF inside a frame is
/// [`StorageError::Truncated`], a declared length above `max_payload_len` is
/// [`StorageError::Malformed`] (refused **before** any payload byte is read,
/// so a corrupt length can never stall the reader), and a checksum failure
/// is [`StorageError::ChecksumMismatch`].
pub fn read_frame(
    r: &mut impl Read,
    max_payload_len: usize,
) -> Result<Option<Vec<u8>>, StorageError> {
    let mut header = [0u8; FRAME_HEADER_LEN];
    let mut filled = 0;
    while filled < FRAME_HEADER_LEN {
        match r.read(&mut header[filled..]) {
            Ok(0) => {
                return if filled == 0 {
                    Ok(None)
                } else {
                    Err(StorageError::Truncated {
                        context: "frame header",
                    })
                };
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
    let crc = u32::from_le_bytes(header[4..8].try_into().expect("4 bytes"));
    if len == 0 {
        return Err(StorageError::Malformed("frame has an empty payload".into()));
    }
    if len > max_payload_len {
        return Err(StorageError::Malformed(format!(
            "frame declares a {len}-byte payload, above the {max_payload_len}-byte limit"
        )));
    }
    let mut payload = vec![0u8; len];
    let mut filled = 0;
    while filled < len {
        match r.read(&mut payload[filled..]) {
            Ok(0) => {
                return Err(StorageError::Truncated {
                    context: "frame payload",
                })
            }
            Ok(n) => filled += n,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e.into()),
        }
    }
    if crc32(&payload) != crc {
        return Err(StorageError::ChecksumMismatch {
            section: "frame payload".into(),
        });
    }
    Ok(Some(payload))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_buffer_and_stream() {
        let framed = frame_bytes(b"hello frames").unwrap();
        assert_eq!(decode_frame(&framed).unwrap(), b"hello frames");
        let mut stream = std::io::Cursor::new(&framed);
        assert_eq!(
            read_frame(&mut stream, 1024).unwrap().as_deref(),
            Some(&b"hello frames"[..])
        );
        // Clean EOF after the frame.
        assert_eq!(read_frame(&mut stream, 1024).unwrap(), None);
    }

    #[test]
    fn every_truncation_is_typed() {
        let framed = frame_bytes(b"payload!").unwrap();
        for cut in 0..framed.len() {
            let err = decode_frame(&framed[..cut]).unwrap_err();
            assert!(
                matches!(err, StorageError::Truncated { .. }),
                "cut at {cut}: {err:?}"
            );
            // Stream form: EOF before the first byte is a clean None, EOF
            // anywhere inside the frame is Truncated.
            let mut stream = std::io::Cursor::new(&framed[..cut]);
            match read_frame(&mut stream, 1024) {
                Ok(None) => assert_eq!(cut, 0, "only an empty stream is a clean EOF"),
                Err(StorageError::Truncated { .. }) => assert!(cut > 0),
                other => panic!("cut at {cut}: {other:?}"),
            }
        }
    }

    #[test]
    fn every_single_byte_flip_is_typed() {
        let framed = frame_bytes(b"flip me around").unwrap();
        for pos in 0..framed.len() {
            for bit in 0..8 {
                let mut bad = framed.clone();
                bad[pos] ^= 1 << bit;
                let err = decode_frame(&bad).unwrap_err();
                assert!(
                    matches!(
                        err,
                        StorageError::Truncated { .. }
                            | StorageError::TrailingBytes { .. }
                            | StorageError::ChecksumMismatch { .. }
                            | StorageError::Malformed(_)
                    ),
                    "flip bit {bit} at {pos}: {err:?}"
                );
            }
        }
    }

    #[test]
    fn oversized_length_is_refused_before_reading() {
        let mut framed = frame_bytes(b"x").unwrap();
        framed[..4].copy_from_slice(&u32::MAX.to_le_bytes());
        let mut stream = std::io::Cursor::new(&framed);
        assert!(matches!(
            read_frame(&mut stream, 1024),
            Err(StorageError::Malformed(_))
        ));
        // The reader stopped at the header: no payload byte was consumed.
        assert_eq!(stream.position(), FRAME_HEADER_LEN as u64);
    }

    #[test]
    fn empty_payloads_are_rejected() {
        assert!(matches!(frame_bytes(b""), Err(StorageError::Malformed(_))));
        let bytes = [0u8; FRAME_HEADER_LEN];
        assert!(matches!(
            decode_frame(&bytes),
            Err(StorageError::Malformed(_))
        ));
    }
}
