//! The typed error returned by every fallible storage operation.
//!
//! Loading is *total*: no input — truncated, bit-flipped, malicious or simply
//! of the wrong type — may panic the decoder. Every failure mode surfaces as
//! a [`StorageError`] variant so that callers (the `ssr` CLI, the cold-start
//! path of a server) can distinguish "file is damaged" from "file is for a
//! different configuration".

use std::fmt;

/// Any way reading or writing a snapshot can fail.
#[derive(Debug)]
pub enum StorageError {
    /// The underlying file could not be read or written.
    Io(std::io::Error),
    /// The file does not start with the snapshot magic bytes.
    BadMagic,
    /// The file declares a format version this build cannot read.
    UnsupportedVersion(u32),
    /// The input ended before the value being decoded was complete.
    ///
    /// `context` names what was being read (a primitive, a section table
    /// entry, a section payload…).
    Truncated {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// The header (magic, version and section table) failed its checksum.
    HeaderChecksumMismatch,
    /// A section's payload failed its CRC-32 check.
    ChecksumMismatch {
        /// Name of the damaged section.
        section: String,
    },
    /// A required section is absent from the snapshot.
    MissingSection(String),
    /// A region decoded successfully but left unconsumed bytes behind,
    /// which a well-formed snapshot never does.
    TrailingBytes {
        /// Name of the region (a section name, `"section table"`, …).
        region: String,
    },
    /// The bytes parsed but describe an impossible structure (an out-of-range
    /// index, an invalid boolean, a length that exceeds the input, …).
    Malformed(String),
    /// The snapshot stores a different element type than the caller asked
    /// to decode.
    ElementMismatch {
        /// Element tag the caller's type expects.
        expected: String,
        /// Element tag stored in the snapshot.
        found: String,
    },
    /// The snapshot was built with a different distance measure than the one
    /// supplied for loading.
    DistanceMismatch {
        /// Name of the distance supplied by the caller.
        expected: String,
        /// Name of the distance stored in the snapshot.
        found: String,
    },
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "i/o error: {e}"),
            StorageError::BadMagic => write!(f, "not a snapshot file (bad magic)"),
            StorageError::UnsupportedVersion(v) => {
                write!(f, "unsupported snapshot format version {v}")
            }
            StorageError::Truncated { context } => {
                write!(f, "truncated input while reading {context}")
            }
            StorageError::HeaderChecksumMismatch => {
                write!(f, "snapshot header failed its checksum")
            }
            StorageError::ChecksumMismatch { section } => {
                write!(f, "section '{section}' failed its CRC-32 check")
            }
            StorageError::MissingSection(name) => {
                write!(f, "snapshot has no section named '{name}'")
            }
            StorageError::TrailingBytes { region } => {
                write!(f, "unexpected trailing bytes after {region}")
            }
            StorageError::Malformed(msg) => write!(f, "malformed snapshot: {msg}"),
            StorageError::ElementMismatch { expected, found } => write!(
                f,
                "snapshot stores '{found}' elements, caller expected '{expected}'"
            ),
            StorageError::DistanceMismatch { expected, found } => write!(
                f,
                "snapshot was built with the '{found}' distance, caller supplied '{expected}'"
            ),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_messages_name_the_failure() {
        assert!(StorageError::BadMagic.to_string().contains("magic"));
        assert!(StorageError::UnsupportedVersion(9)
            .to_string()
            .contains('9'));
        assert!(StorageError::Truncated { context: "u64" }
            .to_string()
            .contains("u64"));
        assert!(StorageError::ChecksumMismatch {
            section: "index".into()
        }
        .to_string()
        .contains("index"));
        assert!(StorageError::ElementMismatch {
            expected: "symbol".into(),
            found: "pitch".into()
        }
        .to_string()
        .contains("pitch"));
    }

    #[test]
    fn io_errors_convert_and_expose_a_source() {
        let err: StorageError = std::io::Error::new(std::io::ErrorKind::NotFound, "missing").into();
        assert!(matches!(err, StorageError::Io(_)));
        assert!(std::error::Error::source(&err).is_some());
        assert!(std::error::Error::source(&StorageError::BadMagic).is_none());
    }
}
