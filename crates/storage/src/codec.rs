//! Binary codec: a byte-oriented [`Writer`]/[`Reader`] pair and the
//! [`Encode`]/[`Decode`] traits the rest of the workspace implements for its
//! types.
//!
//! The encoding is deliberately boring: fixed-width little-endian integers,
//! `f64` as IEEE-754 bits, length-prefixed strings and vectors. There is no
//! compression and no varint cleverness — snapshots are bulk data whose cost
//! is dominated by `f64` tables and element payloads, and a fixed layout
//! keeps both the encoder and the *total* (panic-free) decoder trivially
//! auditable.
//!
//! Decoding is strict: every read is bounds-checked (truncation surfaces as
//! [`StorageError::Truncated`]), booleans must be exactly `0` or `1`, length
//! prefixes may not exceed the bytes actually remaining, and strings must be
//! valid UTF-8. Combined with the per-section CRCs of
//! [`crate::snapshot`], a damaged snapshot always yields a typed error.

use crate::error::StorageError;

/// An append-only byte buffer with typed `put_*` helpers.
#[derive(Default, Debug)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer::default()
    }

    /// Runs `fill` against a scratch writer and returns how many bytes it
    /// wrote. The measuring primitive behind [`Encode::encoded_len`] and the
    /// indexes' structural space accounting.
    pub fn measure(fill: impl FnOnce(&mut Writer)) -> usize {
        let mut w = Writer::new();
        fill(&mut w);
        w.len()
    }

    /// Number of bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing was written yet.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the writer and returns its bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrow the bytes written so far.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Appends raw bytes verbatim (no length prefix).
    pub fn put_raw(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian `u16`.
    pub fn put_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u32`.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `u64`.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i32`.
    pub fn put_i32(&mut self, v: i32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian `i64`.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an `f64` as its IEEE-754 bit pattern (bit-exact round-trip,
    /// NaN payloads and signed zeros included).
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a `usize` as a `u64` (portable across word sizes).
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Appends a boolean as one byte (`0` or `1`).
    pub fn put_bool(&mut self, v: bool) {
        self.put_u8(v as u8);
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.put_raw(s.as_bytes());
    }
}

/// A bounds-checked cursor over a byte slice.
#[derive(Debug)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at its start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes left to read.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Takes the next `n` bytes, or fails with [`StorageError::Truncated`].
    pub fn take(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], StorageError> {
        if n > self.remaining() {
            return Err(StorageError::Truncated { context });
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Reads one byte.
    pub fn take_u8(&mut self) -> Result<u8, StorageError> {
        Ok(self.take(1, "u8")?[0])
    }

    /// Reads a little-endian `u16`.
    pub fn take_u16(&mut self) -> Result<u16, StorageError> {
        let b = self.take(2, "u16")?;
        Ok(u16::from_le_bytes([b[0], b[1]]))
    }

    /// Reads a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32, StorageError> {
        let b = self.take(4, "u32")?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64, StorageError> {
        let b = self.take(8, "u64")?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads a little-endian `i32`.
    pub fn take_i32(&mut self) -> Result<i32, StorageError> {
        let b = self.take(4, "i32")?;
        Ok(i32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Reads a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64, StorageError> {
        let b = self.take(8, "i64")?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Reads an `f64` from its bit pattern.
    pub fn take_f64(&mut self) -> Result<f64, StorageError> {
        Ok(f64::from_bits(self.take_u64()?))
    }

    /// Reads a `usize` stored as `u64`, rejecting values that do not fit the
    /// host word size.
    pub fn take_usize(&mut self) -> Result<usize, StorageError> {
        usize::try_from(self.take_u64()?)
            .map_err(|_| StorageError::Malformed("usize value exceeds host word size".into()))
    }

    /// Reads a boolean, rejecting any byte other than `0` or `1`.
    pub fn take_bool(&mut self) -> Result<bool, StorageError> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            other => Err(StorageError::Malformed(format!(
                "invalid boolean byte {other}"
            ))),
        }
    }

    /// Reads a length to be consumed from this reader, rejecting prefixes
    /// that exceed the bytes remaining. `min_item_bytes` is the smallest
    /// possible encoding of one of the `len` items that follow (1 for
    /// variable payloads); the check caps pathological prefixes in damaged
    /// input before any allocation happens.
    pub fn take_len(&mut self, min_item_bytes: usize) -> Result<usize, StorageError> {
        let len = self.take_usize()?;
        let needed = len
            .checked_mul(min_item_bytes.max(1))
            .ok_or_else(|| StorageError::Malformed("length prefix overflows".into()))?;
        if needed > self.remaining() {
            return Err(StorageError::Truncated {
                context: "length-prefixed payload",
            });
        }
        Ok(len)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String, StorageError> {
        let len = self.take_len(1)?;
        let bytes = self.take(len, "string payload")?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| StorageError::Malformed("string is not valid UTF-8".into()))
    }

    /// Fails with [`StorageError::TrailingBytes`] unless everything was
    /// consumed. Call after decoding a region that must be exact.
    pub fn expect_empty(&self, region: &str) -> Result<(), StorageError> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(StorageError::TrailingBytes {
                region: region.to_string(),
            })
        }
    }
}

/// A type that can write itself into a [`Writer`].
///
/// Encoding is infallible (the sink is memory). Every implementation must
/// write **at least one byte** — [`Reader::take_len`] relies on that to bound
/// length prefixes read from damaged input.
pub trait Encode {
    /// Appends this value's encoding to `w`.
    fn encode(&self, w: &mut Writer);

    /// Number of bytes [`Self::encode`] would write, measured by encoding
    /// into a scratch buffer. Intended for space accounting, not hot paths.
    fn encoded_len(&self) -> usize {
        Writer::measure(|w| self.encode(w))
    }
}

/// A type that can reconstruct itself from a [`Reader`].
pub trait Decode: Sized {
    /// Reads one value, consuming exactly the bytes its encoding occupies.
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError>;
}

/// A type that needs external context (a metric, a distance…) to
/// reconstruct itself — the runtime half of values whose serialized form is
/// pure data.
pub trait DecodeWith<C>: Sized {
    /// Reads one value, attaching `ctx` to the decoded structure.
    fn decode_with(r: &mut Reader<'_>, ctx: C) -> Result<Self, StorageError>;
}

macro_rules! codec_for_primitive {
    ($ty:ty, $put:ident, $take:ident) => {
        impl Encode for $ty {
            fn encode(&self, w: &mut Writer) {
                w.$put(*self);
            }
        }

        impl Decode for $ty {
            fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
                r.$take()
            }
        }
    };
}

codec_for_primitive!(u8, put_u8, take_u8);
codec_for_primitive!(u16, put_u16, take_u16);
codec_for_primitive!(u32, put_u32, take_u32);
codec_for_primitive!(u64, put_u64, take_u64);
codec_for_primitive!(i32, put_i32, take_i32);
codec_for_primitive!(i64, put_i64, take_i64);
codec_for_primitive!(f64, put_f64, take_f64);
codec_for_primitive!(usize, put_usize, take_usize);
codec_for_primitive!(bool, put_bool, take_bool);

impl Encode for String {
    fn encode(&self, w: &mut Writer) {
        w.put_str(self);
    }
}

impl Decode for String {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        r.take_str()
    }
}

impl<T: Encode> Encode for Option<T> {
    fn encode(&self, w: &mut Writer) {
        match self {
            None => w.put_u8(0),
            Some(v) => {
                w.put_u8(1);
                v.encode(w);
            }
        }
    }
}

impl<T: Decode> Decode for Option<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        match r.take_u8()? {
            0 => Ok(None),
            1 => Ok(Some(T::decode(r)?)),
            other => Err(StorageError::Malformed(format!(
                "invalid Option tag {other}"
            ))),
        }
    }
}

impl<T: Encode> Encode for Vec<T> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for item in self {
            item.encode(w);
        }
    }
}

impl<T: Decode> Decode for Vec<T> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let len = r.take_len(1)?;
        let mut items = Vec::with_capacity(len);
        for _ in 0..len {
            items.push(T::decode(r)?);
        }
        Ok(items)
    }
}

impl<A: Encode, B: Encode> Encode for (A, B) {
    fn encode(&self, w: &mut Writer) {
        self.0.encode(w);
        self.1.encode(w);
    }
}

impl<A: Decode, B: Decode> Decode for (A, B) {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok((A::decode(r)?, B::decode(r)?))
    }
}

/// Every [`Decode`] type trivially supports context-free [`DecodeWith`].
impl<T: Decode> DecodeWith<()> for T {
    fn decode_with(r: &mut Reader<'_>, _ctx: ()) -> Result<Self, StorageError> {
        T::decode(r)
    }
}

/// An element type that can live inside a snapshot, tagged so that a loader
/// can verify — before decoding any payload — that the file stores the
/// element type the caller's generic instantiation expects.
pub trait StorableElement: Encode + Decode {
    /// Stable, human-readable tag written into snapshot manifests
    /// (`"symbol"`, `"pitch"`, `"point2d"`, …).
    const TAG: &'static str;
}

// `f64` is both a scalar element type (time series) and a codec primitive;
// the orphan rule puts its element tag here rather than in `ssr-sequence`.
impl StorableElement for f64 {
    const TAG: &'static str = "f64";
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.encode(&mut w);
        assert_eq!(w.len(), value.encoded_len());
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.expect_empty("test value").unwrap();
        assert_eq!(back, value);
    }

    #[test]
    fn primitives_roundtrip() {
        roundtrip(0u8);
        roundtrip(255u8);
        roundtrip(u16::MAX);
        roundtrip(u32::MAX);
        roundtrip(u64::MAX);
        roundtrip(-5i32);
        roundtrip(i64::MIN);
        roundtrip(std::f64::consts::PI);
        roundtrip(-0.0f64);
        roundtrip(usize::MAX);
        roundtrip(true);
        roundtrip(false);
        roundtrip("héllo \u{1F980}".to_string());
        roundtrip(String::new());
        roundtrip(Some(42u64));
        roundtrip(Option::<u64>::None);
        roundtrip(vec![1u32, 2, 3]);
        roundtrip(Vec::<u64>::new());
        roundtrip((7usize, "pair".to_string()));
        roundtrip(vec![(1u64, 2.5f64), (3, -0.25)]);
    }

    #[test]
    fn nan_bit_patterns_survive() {
        let nan = f64::from_bits(0x7FF8_0000_0000_1234);
        let mut w = Writer::new();
        nan.encode(&mut w);
        let bytes = w.into_bytes();
        let back = f64::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.to_bits(), nan.to_bits());
    }

    #[test]
    fn truncation_yields_typed_errors_for_every_prefix() {
        let mut w = Writer::new();
        vec![(1u64, "ab".to_string()), (2, "cdef".to_string())].encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            let err = Vec::<(u64, String)>::decode(&mut Reader::new(&bytes[..cut]))
                .expect_err("prefix must fail");
            assert!(
                matches!(
                    err,
                    StorageError::Truncated { .. } | StorageError::Malformed(_)
                ),
                "cut={cut} gave {err:?}"
            );
        }
    }

    #[test]
    fn pathological_length_prefix_is_rejected_before_allocation() {
        let mut w = Writer::new();
        w.put_u64(u64::MAX); // claims ~1.8e19 items
        let bytes = w.into_bytes();
        let err = Vec::<u8>::decode(&mut Reader::new(&bytes)).unwrap_err();
        assert!(
            matches!(
                err,
                StorageError::Truncated { .. } | StorageError::Malformed(_)
            ),
            "{err:?}"
        );
    }

    #[test]
    fn strict_booleans_options_and_utf8() {
        assert!(matches!(
            bool::decode(&mut Reader::new(&[2])),
            Err(StorageError::Malformed(_))
        ));
        assert!(matches!(
            Option::<u8>::decode(&mut Reader::new(&[7, 0])),
            Err(StorageError::Malformed(_))
        ));
        let mut w = Writer::new();
        w.put_usize(2);
        w.put_raw(&[0xFF, 0xFE]);
        assert!(matches!(
            String::decode(&mut Reader::new(w.bytes())),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn trailing_bytes_are_reported() {
        let mut w = Writer::new();
        w.put_u8(1);
        w.put_u8(2);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let _ = u8::decode(&mut r).unwrap();
        let err = r.expect_empty("unit test region").unwrap_err();
        assert!(
            matches!(err, StorageError::TrailingBytes { region } if region == "unit test region")
        );
    }
}
