//! # ssr-storage
//!
//! Versioned, checksummed on-disk snapshots for the subsequence-retrieval
//! framework — the build-time / serve-time separation that lets a database
//! plus its prebuilt metric indexes cold-start by **loading** instead of
//! rebuilding (minutes of index construction and millions of distance calls
//! at production scale).
//!
//! The crate has five layers and no dependencies beyond the std-only
//! `ssr-fault` failpoint layer (the WAL append and snapshot-rename paths
//! host failpoints so chaos tests can model torn writes and crashes):
//!
//! * [`codec`] — [`Writer`]/[`Reader`] plus the [`Encode`] / [`Decode`] /
//!   [`DecodeWith`] traits that `ssr-sequence`, `ssr-index` and `ssr-core`
//!   implement for their types. [`StorableElement`] tags element types so a
//!   loader can check the file matches its generic instantiation before
//!   decoding payloads.
//! * [`crc32`](mod@crc32) — the CRC-32 used per section and over the header.
//! * [`frame`] — the shared `[len][crc][payload]` framing convention: the
//!   WAL frames its on-disk records with it and the query server's wire
//!   protocol frames its TCP messages with it, so both inherit one audited
//!   truncation/corruption story.
//! * [`snapshot`] — the container format: magic, format version, section
//!   table, per-section CRC ([`SnapshotBuilder`] to write, [`Snapshot`] to
//!   read).
//! * [`wal`] — the append-only write-ahead log that pairs with a snapshot:
//!   length-prefixed, CRC-per-record frames ([`WalWriter`] to append,
//!   [`decode_wal`] to recover), replayed on top of the last snapshot at
//!   open and folded away by compaction.
//!
//! Loading is strict and total: any truncation or byte flip anywhere in a
//! snapshot or WAL yields a typed [`StorageError`] or a cleanly dropped torn
//! tail; the decoders never panic on damaged input.

#![warn(missing_docs)]

pub mod codec;
pub mod crc32;
pub mod error;
pub mod frame;
pub mod snapshot;
pub mod wal;

pub use codec::{Decode, DecodeWith, Encode, Reader, StorableElement, Writer};
pub use crc32::crc32;
pub use error::StorageError;
pub use frame::{decode_frame, frame_bytes, frame_into, read_frame, write_frame, FRAME_HEADER_LEN};
pub use snapshot::{write_atomic, SectionEntry, Snapshot, SnapshotBuilder, FORMAT_VERSION, MAGIC};
pub use wal::{
    decode_wal, read_wal_file, WalBinding, WalRead, WalWriter, WAL_HEADER_LEN, WAL_MAGIC,
    WAL_VERSION,
};
