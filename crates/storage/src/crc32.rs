//! CRC-32 (IEEE 802.3, the polynomial used by zip/gzip/PNG).
//!
//! Each snapshot section carries a CRC-32 of its payload and the header
//! carries one of itself, so any single-bit (in fact any single-byte) flip
//! anywhere in a snapshot file is guaranteed to be detected before the
//! decoder sees the damaged bytes.

/// Reflected polynomial of CRC-32/ISO-HDLC.
const POLY: u32 = 0xEDB8_8320;

/// 256-entry lookup table, built once at first use.
fn table() -> &'static [u32; 256] {
    use std::sync::OnceLock;
    static TABLE: OnceLock<[u32; 256]> = OnceLock::new();
    TABLE.get_or_init(|| {
        let mut table = [0u32; 256];
        for (i, entry) in table.iter_mut().enumerate() {
            let mut crc = i as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
            *entry = crc;
        }
        table
    })
}

/// CRC-32 of `bytes`.
pub fn crc32(bytes: &[u8]) -> u32 {
    let table = table();
    let mut crc = u32::MAX;
    for &b in bytes {
        crc = (crc >> 8) ^ table[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn detects_every_single_byte_flip() {
        let data = b"subsequence retrieval snapshot";
        let clean = crc32(data);
        let mut buf = data.to_vec();
        for i in 0..buf.len() {
            for bit in 0..8 {
                buf[i] ^= 1 << bit;
                assert_ne!(crc32(&buf), clean, "flip at byte {i} bit {bit} undetected");
                buf[i] ^= 1 << bit;
            }
        }
    }
}
