//! The snapshot container: magic, format version, section table, CRCs.
//!
//! ## File layout (format version 3)
//!
//! The container layout — magic, version, section table, CRCs — has been
//! stable since version 1; only the section schema evolves. Version 2 added
//! per-window gap-distance sums to the `windows` section; version 3 replaced
//! the per-window element vectors with one contiguous `arena` section that
//! every window references by offset (and dropped the gap sums, which no
//! consumer read). Files of any other version are rejected with
//! [`StorageError::UnsupportedVersion`] rather than misparsed.
//!
//! ```text
//! offset 0   magic               8 bytes  b"SSRSNAP\0"
//! offset 8   format version      u32 LE   (currently 3)
//! offset 12  table length        u32 LE   byte length of the section table
//! offset 16  section table       (see below)
//! ...        header CRC-32       u32 LE   over bytes [0, 16 + table length)
//! ...        section payloads    back to back, in table order
//! ```
//!
//! The section table is a `u32` section count followed, per section, by a
//! length-prefixed name, the payload's absolute `u64` offset, its `u64`
//! length and its `u32` CRC-32.
//!
//! Validation on open is strict and total:
//!
//! * magic and version must match;
//! * the header CRC must verify (so a flip in the table itself is caught,
//!   not just flips in payloads);
//! * payloads must tile the rest of the file exactly — contiguous,
//!   in table order, ending at the last byte — so *any* truncation is
//!   detected even when whole trailing sections are missing;
//! * every section's CRC-32 must verify.
//!
//! Only after all of that does a caller get a [`Reader`] over a payload, and
//! [`Snapshot::decode_section`] additionally demands the decoder consume the
//! payload exactly.

use std::path::Path;

use crate::codec::{Decode, DecodeWith, Reader, Writer};
use crate::crc32::crc32;
use crate::error::StorageError;

/// First eight bytes of every snapshot file.
pub const MAGIC: [u8; 8] = *b"SSRSNAP\0";

/// Snapshot format version written by this build.
///
/// * 1 — initial format.
/// * 2 — the `windows` section carries per-window gap-distance sums.
/// * 3 — all elements live in one contiguous `arena` section; windows are
///   derived views (no `windows` section, no per-window data, no gap sums)
///   and the index stores id handles instead of element vectors.
pub const FORMAT_VERSION: u32 = 3;

/// Byte offset where the section table starts (after magic, version and the
/// table-length word).
const TABLE_OFFSET: usize = 16;

/// One entry of the section table.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SectionEntry {
    /// Section name (unique within a snapshot).
    pub name: String,
    /// Absolute byte offset of the payload within the file.
    pub offset: u64,
    /// Payload length in bytes.
    pub len: u64,
    /// CRC-32 of the payload.
    pub crc: u32,
}

/// Builds a snapshot in memory, section by section, then serializes it.
#[derive(Default)]
pub struct SnapshotBuilder {
    sections: Vec<(String, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Creates a builder with no sections.
    pub fn new() -> Self {
        SnapshotBuilder::default()
    }

    /// Adds a section whose payload is produced by `fill`.
    ///
    /// # Panics
    ///
    /// Panics if a section with the same name was already added — section
    /// names are the snapshot's schema and duplicating one is a programming
    /// error, not a runtime condition.
    pub fn section(&mut self, name: &str, fill: impl FnOnce(&mut Writer)) -> &mut Self {
        assert!(
            self.sections.iter().all(|(n, _)| n != name),
            "duplicate snapshot section '{name}'"
        );
        let mut w = Writer::new();
        fill(&mut w);
        self.sections.push((name.to_string(), w.into_bytes()));
        self
    }

    /// Serializes the snapshot to bytes.
    pub fn to_bytes(&self) -> Vec<u8> {
        // Lay the table out once to learn its length, then fix up offsets.
        let mut table = Writer::new();
        table.put_u32(self.sections.len() as u32);
        // First pass with zero offsets to measure the table.
        let mut measure = Writer::new();
        measure.put_u32(self.sections.len() as u32);
        for (name, payload) in &self.sections {
            measure.put_str(name);
            measure.put_u64(0);
            measure.put_u64(payload.len() as u64);
            measure.put_u32(0);
        }
        let payload_start = TABLE_OFFSET + measure.len() + 4; // + header CRC
        let mut offset = payload_start as u64;
        for (name, payload) in &self.sections {
            table.put_str(name);
            table.put_u64(offset);
            table.put_u64(payload.len() as u64);
            table.put_u32(crc32(payload));
            offset += payload.len() as u64;
        }
        let table = table.into_bytes();

        let mut out = Vec::with_capacity(offset as usize);
        out.extend_from_slice(&MAGIC);
        out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
        out.extend_from_slice(&(table.len() as u32).to_le_bytes());
        out.extend_from_slice(&table);
        let header_crc = crc32(&out);
        out.extend_from_slice(&header_crc.to_le_bytes());
        for (_, payload) in &self.sections {
            out.extend_from_slice(payload);
        }
        debug_assert_eq!(out.len() as u64, offset);
        out
    }

    /// Serializes the snapshot and writes it to `path` (atomically: the file
    /// is written to a `.tmp` sibling first, then renamed into place).
    pub fn write_to(&self, path: impl AsRef<Path>) -> Result<(), StorageError> {
        write_atomic(path, &self.to_bytes())
    }
}

/// Writes `bytes` to `path` atomically (a `.tmp` sibling, fully fsynced,
/// then renamed into place): readers observe either the old file or the
/// complete new one, never a torn mixture. The WAL layer relies on this when
/// a compaction replaces the snapshot its log is bound to.
///
/// The temp file is synced with `sync_all` (data *and* metadata) **before**
/// the rename: renaming a file whose length is not yet durable can surface a
/// truncated snapshot after power loss on some filesystems, which would turn
/// an "atomic" replace into data loss.
///
/// # Failpoints
///
/// `snapshot.write_atomic` fires while the temp file is being written (a
/// `partial-N` action models a torn temp write — the target file is
/// untouched), and `snapshot.rename` fires after the temp file is durable
/// but before the rename — the crash window chaos tests probe.
pub fn write_atomic(path: impl AsRef<Path>, bytes: &[u8]) -> Result<(), StorageError> {
    let path = path.as_ref();
    let tmp = path.with_extension("tmp");
    {
        let mut file = std::fs::File::create(&tmp)?;
        use std::io::Write;
        match ssr_fault::evaluate("snapshot.write_atomic") {
            Some(ssr_fault::Fault::PartialWrite(n)) => {
                file.write_all(&bytes[..n.min(bytes.len())])?;
                file.sync_all()?;
                return Err(ssr_fault::injected_io_error("snapshot.write_atomic").into());
            }
            Some(ssr_fault::Fault::Error) => {
                return Err(ssr_fault::injected_io_error("snapshot.write_atomic").into());
            }
            None => {}
        }
        file.write_all(bytes)?;
        file.sync_all()?;
    }
    if ssr_fault::evaluate("snapshot.rename").is_some() {
        return Err(ssr_fault::injected_io_error("snapshot.rename").into());
    }
    std::fs::rename(&tmp, path)?;
    Ok(())
}

/// A fully validated, loaded snapshot.
#[derive(Debug)]
pub struct Snapshot {
    data: Vec<u8>,
    sections: Vec<SectionEntry>,
}

impl Snapshot {
    /// Reads and validates a snapshot file.
    pub fn open(path: impl AsRef<Path>) -> Result<Self, StorageError> {
        Snapshot::from_bytes(std::fs::read(path)?)
    }

    /// Validates snapshot bytes already in memory.
    pub fn from_bytes(data: Vec<u8>) -> Result<Self, StorageError> {
        if data.len() < TABLE_OFFSET {
            return Err(StorageError::Truncated {
                context: "snapshot header",
            });
        }
        if data[..8] != MAGIC {
            return Err(StorageError::BadMagic);
        }
        let version = u32::from_le_bytes([data[8], data[9], data[10], data[11]]);
        if version != FORMAT_VERSION {
            return Err(StorageError::UnsupportedVersion(version));
        }
        let table_len = u32::from_le_bytes([data[12], data[13], data[14], data[15]]) as usize;
        let header_end = TABLE_OFFSET
            .checked_add(table_len)
            .ok_or(StorageError::Truncated {
                context: "section table",
            })?;
        let crc_end = header_end.checked_add(4).ok_or(StorageError::Truncated {
            context: "header checksum",
        })?;
        if crc_end > data.len() {
            return Err(StorageError::Truncated {
                context: "section table",
            });
        }
        let stored_crc = u32::from_le_bytes([
            data[header_end],
            data[header_end + 1],
            data[header_end + 2],
            data[header_end + 3],
        ]);
        if crc32(&data[..header_end]) != stored_crc {
            return Err(StorageError::HeaderChecksumMismatch);
        }

        // Parse the table; it must be consumed exactly.
        let mut r = Reader::new(&data[TABLE_OFFSET..header_end]);
        let count = r.take_u32()? as usize;
        let mut sections = Vec::with_capacity(count.min(1024));
        for _ in 0..count {
            let name = r.take_str()?;
            let offset = r.take_u64()?;
            let len = r.take_u64()?;
            let crc = r.take_u32()?;
            if sections.iter().any(|s: &SectionEntry| s.name == name) {
                return Err(StorageError::Malformed(format!(
                    "duplicate section '{name}'"
                )));
            }
            sections.push(SectionEntry {
                name,
                offset,
                len,
                crc,
            });
        }
        r.expect_empty("section table")?;

        // Payloads must tile [crc_end, file end) exactly, in order.
        let mut expected = crc_end as u64;
        for entry in &sections {
            if entry.offset != expected {
                return Err(StorageError::Malformed(format!(
                    "section '{}' starts at {} instead of {expected}",
                    entry.name, entry.offset
                )));
            }
            expected = entry
                .offset
                .checked_add(entry.len)
                .ok_or(StorageError::Truncated {
                    context: "section payload",
                })?;
            if expected > data.len() as u64 {
                return Err(StorageError::Truncated {
                    context: "section payload",
                });
            }
        }
        if expected != data.len() as u64 {
            return Err(StorageError::TrailingBytes {
                region: "final section".to_string(),
            });
        }

        // All CRCs verify up front: a damaged section fails at open, not at
        // first access.
        for entry in &sections {
            let payload = &data[entry.offset as usize..(entry.offset + entry.len) as usize];
            if crc32(payload) != entry.crc {
                return Err(StorageError::ChecksumMismatch {
                    section: entry.name.clone(),
                });
            }
        }

        Ok(Snapshot { data, sections })
    }

    /// Total size of the snapshot in bytes.
    pub fn file_len(&self) -> usize {
        self.data.len()
    }

    /// The validated section table, in file order.
    pub fn sections(&self) -> &[SectionEntry] {
        &self.sections
    }

    /// A reader over the named section's payload.
    pub fn section_reader(&self, name: &str) -> Result<Reader<'_>, StorageError> {
        let entry = self
            .sections
            .iter()
            .find(|s| s.name == name)
            .ok_or_else(|| StorageError::MissingSection(name.to_string()))?;
        Ok(Reader::new(
            &self.data[entry.offset as usize..(entry.offset + entry.len) as usize],
        ))
    }

    /// Decodes the named section as a `T`, requiring the payload to be
    /// consumed exactly.
    pub fn decode_section<T: Decode>(&self, name: &str) -> Result<T, StorageError> {
        self.decode_section_with::<T, ()>(name, ())
    }

    /// [`Self::decode_section`] for types that need decoding context.
    pub fn decode_section_with<T: DecodeWith<C>, C>(
        &self,
        name: &str,
        ctx: C,
    ) -> Result<T, StorageError> {
        let mut r = self.section_reader(name)?;
        let value = T::decode_with(&mut r, ctx)?;
        r.expect_empty(name)?;
        Ok(value)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::codec::Encode;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new();
        b.section("alpha", |w| vec![1u64, 2, 3].encode(w));
        b.section("beta", |w| "payload".to_string().encode(w));
        b.to_bytes()
    }

    #[test]
    fn roundtrips_sections() {
        let snap = Snapshot::from_bytes(sample()).unwrap();
        assert_eq!(snap.sections().len(), 2);
        assert_eq!(snap.sections()[0].name, "alpha");
        let alpha: Vec<u64> = snap.decode_section("alpha").unwrap();
        assert_eq!(alpha, vec![1, 2, 3]);
        let beta: String = snap.decode_section("beta").unwrap();
        assert_eq!(beta, "payload");
        assert!(matches!(
            snap.decode_section::<u8>("gamma"),
            Err(StorageError::MissingSection(_))
        ));
        // Decoding beta as the wrong shape leaves trailing bytes or truncates.
        assert!(snap.decode_section::<u8>("beta").is_err());
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample();
        for cut in 0..bytes.len() {
            let err = Snapshot::from_bytes(bytes[..cut].to_vec()).expect_err("prefix must fail");
            // Any typed error is acceptable; a panic or an Ok is not.
            let _ = err.to_string();
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected() {
        let bytes = sample();
        for i in 0..bytes.len() {
            let mut damaged = bytes.clone();
            damaged[i] ^= 0x40;
            assert!(
                Snapshot::from_bytes(damaged).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn wrong_magic_and_version_are_typed() {
        let mut bytes = sample();
        bytes[0] = b'X';
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(StorageError::BadMagic)
        ));

        let mut bytes = sample();
        bytes[8] = 99;
        // The version word is covered by the header CRC, so recompute it to
        // isolate the version check.
        let table_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
        let header_end = 16 + table_len;
        let crc = crc32(&bytes[..header_end]);
        bytes[header_end..header_end + 4].copy_from_slice(&crc.to_le_bytes());
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(StorageError::UnsupportedVersion(99))
        ));
    }

    #[test]
    fn appended_garbage_is_rejected() {
        let mut bytes = sample();
        bytes.push(0);
        assert!(matches!(
            Snapshot::from_bytes(bytes),
            Err(StorageError::TrailingBytes { .. })
        ));
    }

    #[test]
    #[should_panic(expected = "duplicate snapshot section")]
    fn duplicate_sections_panic_at_build_time() {
        let mut b = SnapshotBuilder::new();
        b.section("a", |w| w.put_u8(0));
        b.section("a", |w| w.put_u8(1));
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("ssr-storage-test-{}.ssr", std::process::id()));
        let mut b = SnapshotBuilder::new();
        b.section("only", |w| w.put_u64(0xDEAD_BEEF));
        b.write_to(&path).unwrap();
        let snap = Snapshot::open(&path).unwrap();
        let mut r = snap.section_reader("only").unwrap();
        assert_eq!(r.take_u64().unwrap(), 0xDEAD_BEEF);
        std::fs::remove_file(&path).unwrap();
        assert!(matches!(Snapshot::open(&path), Err(StorageError::Io(_))));
    }
}
