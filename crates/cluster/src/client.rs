//! [`ClusterClient`]: one fault-tolerant endpoint over N `ssr serve` nodes.
//!
//! Routing is seeded power-of-two-choices: each request draws two candidate
//! nodes from the healthy set by hashing a monotonic ticket with
//! [`ssr_fault::mix64`] and sends to whichever has fewer requests in flight
//! (ties keep the first draw). Health is a per-node [`Breaker`] fed by both
//! response outcomes and optional background `Ping` probes. An idempotent
//! request that fails on one node **fails over** to the next healthy node —
//! under the per-op deadline ([`ClientConfig::op_deadline`]) when one is
//! set — and an optional **hedge** fires a second copy to a different node
//! once the primary has been quiet for `hedge_after`, taking whichever
//! typed success lands first. Every decision that involves chance is a pure
//! function of a seed, so a chaos schedule replays its failover, hedge and
//! breaker-trip counts exactly.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{mpsc, Arc, Mutex, MutexGuard};
use std::time::{Duration, Instant};

use ssr_core::client::{ClientConfig, ClientError, WireClient};
use ssr_core::wire::{Request, Response};
use ssr_storage::StorableElement;

use crate::breaker::{Breaker, BreakerConfig, BreakerState};

/// Cached idle connections kept per node.
const POOL_CAP: usize = 4;

/// Policy of a [`ClusterClient`].
#[derive(Clone, Debug)]
pub struct ClusterConfig {
    /// Per-node wire-client policy. [`ClientConfig::op_deadline`] doubles as
    /// the budget of a whole failover chain: once it elapses, no further
    /// node is tried. The default sets `max_attempts: 1` — the cluster
    /// layer's failover *is* the retry, and single-node backoff would only
    /// delay it.
    pub client: ClientConfig,
    /// Per-node circuit-breaker policy.
    pub breaker: BreakerConfig,
    /// When set, idempotent requests hedge: after this long without a
    /// response from the primary node, a second copy goes to a different
    /// healthy node and the first typed success wins. The loser is
    /// discarded client-side, so query stats are never double-counted in
    /// the response the caller sees.
    pub hedge_after: Option<Duration>,
    /// Seed of the power-of-two-choices candidate draws.
    pub route_seed: u64,
    /// Background `Ping` probe cadence. Probes drive breaker readmission
    /// without user traffic; `None` disables the prober thread entirely
    /// (the deterministic chaos harness does this — outcomes alone then
    /// drive health).
    pub probe_interval: Option<Duration>,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            client: ClientConfig {
                max_attempts: 1,
                op_deadline: Some(Duration::from_secs(10)),
                ..ClientConfig::default()
            },
            breaker: BreakerConfig::default(),
            hedge_after: None,
            route_seed: 0,
            probe_interval: Some(Duration::from_millis(500)),
        }
    }
}

/// Why a cluster request failed.
#[derive(Debug)]
pub enum ClusterError {
    /// No node admitted the request: every breaker is open (or the cluster
    /// has no nodes at all).
    NoHealthyNodes {
        /// The most recent node-level failure, for the log line.
        last: String,
    },
    /// Every healthy node was tried and failed transiently.
    Exhausted {
        /// Nodes tried.
        attempts: u32,
        /// The last node's failure.
        last: String,
    },
    /// The per-op deadline ran out mid-failover.
    DeadlineExceeded {
        /// Nodes tried before the budget died.
        attempts: u32,
        /// Wall-clock spent.
        elapsed: Duration,
    },
    /// A protocol-level failure no failover can fix.
    Fatal(String),
}

impl std::fmt::Display for ClusterError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClusterError::NoHealthyNodes { last } => {
                write!(f, "no healthy node available (last failure: {last})")
            }
            ClusterError::Exhausted { attempts, last } => {
                write!(f, "all {attempts} healthy node(s) failed; last: {last}")
            }
            ClusterError::DeadlineExceeded { attempts, elapsed } => write!(
                f,
                "per-op deadline exceeded after {attempts} node(s) and {}ms",
                elapsed.as_millis()
            ),
            ClusterError::Fatal(msg) => write!(f, "fatal: {msg}"),
        }
    }
}

impl std::error::Error for ClusterError {}

/// Snapshot of a [`ClusterClient`]'s own tallies. These mirror the global
/// `ssr_cluster_*` metric families but belong to *this* client, so a chaos
/// harness that runs the same schedule twice can compare per-run counts
/// without untangling the cumulative process-global registry.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct ClusterCounters {
    /// Requests answered (exactly one response each, hedged or not).
    pub requests: u64,
    /// Idempotent requests re-sent to another node after a node-level
    /// transient failure (`ssr_cluster_failovers_total`).
    pub failovers: u64,
    /// Hedge copies fired (`ssr_cluster_hedges_total`).
    pub hedges: u64,
    /// Hedged requests won by the hedge copy, not the primary
    /// (`ssr_cluster_hedge_wins_total`). Timing-dependent by nature —
    /// deterministic harnesses assert on [`ClusterCounters::hedges`].
    pub hedge_wins: u64,
    /// Breaker trips summed over nodes (`ssr_cluster_breaker_trips_total`).
    pub breaker_trips: u64,
    /// Node-level transient failures (`ssr_cluster_node_failures_total`).
    pub node_failures: u64,
    /// Requests abandoned on the per-op deadline
    /// (`ssr_cluster_deadline_exceeded_total`).
    pub deadline_exceeded: u64,
    /// Background health probes sent (`ssr_cluster_probes_total`).
    pub probes: u64,
}

/// One node's health, as the router sees it.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct NodeHealth {
    /// The node's address, verbatim from [`ClusterClient::new`].
    pub addr: String,
    /// Breaker state at snapshot time.
    pub state: BreakerState,
    /// Requests currently in flight to this node.
    pub in_flight: usize,
    /// Current run of consecutive transient failures.
    pub consecutive_failures: u32,
    /// Times this node's breaker has tripped.
    pub trips: u64,
}

struct CounterCells {
    requests: AtomicU64,
    failovers: AtomicU64,
    hedges: AtomicU64,
    hedge_wins: AtomicU64,
    node_failures: AtomicU64,
    deadline_exceeded: AtomicU64,
    probes: AtomicU64,
}

impl CounterCells {
    fn new() -> Self {
        CounterCells {
            requests: AtomicU64::new(0),
            failovers: AtomicU64::new(0),
            hedges: AtomicU64::new(0),
            hedge_wins: AtomicU64::new(0),
            node_failures: AtomicU64::new(0),
            deadline_exceeded: AtomicU64::new(0),
            probes: AtomicU64::new(0),
        }
    }
}

struct Node<E> {
    addr: String,
    breaker: Mutex<Breaker>,
    pool: Mutex<Vec<WireClient<E>>>,
    in_flight: AtomicUsize,
}

struct Inner<E> {
    nodes: Vec<Node<E>>,
    config: ClusterConfig,
    counters: CounterCells,
    /// Monotonic routing tickets: the p2c draws hash `route_seed ^ ticket`,
    /// so the full routing trajectory is a pure function of the seed and
    /// the request order.
    tickets: AtomicU64,
    /// Requests (primary or hedge copies) handed to worker threads that
    /// have not reported back yet. [`ClusterClient::quiesce`] waits on this
    /// so a deterministic harness can drain hedge losers between steps.
    outstanding: AtomicUsize,
}

/// Bumps a client-local cell and mirrors it into the process-global
/// registry, unlabelled.
fn bump(cell: &AtomicU64, family: &'static str, help: &'static str) {
    cell.fetch_add(1, Ordering::Relaxed);
    ssr_obs::global().counter(family, help).inc();
}

/// Bumps a client-local cell and mirrors it into the process-global
/// registry labelled by node address.
fn bump_node(cell: &AtomicU64, family: &'static str, help: &'static str, addr: &str) {
    cell.fetch_add(1, Ordering::Relaxed);
    ssr_obs::global()
        .counter_with(family, help, Some(("node", addr.to_string())))
        .inc();
}

impl<E> Inner<E>
where
    E: StorableElement + Clone + Send + Sync + 'static,
{
    fn breaker_of(&self, idx: usize) -> MutexGuard<'_, Breaker> {
        self.nodes[idx]
            .breaker
            .lock()
            .expect("breaker lock poisoned")
    }

    /// Seeded power-of-two-choices over the currently-routable nodes, minus
    /// `excluded`. The chosen node's breaker is acquired (an expired
    /// quarantine becomes the half-open probe); a lost acquisition race
    /// excludes that node and redraws.
    fn route(&self, excluded: &[usize], ticket: u64) -> Option<usize> {
        let mut excluded = excluded.to_vec();
        loop {
            let now = Instant::now();
            let candidates: Vec<usize> = (0..self.nodes.len())
                .filter(|i| !excluded.contains(i))
                .filter(|&i| self.breaker_of(i).routable(now))
                .collect();
            let chosen = match candidates.len() {
                0 => return None,
                1 => candidates[0],
                n => {
                    let seed = self.config.route_seed;
                    let n = n as u64;
                    let a = candidates[(ssr_fault::mix64(seed ^ (ticket << 1)) % n) as usize];
                    let b = candidates[(ssr_fault::mix64(seed ^ ((ticket << 1) | 1)) % n) as usize];
                    let load_a = self.nodes[a].in_flight.load(Ordering::SeqCst);
                    let load_b = self.nodes[b].in_flight.load(Ordering::SeqCst);
                    if load_b < load_a {
                        b
                    } else {
                        a
                    }
                }
            };
            if self.breaker_of(chosen).try_acquire(Instant::now()) {
                return Some(chosen);
            }
            excluded.push(chosen);
        }
    }

    /// One request to one node, with breaker and counter accounting. The
    /// node's breaker must have been acquired by [`Inner::route`] (or the
    /// prober) first.
    fn send_to(&self, idx: usize, request: &Request<E>) -> Result<Response, ClientError> {
        let node = &self.nodes[idx];
        node.in_flight.fetch_add(1, Ordering::SeqCst);
        let result = self.send_raw(node, request);
        // Transient node-level trouble feeds the breaker; a decoded
        // response — a fatal protocol refusal included — proves the node is
        // alive and answering, which is all the breaker measures.
        match &result {
            Err(ClientError::Retryable { .. }) | Err(ClientError::DeadlineExceeded { .. }) => {
                bump_node(
                    &self.counters.node_failures,
                    "ssr_cluster_node_failures_total",
                    "Node-level transient failures seen by the cluster client.",
                    &node.addr,
                );
                if self.breaker_of(idx).on_failure(Instant::now()) {
                    ssr_obs::global()
                        .counter_with(
                            "ssr_cluster_breaker_trips_total",
                            "Circuit-breaker trips (closed/half-open to open), by node.",
                            Some(("node", node.addr.clone())),
                        )
                        .inc();
                }
            }
            _ => self.breaker_of(idx).on_success(),
        }
        node.in_flight.fetch_sub(1, Ordering::SeqCst);
        result
    }

    /// The wire exchange itself, with per-node connection pooling: a
    /// connection that just carried a successful exchange is parked for
    /// reuse; one that failed is dropped (its stream state is untrusted).
    fn send_raw(&self, node: &Node<E>, request: &Request<E>) -> Result<Response, ClientError> {
        let pooled = node.pool.lock().expect("pool lock poisoned").pop();
        let mut client =
            match pooled {
                Some(client) => client,
                None => WireClient::new(node.addr.as_str(), self.config.client.clone()).map_err(
                    |err| ClientError::Retryable {
                        attempts: 1,
                        last: format!("resolve {}: {err}", node.addr),
                    },
                )?,
            };
        let result = client.request(request);
        if result.is_ok() {
            let mut pool = node.pool.lock().expect("pool lock poisoned");
            if pool.len() < POOL_CAP {
                pool.push(client);
            }
        }
        result
    }

    /// Hands one send to a worker thread; the outcome comes back on `tx`
    /// tagged with the node index. `outstanding` is raised *before* the
    /// spawn so [`ClusterClient::quiesce`] can never observe a gap.
    fn spawn_send(
        self: &Arc<Self>,
        idx: usize,
        request: Request<E>,
        tx: &mpsc::Sender<(usize, Result<Response, ClientError>)>,
    ) {
        self.outstanding.fetch_add(1, Ordering::SeqCst);
        let inner = Arc::clone(self);
        let worker_tx = tx.clone();
        let spawned = std::thread::Builder::new()
            .name("ssr-cluster-send".to_string())
            .spawn(move || {
                let result = inner.send_to(idx, &request);
                inner.outstanding.fetch_sub(1, Ordering::SeqCst);
                let _ = worker_tx.send((idx, result));
            });
        if let Err(err) = spawned {
            self.outstanding.fetch_sub(1, Ordering::SeqCst);
            let _ = tx.send((
                idx,
                Err(ClientError::Retryable {
                    attempts: 0,
                    last: format!("spawn failed: {err}"),
                }),
            ));
        }
    }

    /// Primary-plus-hedge send: the primary goes out on a worker thread; if
    /// `delay` passes without its outcome, one hedge copy goes to a
    /// different healthy node. The first typed success wins and is the
    /// *only* response the caller sees — a losing copy is received and
    /// dropped here (or its send fails against the closed channel), so the
    /// caller can never double-count a hedged query's stats.
    fn send_hedged(
        self: &Arc<Self>,
        primary: usize,
        request: &Request<E>,
        delay: Duration,
    ) -> Result<Response, ClientError> {
        let (tx, rx) = mpsc::channel();
        self.spawn_send(primary, request.clone(), &tx);
        let mut launched = 1usize;
        // A zero delay means "always hedge": skipping the wait entirely
        // keeps the hedge count independent of how fast the primary answers
        // (a warm server cache can beat even an immediate poll), which is
        // what makes hedge counters replayable under a fixed seed.
        let mut pending = if delay.is_zero() {
            None
        } else {
            rx.recv_timeout(delay).ok()
        };
        if pending.is_none() {
            // The primary is slow. Acquire a different node and hedge.
            let ticket = self.tickets.fetch_add(1, Ordering::Relaxed);
            if let Some(hedge_idx) = self.route(&[primary], ticket) {
                bump(
                    &self.counters.hedges,
                    "ssr_cluster_hedges_total",
                    "Hedge copies fired after a quiet primary.",
                );
                self.spawn_send(hedge_idx, request.clone(), &tx);
                launched += 1;
            }
        }
        drop(tx);
        let mut last_err = None;
        for _ in 0..launched {
            let (idx, result) = match pending.take() {
                Some(outcome) => outcome,
                None => match rx.recv() {
                    Ok(outcome) => outcome,
                    Err(_) => break,
                },
            };
            match result {
                Ok(response) => {
                    if idx != primary {
                        bump(
                            &self.counters.hedge_wins,
                            "ssr_cluster_hedge_wins_total",
                            "Hedged requests won by the hedge copy.",
                        );
                    }
                    return Ok(response);
                }
                Err(err) => last_err = Some(err),
            }
        }
        Err(last_err.unwrap_or(ClientError::Retryable {
            attempts: 0,
            last: "hedge pipeline produced no outcome".into(),
        }))
    }
}

/// The fault-tolerant multi-node client. See the module docs for the
/// routing, breaker, failover and hedging policy. Cheap to share: requests
/// take `&self`, so one client can serve many threads.
pub struct ClusterClient<E> {
    inner: Arc<Inner<E>>,
    prober_stop: Arc<AtomicBool>,
    prober: Option<std::thread::JoinHandle<()>>,
}

impl<E> ClusterClient<E>
where
    E: StorableElement + Clone + Send + Sync + 'static,
{
    /// Builds a client over `addrs` (one `ssr serve` endpoint each) and —
    /// unless [`ClusterConfig::probe_interval`] is `None` — starts the
    /// background prober. No connection is made until the first request or
    /// probe. Errors only on an empty address list.
    pub fn new<S: Into<String>>(
        addrs: impl IntoIterator<Item = S>,
        config: ClusterConfig,
    ) -> std::io::Result<Self> {
        let nodes: Vec<Node<E>> = addrs
            .into_iter()
            .map(|addr| Node {
                addr: addr.into(),
                breaker: Mutex::new(Breaker::new(config.breaker)),
                pool: Mutex::new(Vec::new()),
                in_flight: AtomicUsize::new(0),
            })
            .collect();
        if nodes.is_empty() {
            return Err(std::io::Error::other("a cluster needs at least one node"));
        }
        let probe_interval = config.probe_interval;
        let inner = Arc::new(Inner {
            nodes,
            config,
            counters: CounterCells::new(),
            tickets: AtomicU64::new(0),
            outstanding: AtomicUsize::new(0),
        });
        let prober_stop = Arc::new(AtomicBool::new(false));
        let prober = match probe_interval {
            Some(interval) => Some(
                std::thread::Builder::new()
                    .name("ssr-cluster-probe".to_string())
                    .spawn({
                        let inner = Arc::clone(&inner);
                        let stop = Arc::clone(&prober_stop);
                        move || prober_loop(&inner, &stop, interval)
                    })?,
            ),
            None => None,
        };
        Ok(ClusterClient {
            inner,
            prober_stop,
            prober,
        })
    }

    /// [`ClusterClient::new`] with [`ClusterConfig::default`].
    pub fn connect<S: Into<String>>(addrs: impl IntoIterator<Item = S>) -> std::io::Result<Self> {
        Self::new(addrs, ClusterConfig::default())
    }

    /// Sends `request` with the configured hedging policy. Idempotent
    /// requests fail over across healthy nodes (under the per-op deadline
    /// when one is configured); `Shutdown` gets exactly one node and one
    /// attempt, like [`WireClient`].
    pub fn request(&self, request: &Request<E>) -> Result<Response, ClusterError> {
        self.request_with_hedge(request, self.inner.config.hedge_after)
    }

    /// [`ClusterClient::request`] with an explicit hedging override —
    /// `None` never hedges, `Some(d)` hedges after `d` of primary silence.
    /// The chaos harness uses this to hedge exactly the schedule's chosen
    /// requests.
    pub fn request_with_hedge(
        &self,
        request: &Request<E>,
        hedge_after: Option<Duration>,
    ) -> Result<Response, ClusterError> {
        let inner = &self.inner;
        let started = Instant::now();
        let idempotent = !matches!(request, Request::Shutdown);
        let max_hops = if idempotent { inner.nodes.len() } else { 1 };
        let mut excluded: Vec<usize> = Vec::new();
        let mut last = String::from("no node admitted the request");
        let mut hops = 0u32;
        while (hops as usize) < max_hops {
            // The failover chain shares one per-op budget: once it is
            // spent, trying further nodes only makes the caller later.
            if let Some(deadline) = inner.config.client.op_deadline {
                if hops > 0 && started.elapsed() >= deadline {
                    bump(
                        &inner.counters.deadline_exceeded,
                        "ssr_cluster_deadline_exceeded_total",
                        "Requests abandoned because the per-op deadline ran out mid-failover.",
                    );
                    return Err(ClusterError::DeadlineExceeded {
                        attempts: hops,
                        elapsed: started.elapsed(),
                    });
                }
            }
            let ticket = inner.tickets.fetch_add(1, Ordering::Relaxed);
            let Some(idx) = inner.route(&excluded, ticket) else {
                break;
            };
            if hops > 0 {
                bump(
                    &inner.counters.failovers,
                    "ssr_cluster_failovers_total",
                    "Idempotent requests re-sent to another node after a node-level failure.",
                );
            }
            hops += 1;
            let result = match hedge_after {
                Some(delay) if idempotent && inner.nodes.len() > 1 => {
                    inner.send_hedged(idx, request, delay)
                }
                _ => inner.send_to(idx, request),
            };
            match result {
                Ok(response) => {
                    bump(
                        &inner.counters.requests,
                        "ssr_cluster_requests_total",
                        "Requests answered by the cluster client.",
                    );
                    return Ok(response);
                }
                Err(ClientError::Fatal(msg)) => return Err(ClusterError::Fatal(msg)),
                Err(err) => {
                    last = err.to_string();
                    excluded.push(idx);
                }
            }
        }
        if hops == 0 {
            Err(ClusterError::NoHealthyNodes { last })
        } else {
            Err(ClusterError::Exhausted {
                attempts: hops,
                last,
            })
        }
    }

    /// Sends `request` to **every** node individually (no routing, no
    /// breaker, no failover) and reports per-node outcomes in address
    /// order — the administrative fan-out behind `ssr cluster stats` and
    /// `ssr cluster drain`.
    pub fn for_each_node(
        &self,
        request: &Request<E>,
    ) -> Vec<(String, Result<Response, ClientError>)> {
        self.inner
            .nodes
            .iter()
            .map(|node| {
                let result = WireClient::new(node.addr.as_str(), self.inner.config.client.clone())
                    .map_err(|err| ClientError::Retryable {
                        attempts: 1,
                        last: format!("resolve {}: {err}", node.addr),
                    })
                    .and_then(|mut client| client.request(request));
                (node.addr.clone(), result)
            })
            .collect()
    }

    /// The node addresses, in routing-index order.
    pub fn addrs(&self) -> Vec<String> {
        self.inner.nodes.iter().map(|n| n.addr.clone()).collect()
    }

    /// This client's own counter snapshot (breaker trips summed over
    /// nodes). Distinct from the cumulative process-global `ssr_cluster_*`
    /// families, which aggregate every client in the process.
    pub fn counters(&self) -> ClusterCounters {
        let cells = &self.inner.counters;
        ClusterCounters {
            requests: cells.requests.load(Ordering::Relaxed),
            failovers: cells.failovers.load(Ordering::Relaxed),
            hedges: cells.hedges.load(Ordering::Relaxed),
            hedge_wins: cells.hedge_wins.load(Ordering::Relaxed),
            breaker_trips: (0..self.inner.nodes.len())
                .map(|i| self.inner.breaker_of(i).trips())
                .sum(),
            node_failures: cells.node_failures.load(Ordering::Relaxed),
            deadline_exceeded: cells.deadline_exceeded.load(Ordering::Relaxed),
            probes: cells.probes.load(Ordering::Relaxed),
        }
    }

    /// Per-node health snapshot, in routing-index order.
    pub fn node_health(&self) -> Vec<NodeHealth> {
        self.inner
            .nodes
            .iter()
            .enumerate()
            .map(|(i, node)| {
                let breaker = self.inner.breaker_of(i);
                NodeHealth {
                    addr: node.addr.clone(),
                    state: breaker.state(),
                    in_flight: node.in_flight.load(Ordering::SeqCst),
                    consecutive_failures: breaker.consecutive_failures(),
                    trips: breaker.trips(),
                }
            })
            .collect()
    }

    /// Blocks until no send is outstanding on any worker thread — i.e.
    /// until every hedge loser has reported back into the breakers. The
    /// deterministic chaos harness calls this between schedule steps so
    /// in-flight counts (and therefore routing) depend only on the seed.
    pub fn quiesce(&self) {
        while self.inner.outstanding.load(Ordering::SeqCst) > 0 {
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

impl<E> Drop for ClusterClient<E> {
    fn drop(&mut self) {
        self.prober_stop.store(true, Ordering::SeqCst);
        if let Some(prober) = self.prober.take() {
            let _ = prober.join();
        }
    }
}

/// Background health probing: every `interval`, ping each node whose
/// breaker admits a request. Probe outcomes feed the breakers exactly like
/// user traffic, so an open breaker whose cooldown expired is readmitted
/// (or re-quarantined) without waiting for a real request to gamble on it.
fn prober_loop<E>(inner: &Arc<Inner<E>>, stop: &AtomicBool, interval: Duration)
where
    E: StorableElement + Clone + Send + Sync + 'static,
{
    while !stop.load(Ordering::SeqCst) {
        for idx in 0..inner.nodes.len() {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            if !inner.breaker_of(idx).try_acquire(Instant::now()) {
                continue;
            }
            bump_node(
                &inner.counters.probes,
                "ssr_cluster_probes_total",
                "Background health probes sent, by node.",
                &inner.nodes[idx].addr,
            );
            let _ = inner.send_to(idx, &Request::Ping);
        }
        // Sleep in slices so a drop does not wait out the whole interval.
        let slept_until = Instant::now() + interval;
        while Instant::now() < slept_until {
            if stop.load(Ordering::SeqCst) {
                return;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
    }
}
