//! A per-node circuit breaker: closed → open on consecutive transport-level
//! failures, half-open probe after a seeded cooldown, closed again on the
//! first success.
//!
//! The breaker is a pure state machine over explicit `Instant`s — every
//! method that consults the clock takes `now` as an argument, so unit tests
//! drive it with fabricated time and the whole trajectory is deterministic.
//! The cooldown carries seeded jitter ([`ssr_fault::mix64`] of the trip
//! ordinal), so a fleet of breakers tripped by the same outage does not
//! re-probe the recovering node in lockstep — and the jitter is still a
//! pure function of the seed, so chaos runs replay exactly.

use std::time::{Duration, Instant};

/// Trip-and-readmit policy of one [`Breaker`].
#[derive(Clone, Copy, Debug)]
pub struct BreakerConfig {
    /// Consecutive failures that trip a closed breaker (min 1).
    pub threshold: u32,
    /// Base open duration before the half-open probe window.
    pub cooldown: Duration,
    /// Seed of the deterministic cooldown jitter: each trip waits
    /// `cooldown + mix64(seed ^ trip_ordinal) % (cooldown/2 + 1)`.
    pub jitter_seed: u64,
}

impl Default for BreakerConfig {
    fn default() -> Self {
        BreakerConfig {
            threshold: 3,
            cooldown: Duration::from_millis(500),
            jitter_seed: 0,
        }
    }
}

/// Where a [`Breaker`] currently stands.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum BreakerState {
    /// Traffic flows; failures are counted.
    Closed,
    /// The node is quarantined until its cooldown expires.
    Open,
    /// Cooldown expired; exactly one probe request is allowed through.
    HalfOpen,
}

/// The circuit breaker itself. See the module docs for the state machine;
/// [`Breaker::try_acquire`] is the routing-side gate, [`Breaker::on_success`]
/// / [`Breaker::on_failure`] feed outcomes back.
#[derive(Debug)]
pub struct Breaker {
    config: BreakerConfig,
    state: BreakerState,
    consecutive_failures: u32,
    /// End of the current quarantine, while `Open`.
    open_until: Option<Instant>,
    /// A half-open probe has been admitted and has not reported back yet.
    probe_in_flight: bool,
    trips: u64,
}

impl Breaker {
    /// A closed breaker under `config`.
    pub fn new(config: BreakerConfig) -> Self {
        Breaker {
            config,
            state: BreakerState::Closed,
            consecutive_failures: 0,
            open_until: None,
            probe_in_flight: false,
            trips: 0,
        }
    }

    /// Whether a request *could* be admitted at `now`, without mutating
    /// anything — the routing layer's candidate filter.
    pub fn routable(&self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => self.open_until.is_none_or(|until| now >= until),
            BreakerState::HalfOpen => !self.probe_in_flight,
        }
    }

    /// Admits one request at `now`. An expired quarantine transitions to
    /// half-open here, and the admitted request becomes the probe: until it
    /// reports back, further `try_acquire` calls refuse. Returns `false`
    /// when the node must not be tried.
    pub fn try_acquire(&mut self, now: Instant) -> bool {
        match self.state {
            BreakerState::Closed => true,
            BreakerState::Open => {
                if self.open_until.is_none_or(|until| now >= until) {
                    self.state = BreakerState::HalfOpen;
                    self.probe_in_flight = true;
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                if self.probe_in_flight {
                    false
                } else {
                    self.probe_in_flight = true;
                    true
                }
            }
        }
    }

    /// A request (probe or regular) succeeded: close fully and reset the
    /// failure streak.
    pub fn on_success(&mut self) {
        self.state = BreakerState::Closed;
        self.consecutive_failures = 0;
        self.open_until = None;
        self.probe_in_flight = false;
    }

    /// A request hit transport-level trouble (refused, reset, timed out,
    /// `Overloaded`, `Draining`). Returns `true` when this failure *trips*
    /// the breaker — the caller mirrors trips into the
    /// `ssr_cluster_breaker_trips_total` counter. A failed half-open probe
    /// re-trips immediately; failures while already open (concurrent
    /// requests admitted before the trip) extend nothing and count no
    /// second trip.
    pub fn on_failure(&mut self, now: Instant) -> bool {
        self.probe_in_flight = false;
        self.consecutive_failures = self.consecutive_failures.saturating_add(1);
        match self.state {
            BreakerState::Closed => {
                if self.consecutive_failures >= self.config.threshold.max(1) {
                    self.trip(now);
                    true
                } else {
                    false
                }
            }
            BreakerState::HalfOpen => {
                self.trip(now);
                true
            }
            BreakerState::Open => false,
        }
    }

    fn trip(&mut self, now: Instant) {
        self.trips += 1;
        let base = self.config.cooldown.as_millis() as u64;
        let jitter = ssr_fault::mix64(self.config.jitter_seed ^ self.trips) % (base / 2 + 1);
        self.state = BreakerState::Open;
        self.open_until = Some(now + Duration::from_millis(base + jitter));
    }

    /// Current state (quarantine expiry is *not* applied here; expiry is
    /// observed by [`Breaker::routable`] / [`Breaker::try_acquire`]).
    pub fn state(&self) -> BreakerState {
        self.state
    }

    /// Closed→open transitions so far, half-open re-trips included.
    pub fn trips(&self) -> u64 {
        self.trips
    }

    /// Current run of consecutive failures.
    pub fn consecutive_failures(&self) -> u32 {
        self.consecutive_failures
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn breaker(threshold: u32, cooldown_ms: u64, seed: u64) -> Breaker {
        Breaker::new(BreakerConfig {
            threshold,
            cooldown: Duration::from_millis(cooldown_ms),
            jitter_seed: seed,
        })
    }

    #[test]
    fn trips_after_exactly_threshold_consecutive_failures() {
        let mut b = breaker(3, 100, 7);
        let now = Instant::now();
        assert!(!b.on_failure(now));
        assert!(!b.on_failure(now));
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.on_failure(now), "third consecutive failure trips");
        assert_eq!(b.state(), BreakerState::Open);
        assert_eq!(b.trips(), 1);
        assert!(!b.try_acquire(now), "quarantined immediately");
    }

    #[test]
    fn a_success_resets_the_streak() {
        let mut b = breaker(3, 100, 7);
        let now = Instant::now();
        assert!(!b.on_failure(now));
        assert!(!b.on_failure(now));
        b.on_success();
        assert!(!b.on_failure(now));
        assert!(!b.on_failure(now));
        assert_eq!(b.state(), BreakerState::Closed, "streaks do not accumulate");
    }

    #[test]
    fn half_open_admits_one_probe_then_closes_on_success() {
        let mut b = breaker(1, 100, 7);
        let t0 = Instant::now();
        assert!(b.on_failure(t0));
        // Jitter is bounded by cooldown/2, so 151ms in the future is always
        // inside quarantine and 151+50ms always past it.
        let still_open = t0 + Duration::from_millis(99);
        assert!(!b.routable(still_open));
        let expired = t0 + Duration::from_millis(151);
        assert!(b.routable(expired));
        assert!(b.try_acquire(expired), "the probe is admitted");
        assert_eq!(b.state(), BreakerState::HalfOpen);
        assert!(!b.try_acquire(expired), "only one probe at a time");
        b.on_success();
        assert_eq!(b.state(), BreakerState::Closed);
        assert!(b.try_acquire(expired));
    }

    #[test]
    fn a_failed_probe_retrips_with_seeded_jitter() {
        let run = |seed: u64| -> Vec<u64> {
            let mut b = breaker(1, 100, seed);
            let mut now = Instant::now();
            let mut waits = Vec::new();
            for _ in 0..4 {
                assert!(b.on_failure(now));
                // Recover the exact quarantine length via binary probing of
                // `routable` — 1ms resolution is enough for the envelope.
                let mut wait_ms = 0u64;
                while !b.routable(now + Duration::from_millis(wait_ms)) {
                    wait_ms += 1;
                }
                waits.push(wait_ms);
                now += Duration::from_millis(wait_ms);
                assert!(b.try_acquire(now), "probe admitted after cooldown");
            }
            waits
        };
        let a = run(42);
        let b = run(42);
        assert_eq!(a, b, "same seed, same quarantine schedule");
        for wait in &a {
            assert!(
                (100..=150).contains(wait),
                "quarantine {wait}ms outside [cooldown, cooldown*1.5]"
            );
        }
        assert_ne!(a, run(43), "seeds steer the jitter");
    }

    #[test]
    fn failures_while_open_do_not_double_trip() {
        let mut b = breaker(1, 100, 7);
        let now = Instant::now();
        assert!(b.on_failure(now));
        assert!(!b.on_failure(now), "a straggler failure while open");
        assert_eq!(b.trips(), 1);
    }
}
