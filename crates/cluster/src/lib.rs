//! `ssr-cluster`: health-checked multi-node routing over `ssr serve`
//! replicas.
//!
//! One [`ClusterClient`] fronts N servers that each hold the same snapshot.
//! It routes every request by seeded power-of-two-choices over the healthy
//! nodes, quarantines a misbehaving node behind a per-node circuit
//! [`Breaker`], fails idempotent requests over to the next healthy node
//! under the per-op deadline, and — when configured — hedges a slow request
//! with a second copy to a different node, taking whichever typed success
//! lands first.
//!
//! Everything chance-shaped is a pure function of a seed: the candidate
//! draws ([`ssr_fault::mix64`] of a monotonic ticket), the breaker-cooldown
//! jitter (mix of the trip ordinal), and therefore — under the
//! deterministic chaos harness in `ssr-bench`, which kills and revives
//! nodes at fixed request indices via [`ssr_fault::kill_node`] — the exact
//! failover, hedge and breaker-trip counts of a whole run. Replaying a seed
//! replays the incident.
//!
//! The layer is purely client-side: servers do not know they are in a
//! cluster, and nothing here touches the retrieval pipeline. Consistency is
//! the operator's bargain — all nodes serve the same immutable snapshot —
//! so any node's answer is *the* answer, which is what makes failover and
//! hedging safe for idempotent requests in the first place.
//!
//! Progress over the global `ssr_cluster_*` metric families is mirrored
//! into [`ssr_obs::global`], so a `/metrics` scrape of the *client* process
//! shows `ssr_cluster_requests_total`, `ssr_cluster_failovers_total`,
//! `ssr_cluster_hedges_total`, `ssr_cluster_breaker_trips_total{node=...}`
//! and friends next to everything else.

pub mod breaker;
pub mod client;

pub use breaker::{Breaker, BreakerConfig, BreakerState};
pub use client::{ClusterClient, ClusterConfig, ClusterCounters, ClusterError, NodeHealth};
