//! [`ClusterClient`] contracts against real `ssr serve` nodes: failover
//! covers a dead node, the breaker quarantines and readmits it, hedges fire
//! exactly when asked and never produce a second response, the per-op
//! deadline caps a failover chain, and a fully-dark cluster fails typed.
//!
//! Node outages come from two sources: genuinely dead addresses (a bound
//! listener dropped before the test, so connections are refused instantly)
//! and [`ssr_fault::kill_node`] (the server holds its port but drops every
//! connection), which is what lets a "crashed" node come back without a
//! rebind race. Node names are unique per test — the kill registry is
//! process-global and these tests run in parallel.

use std::net::TcpListener;
use std::time::Duration;

use ssr_cluster::{BreakerConfig, BreakerState, ClusterClient, ClusterConfig, ClusterError};
use ssr_core::client::ClientConfig;
use ssr_core::serve::{ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response};
use ssr_core::{FrameworkConfig, QueryEngine, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

const DB_TEXTS: &[&str] = &[
    "MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM",
    "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY",
    "ACACACACACACACACACACACACACACACAC",
];

fn build_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for text in DB_TEXTS {
        builder = builder.add_sequence(Sequence::new(sym(text)));
    }
    builder.build().expect("test database builds")
}

fn query_request() -> Request<Symbol> {
    Request::Query {
        spec: QuerySpec::Type1 { epsilon: 2.0 },
        queries: vec![sym("YYYYACDEFGHIKLMNPQRSTVWYYYYY"), sym("ACACACACACACACAC")],
    }
}

fn node(name: Option<&str>) -> Server<Symbol, Levenshtein> {
    Server::bind(
        build_db(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            node_name: name.map(String::from),
            ..ServeConfig::default()
        },
    )
    .expect("node binds")
}

/// An address that refuses connections instantly: bind, record, drop.
fn dead_addr() -> String {
    let throwaway = TcpListener::bind("127.0.0.1:0").expect("bind");
    throwaway.local_addr().expect("addr").to_string()
}

/// Fast-failing cluster policy: one wire attempt per node (the cluster *is*
/// the retry), no prober, no hedging, and a quarantine far longer than any
/// test so a tripped breaker stays tripped.
fn test_config(threshold: u32, cooldown: Duration) -> ClusterConfig {
    ClusterConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_millis(500),
            read_timeout: Duration::from_millis(500),
            write_timeout: Duration::from_millis(500),
            max_attempts: 1,
            op_deadline: None,
            ..ClientConfig::default()
        },
        breaker: BreakerConfig {
            threshold,
            cooldown,
            jitter_seed: 7,
        },
        hedge_after: None,
        route_seed: 42,
        probe_interval: None,
    }
}

#[test]
fn failover_covers_a_dead_node_until_the_breaker_quarantines_it() {
    let a = node(None);
    let b = node(None);
    let addrs = vec![
        a.local_addr().to_string(),
        dead_addr(),
        b.local_addr().to_string(),
    ];
    let cluster = ClusterClient::<Symbol>::new(addrs, test_config(1, Duration::from_secs(60)))
        .expect("cluster");

    // Every request must succeed: the dead node costs a failover the first
    // time routing picks it, then its breaker (threshold 1, quarantine far
    // beyond the test) takes it out of the candidate set for good.
    let mut answered = 0;
    for _ in 0..25 {
        match cluster
            .request(&query_request())
            .expect("idempotent queries never fail")
        {
            Response::Outcomes(outcomes) => {
                assert_eq!(outcomes.len(), 2);
                answered += 1;
            }
            other => panic!("expected outcomes, got {other:?}"),
        }
    }
    let counters = cluster.counters();
    assert_eq!(answered, 25);
    assert_eq!(counters.requests, 25);
    assert_eq!(
        counters.breaker_trips, 1,
        "the dead node tripped once and was never gambled on again"
    );
    assert_eq!(
        counters.node_failures, 1,
        "exactly one request ever reached the dead node"
    );
    assert_eq!(
        counters.failovers, 1,
        "that one request failed over and still succeeded"
    );
    let health = cluster.node_health();
    assert_eq!(health[1].state, BreakerState::Open, "dead node quarantined");
    assert_eq!(health[0].state, BreakerState::Closed);
    assert_eq!(health[2].state, BreakerState::Closed);
    a.shutdown();
    b.shutdown();
}

#[test]
fn a_killed_node_is_readmitted_through_the_half_open_probe_after_revival() {
    let server = node(Some("cluster-test-readmit"));
    let cluster = ClusterClient::<Symbol>::new(
        vec![server.local_addr().to_string()],
        test_config(1, Duration::from_millis(100)),
    )
    .expect("cluster");

    ssr_fault::kill_node("cluster-test-readmit");
    match cluster.request(&query_request()) {
        Err(ClusterError::Exhausted { attempts, .. }) => assert_eq!(attempts, 1),
        other => panic!("expected exhaustion against the killed node, got {other:?}"),
    }
    assert_eq!(cluster.counters().breaker_trips, 1);
    assert_eq!(cluster.node_health()[0].state, BreakerState::Open);

    // While quarantined, requests are refused without touching the wire.
    match cluster.request(&query_request()) {
        Err(ClusterError::NoHealthyNodes { .. }) => {}
        other => panic!("expected no-healthy-nodes while quarantined, got {other:?}"),
    }
    assert_eq!(
        cluster.counters().node_failures,
        1,
        "the quarantined node was not re-dialed"
    );

    ssr_fault::revive_node("cluster-test-readmit");
    // Past cooldown + max jitter (100 + 50ms), the next request becomes the
    // half-open probe and its success closes the breaker.
    std::thread::sleep(Duration::from_millis(200));
    assert!(matches!(
        cluster
            .request(&query_request())
            .expect("revived node answers"),
        Response::Outcomes(_)
    ));
    assert_eq!(cluster.node_health()[0].state, BreakerState::Closed);
    assert_eq!(cluster.counters().breaker_trips, 1, "no re-trip on revival");
    server.shutdown();
}

#[test]
fn the_background_prober_readmits_a_revived_node_without_user_traffic() {
    let server = node(Some("cluster-test-prober"));
    let mut config = test_config(1, Duration::from_millis(50));
    config.probe_interval = Some(Duration::from_millis(20));
    let cluster = ClusterClient::<Symbol>::new(vec![server.local_addr().to_string()], config)
        .expect("cluster");

    ssr_fault::kill_node("cluster-test-prober");
    // Either a user request or a probe trips the breaker first; both feed
    // the same state machine.
    let _ = cluster.request(&query_request());
    assert_eq!(cluster.node_health()[0].state, BreakerState::Open);

    ssr_fault::revive_node("cluster-test-prober");
    // No user traffic from here on: probes alone must walk the breaker
    // open → half-open → closed. Generous budget; the cadence is 20ms.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    while cluster.node_health()[0].state != BreakerState::Closed {
        assert!(
            std::time::Instant::now() < deadline,
            "prober failed to readmit the revived node in 5s"
        );
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        cluster.counters().probes > 0,
        "readmission came from probes"
    );
    assert!(matches!(
        cluster.request(&query_request()).expect("readmitted"),
        Response::Outcomes(_)
    ));
    server.shutdown();
}

#[test]
fn a_forced_hedge_fires_exactly_once_and_yields_exactly_one_response() {
    let a = node(None);
    let b = node(None);
    let cluster = ClusterClient::<Symbol>::new(
        vec![a.local_addr().to_string(), b.local_addr().to_string()],
        test_config(3, Duration::from_secs(60)),
    )
    .expect("cluster");

    // hedge_after = 0 forces the hedge on every request regardless of how
    // fast the primary answers — the determinism knob the chaos harness
    // leans on.
    let response = cluster
        .request_with_hedge(&query_request(), Some(Duration::ZERO))
        .expect("hedged request succeeds");
    assert!(matches!(response, Response::Outcomes(_)));
    cluster.quiesce(); // the losing copy must fully land before we count
    let counters = cluster.counters();
    assert_eq!(counters.hedges, 1, "exactly one hedge copy was fired");
    assert_eq!(
        counters.requests, 1,
        "exactly one response reached the caller"
    );
    assert!(
        counters.hedge_wins <= 1,
        "a win is a race; more than one is double-counting"
    );
    assert_eq!(counters.failovers, 0);
    a.shutdown();
    b.shutdown();
}

#[test]
fn the_per_op_deadline_caps_a_failover_chain() {
    let mut config = test_config(3, Duration::from_secs(60));
    config.client.op_deadline = Some(Duration::ZERO);
    let cluster = ClusterClient::<Symbol>::new(vec![dead_addr(), dead_addr(), dead_addr()], config)
        .expect("cluster");
    // A zero budget admits the first hop (the deadline is only consulted
    // before *continuing* a chain) and refuses every hop after it.
    match cluster.request(&query_request()) {
        Err(ClusterError::DeadlineExceeded { attempts, .. }) => {
            assert_eq!(attempts, 1, "the chain was cut after the first hop");
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    assert_eq!(cluster.counters().deadline_exceeded, 1);
    assert_eq!(cluster.counters().node_failures, 1);
}

#[test]
fn a_fully_dark_cluster_fails_typed_and_then_refuses_fast() {
    let cluster = ClusterClient::<Symbol>::new(
        vec![dead_addr(), dead_addr()],
        test_config(1, Duration::from_secs(60)),
    )
    .expect("cluster");
    // First request walks both nodes, trips both breakers.
    match cluster.request(&query_request()) {
        Err(ClusterError::Exhausted { attempts, .. }) => assert_eq!(attempts, 2),
        other => panic!("expected exhaustion, got {other:?}"),
    }
    assert_eq!(cluster.counters().breaker_trips, 2);
    // Second request finds no routable candidate and never dials.
    match cluster.request(&query_request()) {
        Err(ClusterError::NoHealthyNodes { .. }) => {}
        other => panic!("expected no healthy nodes, got {other:?}"),
    }
    assert_eq!(cluster.counters().node_failures, 2, "no further dialing");
}

#[test]
fn cluster_responses_are_bit_identical_to_the_in_process_engine() {
    let db = build_db();
    let engine = QueryEngine::new(&db);
    let queries = vec![
        Sequence::new(sym("YYYYACDEFGHIKLMNPQRSTVWYYYYY")),
        Sequence::new(sym("ACACACACACACACAC")),
    ];
    let expected = engine.batch_type1(&queries, 2.0);

    let a = node(None);
    let b = node(None);
    let cluster = ClusterClient::<Symbol>::new(
        vec![a.local_addr().to_string(), b.local_addr().to_string()],
        test_config(3, Duration::from_secs(60)),
    )
    .expect("cluster");
    // Whichever node routing picks, the answer is the same bits — the
    // invariant that makes failover and hedging safe at all.
    for _ in 0..6 {
        let Response::Outcomes(served) = cluster.request(&query_request()).expect("query") else {
            panic!("expected outcomes");
        };
        assert_eq!(served.len(), expected.outcomes.len());
        for (wire, local) in served.iter().zip(&expected.outcomes) {
            assert_eq!(wire.matches, local.result, "matches are bit-identical");
            assert_eq!(wire.stats, local.stats, "work stats are bit-identical");
        }
    }
    a.shutdown();
    b.shutdown();
}

#[test]
fn administrative_fanout_reaches_every_node_individually() {
    let a = node(None);
    let b = node(None);
    let dead = dead_addr();
    let cluster = ClusterClient::<Symbol>::new(
        vec![
            a.local_addr().to_string(),
            dead.clone(),
            b.local_addr().to_string(),
        ],
        test_config(1, Duration::from_secs(60)),
    )
    .expect("cluster");

    let outcomes = cluster.for_each_node(&Request::Stats);
    assert_eq!(outcomes.len(), 3, "one outcome per node, address order");
    assert!(matches!(outcomes[0].1, Ok(Response::Stats(_))));
    assert_eq!(outcomes[1].0, dead);
    assert!(outcomes[1].1.is_err(), "the dead node reports its failure");
    assert!(matches!(outcomes[2].1, Ok(Response::Stats(_))));

    // Drain fans out the same way; dead nodes fail individually without
    // blocking the live ones.
    let drains = cluster.for_each_node(&Request::Shutdown);
    assert!(matches!(drains[0].1, Ok(Response::ShuttingDown)));
    assert!(drains[1].1.is_err());
    assert!(matches!(drains[2].1, Ok(Response::ShuttingDown)));
    a.wait();
    b.wait();
}
