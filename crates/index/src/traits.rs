//! Common interface of the range-query indexes.

use std::fmt;

/// Identifier of an item stored in an index.
///
/// Items keep the id they were assigned at insertion for the lifetime of the
/// index, even across deletions, so the framework can use the id as a stable
/// window identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ItemId(pub usize);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// Space accounting of an index, matching the quantities reported in the
/// paper's Figures 5–7.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SpaceStats {
    /// Number of live items stored.
    pub items: usize,
    /// Number of index entries beyond the items themselves: reference-list
    /// entries (parent→child links) for the hierarchical structures, pivot
    /// table cells for reference-based indexing, zero for a linear scan.
    pub entries: usize,
    /// Number of levels of the hierarchy (1 for flat structures).
    pub levels: usize,
    /// Average number of parents per item (the "average size of each
    /// reference list" series of Figure 5); zero for flat structures.
    pub avg_parents: f64,
    /// Estimated in-memory footprint of the index bookkeeping in bytes,
    /// excluding the items' own payload.
    pub estimated_bytes: usize,
    /// Exact byte size of the index's structural bookkeeping when encoded in
    /// the `ssr-storage` snapshot format, excluding the item payloads
    /// (measured by running the snapshot encoder over the structure). Zero
    /// for structures that persist no bookkeeping (linear scan).
    pub serialized_bytes: usize,
}

impl SpaceStats {
    /// Estimated footprint in mebibytes.
    pub fn estimated_mib(&self) -> f64 {
        self.estimated_bytes as f64 / (1024.0 * 1024.0)
    }
}

/// An index answering range similarity queries `{ x : δ(q, x) ≤ radius }`.
pub trait RangeIndex<T> {
    /// Inserts an item, returning its id.
    fn insert(&mut self, item: T) -> ItemId;

    /// Number of live items.
    fn len(&self) -> usize;

    /// Whether the index holds no live items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow an item by id (`None` if the id was never assigned or the item
    /// was deleted).
    fn item(&self, id: ItemId) -> Option<&T>;

    /// All ids whose item lies within `radius` of `query`.
    ///
    /// The result order is unspecified; callers that need determinism sort.
    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId>;

    /// Space accounting for the structure.
    fn space_stats(&self) -> SpaceStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_display() {
        assert_eq!(ItemId(12).to_string(), "item#12");
    }

    #[test]
    fn space_stats_mib_conversion() {
        let stats = SpaceStats {
            items: 10,
            entries: 20,
            levels: 3,
            avg_parents: 2.0,
            estimated_bytes: 2 * 1024 * 1024,
            serialized_bytes: 0,
        };
        assert!((stats.estimated_mib() - 2.0).abs() < 1e-12);
    }
}
