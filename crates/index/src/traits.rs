//! Common interface of the range-query indexes.

use std::fmt;

/// Identifier of an item stored in an index.
///
/// Items keep the id they were assigned at insertion for the lifetime of the
/// index, even across deletions, so the framework can use the id as a stable
/// window identifier.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct ItemId(pub usize);

impl fmt::Display for ItemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "item#{}", self.0)
    }
}

/// Space accounting of an index, matching the quantities reported in the
/// paper's Figures 5–7.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct SpaceStats {
    /// Number of live items stored.
    pub items: usize,
    /// Number of index entries beyond the items themselves: reference-list
    /// entries (parent→child links) for the hierarchical structures, pivot
    /// table cells for reference-based indexing, zero for a linear scan.
    pub entries: usize,
    /// Number of levels of the hierarchy (1 for flat structures).
    pub levels: usize,
    /// Average number of parents per item (the "average size of each
    /// reference list" series of Figure 5); zero for flat structures.
    pub avg_parents: f64,
    /// Estimated in-memory footprint of the index bookkeeping in bytes,
    /// excluding the items' own payload.
    pub estimated_bytes: usize,
    /// Exact byte size of the index's structural bookkeeping when encoded in
    /// the `ssr-storage` snapshot format, excluding the item payloads
    /// (measured by running the snapshot encoder over the structure). Zero
    /// for structures that persist no bookkeeping (linear scan).
    pub serialized_bytes: usize,
    /// Deterministic resident bytes of the item *handles* the index stores:
    /// `stored items × size_of::<T>()`. With arena-backed items (`WindowId`)
    /// this is the index's entire per-item payload — one machine word each;
    /// any heap payload of owned item types (e.g. `Vec<E>` test items) is
    /// deliberately not chased, because the framework's invariant is that
    /// there is none. Computed from lengths, never allocator capacities, so
    /// the value is identical on every machine and safe to gate in CI.
    pub item_bytes: usize,
    /// Deterministic resident bytes of the shared element storage the item
    /// handles resolve against (the `ElementArena` behind a window store).
    /// Zero for self-contained indexes; filled in by the framework layer,
    /// which owns the arena the index only borrows through its metric.
    pub arena_bytes: usize,
}

impl SpaceStats {
    /// Estimated footprint in mebibytes.
    pub fn estimated_mib(&self) -> f64 {
        self.estimated_bytes as f64 / (1024.0 * 1024.0)
    }

    /// Resident bytes per stored item: shared arena plus per-item handles,
    /// divided by the live item count (0.0 for an empty index). The bench's
    /// gated `bytes_per_window` additionally counts the window store's view
    /// table, which the index does not own, so it sits a few words per item
    /// above this number.
    pub fn bytes_per_item(&self) -> f64 {
        if self.items == 0 {
            return 0.0;
        }
        (self.arena_bytes + self.item_bytes) as f64 / self.items as f64
    }
}

/// An index answering range similarity queries `{ x : δ(q, x) ≤ radius }`.
pub trait RangeIndex<T> {
    /// Inserts an item, returning its id.
    fn insert(&mut self, item: T) -> ItemId;

    /// Number of live items.
    fn len(&self) -> usize;

    /// Whether the index holds no live items.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Borrow an item by id (`None` if the id was never assigned or the item
    /// was deleted).
    fn item(&self, id: ItemId) -> Option<&T>;

    /// All ids whose item lies within `radius` of `query`.
    ///
    /// The result order is unspecified; callers that need determinism sort.
    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId>;

    /// Space accounting for the structure.
    fn space_stats(&self) -> SpaceStats;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn item_id_display() {
        assert_eq!(ItemId(12).to_string(), "item#12");
    }

    #[test]
    fn space_stats_mib_conversion() {
        let stats = SpaceStats {
            items: 10,
            entries: 20,
            levels: 3,
            avg_parents: 2.0,
            estimated_bytes: 2 * 1024 * 1024,
            serialized_bytes: 0,
            item_bytes: 80,
            arena_bytes: 320,
        };
        assert!((stats.estimated_mib() - 2.0).abs() < 1e-12);
        assert!((stats.bytes_per_item() - 40.0).abs() < 1e-12);
        assert_eq!(SpaceStats::default().bytes_per_item(), 0.0);
    }
}
