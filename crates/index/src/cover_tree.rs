//! Cover Tree baseline (Beygelzimer, Kakade & Langford, ICML 2006).
//!
//! The Cover Tree is the linear-space, single-parent baseline the paper
//! compares the Reference Net against. This implementation uses the same
//! levelled geometry as [`crate::ReferenceNet`] — level `i` is associated with
//! radius `ǫ'·2^i`, parents always sit strictly above their children, and a
//! parent is within `ǫ'·2^{child_level + 1}` of each child — but every node
//! has **exactly one** parent, so it is a tree. Range queries descend the tree
//! level by level, pruning or bulk-accepting whole subtrees with the triangle
//! inequality; the lack of multiple parents is precisely what the paper's
//! Figure 2 shows can force extra distance computations compared to the
//! Reference Net.

use std::collections::BTreeMap;

use ssr_storage::{Decode, DecodeWith, Encode, StorageError};

use crate::metric::Metric;
use crate::traits::{ItemId, RangeIndex, SpaceStats};

#[derive(Clone, Debug)]
struct Node {
    level: i32,
    parent: Option<usize>,
    children: Vec<usize>,
}

/// A cover tree over items of type `T` under metric `M`.
#[derive(Clone)]
pub struct CoverTree<T, M> {
    epsilon_prime: f64,
    metric: M,
    items: Vec<T>,
    nodes: Vec<Node>,
    by_level: BTreeMap<i32, Vec<usize>>,
    root: Option<usize>,
}

impl<T, M> CoverTree<T, M> {
    fn radius(&self, level: i32) -> f64 {
        self.epsilon_prime * f64::powi(2.0, level)
    }

    fn mark_subtree(&self, start: usize, value: bool, decided: &mut [Option<bool>]) {
        let mut stack: Vec<usize> = self.nodes[start].children.clone();
        while let Some(n) = stack.pop() {
            if decided[n].is_none() {
                decided[n] = Some(value);
            }
            stack.extend(self.nodes[n].children.iter().copied());
        }
    }

    /// Stored items in id order (the id of `items()[i]` is `ItemId(i)`).
    /// Snapshot loading uses this to validate decoded item handles before
    /// any of them is resolved.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Probe-based range query: `probe(item, tau)` evaluates the query —
    /// whatever its representation — against one stored item, returning
    /// `Some(d)` with the exact distance whenever `d ≤ tau`. Visit order,
    /// thresholds and subtree decisions match [`RangeIndex::range_query`]
    /// exactly (that method is the `probe = metric` special case).
    pub fn range_query_with<F>(&self, mut probe: F, radius: f64) -> Vec<ItemId>
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        if self.root.is_none() {
            return Vec::new();
        }
        let mut decided: Vec<Option<bool>> = vec![None; self.nodes.len()];
        for (&level, ids) in self.by_level.iter().rev() {
            let r_sub = self.radius(level + 1);
            // The only decisions that need the exact distance are those with
            // d ≤ radius + r_sub: anything farther is pruned together with
            // its whole subtree. Passing that threshold to the probe lets a
            // threshold-aware kernel abandon early; the triangle-inequality
            // residual r_sub is exactly what the pruning rule already uses.
            let tau = radius + r_sub;
            for &n in ids {
                if decided[n].is_some() {
                    continue;
                }
                match probe(&self.items[n], tau) {
                    Some(d) => {
                        decided[n] = Some(d <= radius);
                        if d + r_sub <= radius {
                            self.mark_subtree(n, true, &mut decided);
                        } else if d - r_sub > radius {
                            self.mark_subtree(n, false, &mut decided);
                        }
                    }
                    None => {
                        // d > radius + r_sub: the node and everything below
                        // it lie outside the query ball.
                        decided[n] = Some(false);
                        self.mark_subtree(n, false, &mut decided);
                    }
                }
            }
        }
        decided
            .iter()
            .enumerate()
            .filter(|&(_, d)| *d == Some(true))
            .map(|(i, _)| ItemId(i))
            .collect()
    }
}

impl<T, M: Metric<T>> CoverTree<T, M> {
    /// Creates an empty cover tree with base radius `ǫ' = 1`.
    pub fn new(metric: M) -> Self {
        Self::with_epsilon_prime(metric, 1.0)
    }

    /// Creates an empty cover tree with an explicit base radius.
    pub fn with_epsilon_prime(metric: M, epsilon_prime: f64) -> Self {
        assert!(
            epsilon_prime > 0.0 && epsilon_prime.is_finite(),
            "epsilon_prime must be positive and finite"
        );
        CoverTree {
            epsilon_prime,
            metric,
            items: Vec::new(),
            nodes: Vec::new(),
            by_level: BTreeMap::new(),
            root: None,
        }
    }

    /// The metric used by the tree.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Mutable access to the metric (used by live ingestion to swap in a
    /// grown window store before inserting the new tail items).
    pub fn metric_mut(&mut self) -> &mut M {
        &mut self.metric
    }

    /// Bulk-inserts a collection of items.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, items: I) {
        for item in items {
            self.insert(item);
        }
    }

    /// Number of hierarchy levels in use.
    pub fn level_count(&self) -> usize {
        self.by_level.len()
    }

    /// Structural invariants: single parent, level ordering, covering radius,
    /// and reachability from the root. Used by tests.
    pub fn check_invariants(&self) -> Result<(), String> {
        let root = match self.root {
            Some(r) => r,
            None => {
                if self.items.is_empty() {
                    return Ok(());
                }
                return Err("items but no root".into());
            }
        };
        for (i, node) in self.nodes.iter().enumerate() {
            match node.parent {
                None => {
                    if i != root {
                        return Err(format!("non-root node {i} has no parent"));
                    }
                }
                Some(p) => {
                    if self.nodes[p].level <= node.level {
                        return Err(format!("parent {p} not above child {i}"));
                    }
                    let d = self.metric.dist(&self.items[p], &self.items[i]);
                    if d > self.radius(node.level + 1) + 1e-9 {
                        return Err(format!("edge {p}->{i} exceeds covering radius"));
                    }
                    if !self.nodes[p].children.contains(&i) {
                        return Err(format!("parent {p} does not list child {i}"));
                    }
                }
            }
        }
        let mut reached = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        reached[root] = true;
        while let Some(n) = stack.pop() {
            for &c in &self.nodes[n].children {
                if !reached[c] {
                    reached[c] = true;
                    stack.push(c);
                }
            }
        }
        if reached.iter().any(|&r| !r) {
            return Err("unreachable node".into());
        }
        Ok(())
    }

    fn set_level(&mut self, idx: usize, level: i32) {
        if let Some(ids) = self.by_level.get_mut(&self.nodes[idx].level) {
            ids.retain(|&n| n != idx);
            if ids.is_empty() {
                self.by_level.remove(&self.nodes[idx].level);
            }
        }
        self.nodes[idx].level = level;
        self.by_level.entry(level).or_default().push(idx);
    }
}

impl<T, M: Metric<T>> RangeIndex<T> for CoverTree<T, M> {
    fn insert(&mut self, item: T) -> ItemId {
        let idx = self.items.len();
        self.items.push(item);
        self.nodes.push(Node {
            level: 0,
            parent: None,
            children: Vec::new(),
        });

        let root = match self.root {
            Some(r) => r,
            None => {
                self.root = Some(idx);
                self.set_level(idx, 0);
                return ItemId(idx);
            }
        };

        let d_root = self.metric.dist(&self.items[idx], &self.items[root]);
        assert!(d_root.is_finite(), "metric returned a non-finite distance");
        let mut root_level = self.nodes[root].level;
        while d_root > self.radius(root_level) || root_level < 1 {
            root_level += 1;
        }
        if root_level != self.nodes[root].level {
            self.set_level(root, root_level);
        }

        // Descend, keeping the candidate cover set of the current level.
        let mut level = root_level;
        let mut cands: Vec<(usize, f64)> = vec![(root, d_root)];
        loop {
            let next_radius = self.radius(level - 1);
            let mut next: Vec<(usize, f64)> = Vec::new();
            for &(n, d) in &cands {
                if d <= next_radius {
                    next.push((n, d));
                }
                for &c in &self.nodes[n].children {
                    if self.nodes[c].level < level - 1 {
                        continue;
                    }
                    let dc = self.metric.dist(&self.items[idx], &self.items[c]);
                    if dc <= next_radius {
                        next.push((c, dc));
                    }
                }
            }
            let placement = if next.is_empty() {
                Some(level - 1)
            } else if level - 1 == 0 {
                Some(0)
            } else {
                None
            };
            if let Some(placement) = placement {
                // Single parent: the nearest candidate of the level above.
                let bound = self.radius(placement + 1);
                let parent = cands
                    .iter()
                    .copied()
                    .filter(|&(p, d)| self.nodes[p].level > placement && d <= bound)
                    .min_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal))
                    .map(|(p, _)| p)
                    .expect("descent always leaves at least one covering parent");
                self.set_level(idx, placement);
                self.nodes[idx].parent = Some(parent);
                self.nodes[parent].children.push(idx);
                return ItemId(idx);
            }
            cands = next;
            level -= 1;
        }
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item(&self, id: ItemId) -> Option<&T> {
        self.items.get(id.0)
    }

    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId> {
        self.range_query_with(
            |item, tau| self.metric.dist_within(query, item, tau),
            radius,
        )
    }

    fn space_stats(&self) -> SpaceStats {
        let entries = self.items.len().saturating_sub(1); // one parent per non-root node
        let estimated_bytes = self.items.len() * (4 + std::mem::size_of::<Vec<usize>>() + 16);
        let avg_parents = if self.items.len() <= 1 { 0.0 } else { 1.0 };
        SpaceStats {
            items: self.items.len(),
            entries,
            levels: self.by_level.len(),
            avg_parents,
            estimated_bytes,
            serialized_bytes: self.structure_encoded_len(),
            item_bytes: self.items.len() * std::mem::size_of::<T>(),
            arena_bytes: 0,
        }
    }
}

// -- snapshot codec ---------------------------------------------------------

impl Encode for Node {
    fn encode(&self, w: &mut ssr_storage::Writer) {
        w.put_i32(self.level);
        self.parent.encode(w);
        self.children.encode(w);
    }
}

impl Decode for Node {
    fn decode(r: &mut ssr_storage::Reader<'_>) -> Result<Self, StorageError> {
        Ok(Node {
            level: r.take_i32()?,
            parent: Option::<usize>::decode(r)?,
            children: Vec::<usize>::decode(r)?,
        })
    }
}

impl<T, M> CoverTree<T, M> {
    /// Encodes the tree bookkeeping — everything except the items and the
    /// metric. As for the Reference Net, the `by_level` buckets are stored
    /// verbatim so that a loaded tree visits references in the same order and
    /// reproduces per-query distance-call counts exactly.
    fn encode_structure(&self, w: &mut ssr_storage::Writer) {
        w.put_f64(self.epsilon_prime);
        self.nodes.encode(w);
        let levels: Vec<(i32, Vec<usize>)> = self
            .by_level
            .iter()
            .map(|(&level, ids)| (level, ids.clone()))
            .collect();
        levels.encode(w);
        self.root.encode(w);
    }

    /// Exact byte size of [`Self::encode_structure`]'s output.
    fn structure_encoded_len(&self) -> usize {
        ssr_storage::Writer::measure(|w| self.encode_structure(w))
    }

    /// Stable backend name for telemetry labels.
    pub fn backend_name(&self) -> &'static str {
        "cover_tree"
    }
}

impl<T: Encode, M> Encode for CoverTree<T, M> {
    fn encode(&self, w: &mut ssr_storage::Writer) {
        self.items.encode(w);
        self.encode_structure(w);
    }
}

impl<T: Decode, M: Metric<T>> DecodeWith<M> for CoverTree<T, M> {
    fn decode_with(r: &mut ssr_storage::Reader<'_>, metric: M) -> Result<Self, StorageError> {
        let items = Vec::<T>::decode(r)?;
        let epsilon_prime = r.take_f64()?;
        if !(epsilon_prime > 0.0 && epsilon_prime.is_finite()) {
            return Err(StorageError::Malformed(
                "cover tree epsilon_prime must be positive and finite".into(),
            ));
        }
        let nodes = Vec::<Node>::decode(r)?;
        if nodes.len() != items.len() {
            return Err(StorageError::Malformed(format!(
                "cover tree has {} nodes for {} items",
                nodes.len(),
                items.len()
            )));
        }
        let in_range = |idx: &usize| *idx < nodes.len();
        if !nodes
            .iter()
            .all(|n| n.parent.iter().all(in_range) && n.children.iter().all(in_range))
        {
            return Err(StorageError::Malformed(
                "cover tree edge index out of range".into(),
            ));
        }
        let levels = Vec::<(i32, Vec<usize>)>::decode(r)?;
        let mut by_level = BTreeMap::new();
        for (level, ids) in levels {
            if !ids.iter().all(in_range) {
                return Err(StorageError::Malformed(
                    "cover tree level bucket index out of range".into(),
                ));
            }
            if by_level.insert(level, ids).is_some() {
                return Err(StorageError::Malformed(format!(
                    "duplicate cover tree level {level}"
                )));
            }
        }
        let root = Option::<usize>::decode(r)?;
        if root.is_some_and(|root| root >= nodes.len()) {
            return Err(StorageError::Malformed(
                "cover tree root out of range".into(),
            ));
        }
        Ok(CoverTree {
            epsilon_prime,
            metric,
            items,
            nodes,
            by_level,
            root,
        })
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::metric::FnMetric;

    fn scalar_metric() -> FnMetric<fn(&f64, &f64) -> f64> {
        FnMetric(|a: &f64, b: &f64| (a - b).abs())
    }

    fn build(values: &[f64]) -> CoverTree<f64, FnMetric<fn(&f64, &f64) -> f64>> {
        let mut tree = CoverTree::new(scalar_metric());
        for &v in values {
            tree.insert(v);
        }
        tree
    }

    #[test]
    fn empty_tree() {
        let tree = build(&[]);
        assert!(tree.is_empty());
        assert!(tree.range_query(&0.0, 10.0).is_empty());
    }

    #[test]
    fn range_queries_match_brute_force() {
        let values: Vec<f64> = (0..300).map(|i| ((i * 29) % 271) as f64 * 0.3).collect();
        let tree = build(&values);
        tree.check_invariants().unwrap();
        for &(q, r) in &[(5.0, 2.0), (40.0, 0.25), (0.0, 100.0), (81.0, 7.5)] {
            let mut got: Vec<usize> = tree.range_query(&q, r).into_iter().map(|i| i.0).collect();
            got.sort_unstable();
            let expected: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| (v - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "q={q} r={r}");
        }
    }

    #[test]
    fn every_node_has_exactly_one_parent() {
        let values: Vec<f64> = (0..100).map(|i| ((i * 17) % 89) as f64).collect();
        let tree = build(&values);
        let stats = tree.space_stats();
        assert_eq!(stats.items, 100);
        assert_eq!(stats.entries, 99);
        assert_eq!(stats.avg_parents, 1.0);
        assert!(stats.levels >= 2);
    }

    #[test]
    fn duplicates_are_retrievable() {
        let tree = build(&[2.0, 2.0, 2.0, 9.0]);
        tree.check_invariants().unwrap();
        let mut got: Vec<usize> = tree
            .range_query(&2.0, 0.01)
            .into_iter()
            .map(|i| i.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2]);
    }

    #[test]
    fn query_prunes_compared_to_linear_scan() {
        use crate::metric::CountingMetric;
        use ssr_distance::CallCounter;

        let counter = CallCounter::new();
        let metric = CountingMetric::new(scalar_metric(), counter.clone());
        let mut tree = CoverTree::new(metric);
        for i in 0..2000 {
            tree.insert(((i * 37) % 1999) as f64 * 0.1);
        }
        counter.reset();
        let result = tree.range_query(&50.0, 1.0);
        assert!(!result.is_empty());
        assert!(
            counter.get() < 1000,
            "expected pruning, got {}",
            counter.get()
        );
    }
}
