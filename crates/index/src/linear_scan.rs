//! Naive linear scan baseline.

use ssr_storage::{Decode, DecodeWith, Encode, StorageError};

use crate::metric::Metric;
use crate::traits::{ItemId, RangeIndex, SpaceStats};

/// The naive baseline: a range query computes the distance from the query to
/// every stored item. All pruning ratios in the paper's Figures 8–11 are
/// expressed relative to this structure, and the correctness property tests of
/// the other indexes compare against its answers.
#[derive(Clone)]
pub struct LinearScan<T, M> {
    metric: M,
    items: Vec<T>,
}

impl<T, M: Metric<T>> LinearScan<T, M> {
    /// Creates an empty linear scan "index".
    pub fn new(metric: M) -> Self {
        LinearScan {
            metric,
            items: Vec::new(),
        }
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Mutable access to the metric (used by live ingestion to swap in a
    /// grown window store before inserting the new tail items).
    pub fn metric_mut(&mut self) -> &mut M {
        &mut self.metric
    }

    /// Bulk-inserts a collection of items.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, items: I) {
        self.items.extend(items);
    }

    /// Range query that also returns the distance of each reported item.
    ///
    /// Every item is still *visited* (and counted as one distance call by a
    /// counting metric), but the threshold-aware evaluation lets the kernel
    /// abandon each non-matching item after a fraction of its DP cells.
    pub fn range_query_with_distances(&self, query: &T, radius: f64) -> Vec<(ItemId, f64)> {
        self.scan_with(
            |item, tau| self.metric.dist_within(query, item, tau),
            radius,
        )
    }
}

impl<T, M> LinearScan<T, M> {
    /// The one scan loop both query forms share: every item is visited in id
    /// order and `probe(item, radius)` decides (and reports) its distance.
    fn scan_with<F>(&self, mut probe: F, radius: f64) -> Vec<(ItemId, f64)>
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        self.items
            .iter()
            .enumerate()
            .filter_map(|(i, item)| probe(item, radius).map(|d| (ItemId(i), d)))
            .collect()
    }

    /// Probe-based range query: `probe(item, tau)` evaluates the query —
    /// whatever its representation — against one stored item, returning
    /// `Some(d)` exactly when `d ≤ tau`. This is how the framework queries
    /// id-addressed items with a raw query-segment slice (see
    /// [`crate::QueryMetric`]); `range_query` is the `probe = metric` special
    /// case. The scan visits every item in id order, like `range_query`.
    pub fn range_query_with<F>(&self, probe: F, radius: f64) -> Vec<ItemId>
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        self.scan_with(probe, radius)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    /// Stored items in id order (the id of `items()[i]` is `ItemId(i)`).
    /// Snapshot loading uses this to validate decoded item handles before
    /// any of them is resolved.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Stable backend name for telemetry labels.
    pub fn backend_name(&self) -> &'static str {
        "linear_scan"
    }
}

impl<T, M: Metric<T>> RangeIndex<T> for LinearScan<T, M> {
    fn insert(&mut self, item: T) -> ItemId {
        let id = ItemId(self.items.len());
        self.items.push(item);
        id
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item(&self, id: ItemId) -> Option<&T> {
        self.items.get(id.0)
    }

    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId> {
        self.range_query_with_distances(query, radius)
            .into_iter()
            .map(|(id, _)| id)
            .collect()
    }

    fn space_stats(&self) -> SpaceStats {
        SpaceStats {
            items: self.items.len(),
            entries: 0,
            levels: 1,
            avg_parents: 0.0,
            estimated_bytes: 0,
            serialized_bytes: 0,
            item_bytes: self.items.len() * std::mem::size_of::<T>(),
            arena_bytes: 0,
        }
    }
}

// -- snapshot codec ---------------------------------------------------------

impl<T: Encode, M> Encode for LinearScan<T, M> {
    fn encode(&self, w: &mut ssr_storage::Writer) {
        self.items.encode(w);
    }
}

impl<T: Decode, M: Metric<T>> DecodeWith<M> for LinearScan<T, M> {
    fn decode_with(r: &mut ssr_storage::Reader<'_>, metric: M) -> Result<Self, StorageError> {
        Ok(LinearScan {
            metric,
            items: Vec::<T>::decode(r)?,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metric::FnMetric;

    #[test]
    fn linear_scan_returns_exact_answers() {
        let mut scan = LinearScan::new(FnMetric(|a: &f64, b: &f64| (a - b).abs()));
        for v in [1.0, 5.0, 9.0, 5.5] {
            scan.insert(v);
        }
        let mut got: Vec<usize> = scan
            .range_query(&5.2, 0.5)
            .into_iter()
            .map(|i| i.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![1, 3]);
        let with_d = scan.range_query_with_distances(&5.2, 0.5);
        assert_eq!(with_d.len(), 2);
        assert!(with_d.iter().all(|&(_, d)| d <= 0.5));
        assert_eq!(scan.len(), 4);
        assert_eq!(scan.item(ItemId(2)), Some(&9.0));
        assert_eq!(scan.space_stats().entries, 0);
    }
}
