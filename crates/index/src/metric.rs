//! Metrics over arbitrary item types.
//!
//! The index structures in this crate are agnostic to what they index: they
//! only need a [`Metric`] — a symmetric distance obeying the triangle
//! inequality. In the framework the items are fixed-length windows (element
//! vectors) and the metric is one of the consistent, metric sequence distances
//! from `ssr-distance`; [`SequenceMetricAdapter`] provides that bridge.

use std::sync::Arc;

use ssr_distance::{CallCounter, CellCounter, SequenceDistance};
use ssr_sequence::Element;

/// A distance over items of type `T` that is symmetric and satisfies the
/// triangle inequality.
///
/// Implementations must be deterministic; the index structures rely on
/// `dist(a, a) == 0` and on the triangle inequality for correctness of their
/// pruning rules.
pub trait Metric<T>: Send + Sync {
    /// Distance between two items.
    fn dist(&self, a: &T, b: &T) -> f64;

    /// Threshold-aware distance: `Some(d)` with `d == self.dist(a, b)`
    /// exactly when `dist(a, b) ≤ tau`, `None` otherwise — never approximate.
    ///
    /// Range queries always know such a threshold (the query radius, widened
    /// by the triangle-inequality residual of the level being visited), and
    /// threshold-aware sequence kernels can cut most of their DP work when
    /// they know it. The default runs the full distance, so any metric is
    /// automatically correct.
    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        let d = self.dist(a, b);
        if d <= tau {
            Some(d)
        } else {
            None
        }
    }
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for Arc<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        (**self).dist_within(a, b, tau)
    }
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for &M {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        (**self).dist_within(a, b, tau)
    }
}

/// Adapts a closure into a [`Metric`].
#[derive(Clone, Debug)]
pub struct FnMetric<F>(pub F);

impl<T, F> Metric<T> for FnMetric<F>
where
    F: Fn(&T, &T) -> f64 + Send + Sync,
{
    fn dist(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

/// Adapts a metric [`SequenceDistance`] into a [`Metric`] over `Vec<E>` items
/// (the window representation used by the framework).
#[derive(Clone, Debug)]
pub struct SequenceMetricAdapter<D> {
    distance: D,
}

impl<D> SequenceMetricAdapter<D> {
    /// Wraps a sequence distance.
    ///
    /// The caller is responsible for only indexing with *metric* distances;
    /// [`ssr_distance::SequenceDistance::is_metric`] can be consulted. Using a
    /// non-metric distance (e.g. DTW) silently breaks the pruning guarantees,
    /// which is exactly the restriction the paper states in Section 5.
    pub fn new(distance: D) -> Self {
        SequenceMetricAdapter { distance }
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.distance
    }
}

impl<E, D> Metric<Vec<E>> for SequenceMetricAdapter<D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn dist(&self, a: &Vec<E>, b: &Vec<E>) -> f64 {
        self.distance.distance(a, b)
    }

    fn dist_within(&self, a: &Vec<E>, b: &Vec<E>, tau: f64) -> Option<f64> {
        self.distance.distance_within(a, b, tau)
    }
}

/// A metric wrapper that counts every distance evaluation on a shared
/// [`CallCounter`] — used to measure the pruning ratios of Figures 8–11 —
/// and mirrors the DP cells the underlying kernels evaluate into a shared
/// [`CellCounter`], so the *depth* of each evaluation is accounted for
/// alongside its mere occurrence. A thresholded evaluation counts as exactly
/// one call whether or not it was pruned: pruning saves cells, never calls,
/// which is what keeps distance-call statistics bit-identical when the
/// threshold path is enabled.
#[derive(Clone, Debug)]
pub struct CountingMetric<M> {
    inner: M,
    counter: CallCounter,
    cells: CellCounter,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner`, recording calls on `counter` (with a fresh cell
    /// counter; see [`Self::with_cell_counter`]).
    pub fn new(inner: M, counter: CallCounter) -> Self {
        CountingMetric {
            inner,
            counter,
            cells: CellCounter::new(),
        }
    }

    /// Records DP cells on the given shared counter instead of a fresh one.
    pub fn with_cell_counter(mut self, cells: CellCounter) -> Self {
        self.cells = cells;
        self
    }

    /// The shared call counter.
    pub fn counter(&self) -> &CallCounter {
        &self.counter
    }

    /// The shared DP-cell counter.
    pub fn cell_counter(&self) -> &CellCounter {
        &self.cells
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<T, M: Metric<T>> Metric<T> for CountingMetric<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        self.counter.record();
        let before = ssr_distance::dp_cells_thread_total();
        let d = self.inner.dist(a, b);
        self.cells
            .add(ssr_distance::dp_cells_thread_total() - before);
        d
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        self.counter.record();
        let before = ssr_distance::dp_cells_thread_total();
        let d = self.inner.dist_within(a, b, tau);
        self.cells
            .add(ssr_distance::dp_cells_thread_total() - before);
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn fn_metric_delegates_to_closure() {
        let m = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        assert_eq!(m.dist(&3.0, &7.5), 4.5);
    }

    #[test]
    fn sequence_adapter_bridges_to_sequence_distances() {
        let m = SequenceMetricAdapter::new(Levenshtein::new());
        assert_eq!(m.dist(&sym("KITTEN"), &sym("SITTING")), 3.0);
    }

    #[test]
    fn counting_metric_counts() {
        let counter = CallCounter::new();
        let m = CountingMetric::new(
            SequenceMetricAdapter::new(Levenshtein::new()),
            counter.clone(),
        );
        let a = sym("ACGT");
        let b = sym("AGGT");
        assert_eq!(m.dist(&a, &b), 1.0);
        assert_eq!(m.dist(&a, &a), 0.0);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn arc_and_reference_metrics_work() {
        let base = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        let arc: Arc<FnMetric<_>> = Arc::new(base);
        assert_eq!(arc.dist(&1.0, &4.0), 3.0);
        let by_ref: &FnMetric<_> = &arc;
        assert_eq!(Metric::<f64>::dist(&by_ref, &1.0, &2.0), 1.0);
    }
}
