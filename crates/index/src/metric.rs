//! Metrics over arbitrary item types.
//!
//! The index structures in this crate are agnostic to what they index: they
//! only need a [`Metric`] — a symmetric distance obeying the triangle
//! inequality. In the framework the items are fixed-length windows (element
//! vectors) and the metric is one of the consistent, metric sequence distances
//! from `ssr-distance`; [`SequenceMetricAdapter`] provides that bridge.

use std::sync::Arc;

use ssr_distance::{CallCounter, SequenceDistance};
use ssr_sequence::Element;

/// A distance over items of type `T` that is symmetric and satisfies the
/// triangle inequality.
///
/// Implementations must be deterministic; the index structures rely on
/// `dist(a, a) == 0` and on the triangle inequality for correctness of their
/// pruning rules.
pub trait Metric<T>: Send + Sync {
    /// Distance between two items.
    fn dist(&self, a: &T, b: &T) -> f64;
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for Arc<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for &M {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }
}

/// Adapts a closure into a [`Metric`].
#[derive(Clone, Debug)]
pub struct FnMetric<F>(pub F);

impl<T, F> Metric<T> for FnMetric<F>
where
    F: Fn(&T, &T) -> f64 + Send + Sync,
{
    fn dist(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

/// Adapts a metric [`SequenceDistance`] into a [`Metric`] over `Vec<E>` items
/// (the window representation used by the framework).
#[derive(Clone, Debug)]
pub struct SequenceMetricAdapter<D> {
    distance: D,
}

impl<D> SequenceMetricAdapter<D> {
    /// Wraps a sequence distance.
    ///
    /// The caller is responsible for only indexing with *metric* distances;
    /// [`ssr_distance::SequenceDistance::is_metric`] can be consulted. Using a
    /// non-metric distance (e.g. DTW) silently breaks the pruning guarantees,
    /// which is exactly the restriction the paper states in Section 5.
    pub fn new(distance: D) -> Self {
        SequenceMetricAdapter { distance }
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.distance
    }
}

impl<E, D> Metric<Vec<E>> for SequenceMetricAdapter<D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn dist(&self, a: &Vec<E>, b: &Vec<E>) -> f64 {
        self.distance.distance(a, b)
    }
}

/// A metric wrapper that counts every distance evaluation on a shared
/// [`CallCounter`]. Used to measure the pruning ratios of Figures 8–11.
#[derive(Clone, Debug)]
pub struct CountingMetric<M> {
    inner: M,
    counter: CallCounter,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner`, recording calls on `counter`.
    pub fn new(inner: M, counter: CallCounter) -> Self {
        CountingMetric { inner, counter }
    }

    /// The shared call counter.
    pub fn counter(&self) -> &CallCounter {
        &self.counter
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }
}

impl<T, M: Metric<T>> Metric<T> for CountingMetric<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        self.counter.record();
        self.inner.dist(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn fn_metric_delegates_to_closure() {
        let m = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        assert_eq!(m.dist(&3.0, &7.5), 4.5);
    }

    #[test]
    fn sequence_adapter_bridges_to_sequence_distances() {
        let m = SequenceMetricAdapter::new(Levenshtein::new());
        assert_eq!(m.dist(&sym("KITTEN"), &sym("SITTING")), 3.0);
    }

    #[test]
    fn counting_metric_counts() {
        let counter = CallCounter::new();
        let m = CountingMetric::new(
            SequenceMetricAdapter::new(Levenshtein::new()),
            counter.clone(),
        );
        let a = sym("ACGT");
        let b = sym("AGGT");
        assert_eq!(m.dist(&a, &b), 1.0);
        assert_eq!(m.dist(&a, &a), 0.0);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn arc_and_reference_metrics_work() {
        let base = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        let arc: Arc<FnMetric<_>> = Arc::new(base);
        assert_eq!(arc.dist(&1.0, &4.0), 3.0);
        let by_ref: &FnMetric<_> = &arc;
        assert_eq!(Metric::<f64>::dist(&by_ref, &1.0, &2.0), 1.0);
    }
}
