//! Metrics over arbitrary item types.
//!
//! The index structures in this crate are agnostic to what they index: they
//! only need a [`Metric`] — a symmetric distance obeying the triangle
//! inequality. In the framework the items are fixed-length windows (element
//! vectors) and the metric is one of the consistent, metric sequence distances
//! from `ssr-distance`; [`SequenceMetricAdapter`] provides that bridge.

use std::sync::Arc;

use ssr_distance::{CallCounter, CellCounter, SequenceDistance};
use ssr_sequence::{Element, WindowId, WindowStore};

/// A distance over items of type `T` that is symmetric and satisfies the
/// triangle inequality.
///
/// Implementations must be deterministic; the index structures rely on
/// `dist(a, a) == 0` and on the triangle inequality for correctness of their
/// pruning rules.
pub trait Metric<T>: Send + Sync {
    /// Distance between two items.
    fn dist(&self, a: &T, b: &T) -> f64;

    /// Threshold-aware distance: `Some(d)` with `d == self.dist(a, b)`
    /// exactly when `dist(a, b) ≤ tau`, `None` otherwise — never approximate.
    ///
    /// Range queries always know such a threshold (the query radius, widened
    /// by the triangle-inequality residual of the level being visited), and
    /// threshold-aware sequence kernels can cut most of their DP work when
    /// they know it. The default runs the full distance, so any metric is
    /// automatically correct.
    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        let d = self.dist(a, b);
        if d <= tau {
            Some(d)
        } else {
            None
        }
    }
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for Arc<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        (**self).dist_within(a, b, tau)
    }
}

impl<T, M: Metric<T> + ?Sized> Metric<T> for &M {
    fn dist(&self, a: &T, b: &T) -> f64 {
        (**self).dist(a, b)
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        (**self).dist_within(a, b, tau)
    }
}

/// A [`Metric`] that can additionally evaluate an *external* query
/// representation `Q` against its stored item type `T`.
///
/// The index structures store lightweight item handles (for the framework:
/// [`WindowId`]s resolved through a shared [`WindowStore`]), but a range
/// query arrives as raw data — a query-segment slice that exists in no
/// store. This trait is the bridge: `Q` is the probe side, `T` the stored
/// side, and implementations resolve `T` however they resolve it for
/// item–item distances. `query_dist_within` must agree exactly with
/// [`Metric::dist_within`] whenever `Q` and `T` denote the same elements.
pub trait QueryMetric<Q: ?Sized, T>: Metric<T> {
    /// Threshold-aware distance from an external query to a stored item:
    /// `Some(d)` with `d` exact whenever `d ≤ tau`, `None` otherwise.
    fn query_dist_within(&self, query: &Q, item: &T, tau: f64) -> Option<f64>;

    /// Exact distance from an external query to a stored item. Equivalent to
    /// `query_dist_within(query, item, f64::INFINITY)` (threshold-aware
    /// kernels return the exact distance under an infinite threshold), and
    /// counted identically by counting wrappers.
    fn query_dist(&self, query: &Q, item: &T) -> f64 {
        self.query_dist_within(query, item, f64::INFINITY)
            .expect("an infinite threshold never rejects")
    }
}

/// Adapts a closure into a [`Metric`].
#[derive(Clone, Debug)]
pub struct FnMetric<F>(pub F);

impl<T, F> Metric<T> for FnMetric<F>
where
    F: Fn(&T, &T) -> f64 + Send + Sync,
{
    fn dist(&self, a: &T, b: &T) -> f64 {
        (self.0)(a, b)
    }
}

/// Adapts a metric [`SequenceDistance`] into a [`Metric`] over `Vec<E>` items
/// (the window representation used by the framework).
#[derive(Clone, Debug)]
pub struct SequenceMetricAdapter<D> {
    distance: D,
}

impl<D> SequenceMetricAdapter<D> {
    /// Wraps a sequence distance.
    ///
    /// The caller is responsible for only indexing with *metric* distances;
    /// [`ssr_distance::SequenceDistance::is_metric`] can be consulted. Using a
    /// non-metric distance (e.g. DTW) silently breaks the pruning guarantees,
    /// which is exactly the restriction the paper states in Section 5.
    pub fn new(distance: D) -> Self {
        SequenceMetricAdapter { distance }
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.distance
    }
}

impl<E, D> Metric<Vec<E>> for SequenceMetricAdapter<D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn dist(&self, a: &Vec<E>, b: &Vec<E>) -> f64 {
        self.distance.distance(a, b)
    }

    fn dist_within(&self, a: &Vec<E>, b: &Vec<E>, tau: f64) -> Option<f64> {
        self.distance.distance_within(a, b, tau)
    }
}

/// The arena-era window metric: items are [`WindowId`]s, resolved to `&[E]`
/// slices of the shared [`WindowStore`] (and through it the `ElementArena`)
/// on every evaluation. Queries probe with raw `[E]` slices. No element is
/// ever copied — both sides of every kernel invocation are borrowed views of
/// contiguous storage, which is the whole point of the flat layout.
///
/// The store handle is an `Arc` because the index, the framework database
/// and this metric all share one window table; the metric only ever reads.
#[derive(Clone, Debug)]
pub struct WindowSliceMetric<E, D> {
    distance: D,
    windows: Arc<WindowStore<E>>,
}

impl<E: Element, D> WindowSliceMetric<E, D> {
    /// Wraps a sequence distance together with the window store its item
    /// ids resolve against.
    ///
    /// As with [`SequenceMetricAdapter`], the caller is responsible for only
    /// indexing with *metric* distances.
    pub fn new(distance: D, windows: Arc<WindowStore<E>>) -> Self {
        WindowSliceMetric { distance, windows }
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.distance
    }

    /// The shared window store item ids resolve against.
    pub fn windows(&self) -> &Arc<WindowStore<E>> {
        &self.windows
    }

    /// Replaces the window store item ids resolve against.
    ///
    /// The live-ingestion path appends sequences by building a grown store
    /// (same window length, the old window table as a prefix) and swapping it
    /// in here before inserting the new tail ids. The caller must uphold the
    /// prefix invariant: every id already stored in an index using this
    /// metric has to resolve to the same elements through the new store,
    /// otherwise the index's structure silently stops matching its items.
    pub fn set_windows(&mut self, windows: Arc<WindowStore<E>>) {
        self.windows = windows;
    }

    /// Resolves one stored item to its element slice.
    ///
    /// # Panics
    ///
    /// Panics if `id` does not address a window of the store — snapshot
    /// loading validates ids before any metric is consulted, and the build
    /// path only ever inserts ids it just created.
    fn slice(&self, id: WindowId) -> &[E] {
        self.windows
            .slice(id)
            .expect("index item ids address windows of the shared store")
    }
}

impl<E, D> Metric<WindowId> for WindowSliceMetric<E, D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn dist(&self, a: &WindowId, b: &WindowId) -> f64 {
        self.distance.distance(self.slice(*a), self.slice(*b))
    }

    fn dist_within(&self, a: &WindowId, b: &WindowId, tau: f64) -> Option<f64> {
        self.distance
            .distance_within(self.slice(*a), self.slice(*b), tau)
    }
}

impl<E, D> QueryMetric<[E], WindowId> for WindowSliceMetric<E, D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn query_dist_within(&self, query: &[E], item: &WindowId, tau: f64) -> Option<f64> {
        self.distance.distance_within(query, self.slice(*item), tau)
    }
}

/// A metric wrapper that counts every distance evaluation on a shared
/// [`CallCounter`] — used to measure the pruning ratios of Figures 8–11 —
/// and mirrors the DP cells the underlying kernels evaluate into a shared
/// [`CellCounter`], so the *depth* of each evaluation is accounted for
/// alongside its mere occurrence. A thresholded evaluation counts as exactly
/// one call whether or not it was pruned: pruning saves cells, never calls,
/// which is what keeps distance-call statistics bit-identical when the
/// threshold path is enabled.
#[derive(Clone, Debug)]
pub struct CountingMetric<M> {
    inner: M,
    counter: CallCounter,
    cells: CellCounter,
}

impl<M> CountingMetric<M> {
    /// Wraps `inner`, recording calls on `counter` (with a fresh cell
    /// counter; see [`Self::with_cell_counter`]).
    pub fn new(inner: M, counter: CallCounter) -> Self {
        CountingMetric {
            inner,
            counter,
            cells: CellCounter::new(),
        }
    }

    /// Records DP cells on the given shared counter instead of a fresh one.
    pub fn with_cell_counter(mut self, cells: CellCounter) -> Self {
        self.cells = cells;
        self
    }

    /// Redirects future evaluations onto the given counters. A read-only
    /// replica engine clones its index structure and then calls this so each
    /// replica accounts on private atomics instead of contending (and mixing
    /// its tallies) with the engine it was cloned from.
    pub fn set_counters(&mut self, counter: CallCounter, cells: CellCounter) {
        self.counter = counter;
        self.cells = cells;
    }

    /// The shared call counter.
    pub fn counter(&self) -> &CallCounter {
        &self.counter
    }

    /// The shared DP-cell counter.
    pub fn cell_counter(&self) -> &CellCounter {
        &self.cells
    }

    /// The wrapped metric.
    pub fn inner(&self) -> &M {
        &self.inner
    }

    /// Mutable access to the wrapped metric (the live-ingestion path uses
    /// this to swap a grown window store into a [`WindowSliceMetric`]).
    pub fn inner_mut(&mut self) -> &mut M {
        &mut self.inner
    }

    /// The single charging point every counted evaluation goes through: one
    /// call on the shared counter, plus the DP cells the evaluation filled
    /// (measured as a thread-local delta). The CI-gated counters rest on
    /// every evaluation surface — item–item, thresholded, query-probe —
    /// charging through this one helper, so they can never drift apart.
    fn charge<R>(&self, eval: impl FnOnce() -> R) -> R {
        self.counter.record();
        let before = ssr_distance::dp_cells_thread_total();
        let result = eval();
        self.cells
            .add(ssr_distance::dp_cells_thread_total() - before);
        result
    }
}

impl<T, M: Metric<T>> Metric<T> for CountingMetric<M> {
    fn dist(&self, a: &T, b: &T) -> f64 {
        self.charge(|| self.inner.dist(a, b))
    }

    fn dist_within(&self, a: &T, b: &T, tau: f64) -> Option<f64> {
        self.charge(|| self.inner.dist_within(a, b, tau))
    }
}

impl<Q: ?Sized, T, M: QueryMetric<Q, T>> QueryMetric<Q, T> for CountingMetric<M> {
    fn query_dist_within(&self, query: &Q, item: &T, tau: f64) -> Option<f64> {
        self.charge(|| self.inner.query_dist_within(query, item, tau))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn fn_metric_delegates_to_closure() {
        let m = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        assert_eq!(m.dist(&3.0, &7.5), 4.5);
    }

    #[test]
    fn sequence_adapter_bridges_to_sequence_distances() {
        let m = SequenceMetricAdapter::new(Levenshtein::new());
        assert_eq!(m.dist(&sym("KITTEN"), &sym("SITTING")), 3.0);
    }

    #[test]
    fn counting_metric_counts() {
        let counter = CallCounter::new();
        let m = CountingMetric::new(
            SequenceMetricAdapter::new(Levenshtein::new()),
            counter.clone(),
        );
        let a = sym("ACGT");
        let b = sym("AGGT");
        assert_eq!(m.dist(&a, &b), 1.0);
        assert_eq!(m.dist(&a, &a), 0.0);
        assert_eq!(counter.get(), 2);
    }

    #[test]
    fn window_slice_metric_resolves_ids_through_the_arena() {
        use ssr_sequence::{partition_windows_dataset, Sequence, SequenceDataset};

        let ds: SequenceDataset<Symbol> =
            vec![Sequence::new(sym("ACGTAGGT"))].into_iter().collect();
        let store = Arc::new(partition_windows_dataset(&ds, 4));
        let m = WindowSliceMetric::new(Levenshtein::new(), Arc::clone(&store));
        // Item–item distances resolve both ids to arena slices…
        assert_eq!(m.dist(&WindowId(0), &WindowId(1)), 1.0); // ACGT vs AGGT
        assert_eq!(m.dist_within(&WindowId(0), &WindowId(1), 0.5), None);
        // …and query probes pair a raw slice with a resolved item.
        let q = sym("ACGT");
        assert_eq!(m.query_dist(&q[..], &WindowId(0)), 0.0);
        assert_eq!(m.query_dist_within(&q[..], &WindowId(1), 1.0), Some(1.0));
        assert_eq!(m.query_dist_within(&q[..], &WindowId(1), 0.5), None);

        // A counting wrapper charges query probes like any other evaluation.
        let counter = CallCounter::new();
        let counted = CountingMetric::new(m, counter.clone());
        let _ = counted.query_dist_within(&q[..], &WindowId(0), 8.0);
        let _ = counted.query_dist(&q[..], &WindowId(1));
        let _ = counted.dist(&WindowId(0), &WindowId(1));
        assert_eq!(counter.get(), 3);
    }

    #[test]
    fn arc_and_reference_metrics_work() {
        let base = FnMetric(|a: &f64, b: &f64| (a - b).abs());
        let arc: Arc<FnMetric<_>> = Arc::new(base);
        assert_eq!(arc.dist(&1.0, &4.0), 3.0);
        let by_ref: &FnMetric<_> = &arc;
        assert_eq!(Metric::<f64>::dist(&by_ref, &1.0, &2.0), 1.0);
    }
}
