//! # ssr-index
//!
//! Metric index structures for range similarity queries, as used by step 4 of
//! the subsequence-retrieval framework (Zhu, Kollios, Athitsos — VLDB 2012):
//!
//! * [`ReferenceNet`] — the paper's contribution (Section 6 and Appendix A): a
//!   hierarchical, linear-space structure whose references at level `i` have
//!   radius `ǫ'·2^i`, where every node may have multiple parents (optionally
//!   capped at `nummax`), and whose range queries accept or prune whole
//!   reference lists and whole "derived" subtrees using the triangle
//!   inequality (Lemma 4).
//! * [`CoverTree`] — the tree baseline (Beygelzimer, Kakade, Langford): same
//!   levelled structure but exactly one parent per node.
//! * [`MvReferenceIndex`] — reference-based indexing with Maximum-Variance
//!   pivot selection (Venkateswaran et al.), the "MV-k" baseline of
//!   Figures 8–11: a `k × n` pivot table pruned with the triangle inequality.
//! * [`LinearScan`] — the naive baseline every figure normalises against.
//!
//! All indexes are generic over the item type `T` and a [`Metric`]; distance
//! evaluations can be counted by wrapping the metric in a [`CountingMetric`],
//! which is how the pruning ratios of Figures 8–11 are measured.
//!
//! Items are whatever the metric can compare — owned vectors in tests and
//! experiments, but the framework stores **id handles**: `WindowId`s that a
//! [`WindowSliceMetric`] resolves to borrowed slices of a shared element
//! arena, so the index owns one machine word per window instead of a cloned
//! element vector. Range queries accept an external probe representation via
//! [`QueryMetric`] (a raw `&[E]` query segment probing `WindowId` items) or,
//! equivalently, the `range_query_with` closure form on each structure.

pub mod cover_tree;
pub mod linear_scan;
pub mod metric;
pub mod mv_reference;
mod par;
pub mod reference_net;
pub mod traits;

pub use cover_tree::CoverTree;
pub use linear_scan::LinearScan;
pub use metric::{
    CountingMetric, FnMetric, Metric, QueryMetric, SequenceMetricAdapter, WindowSliceMetric,
};
pub use mv_reference::MvReferenceIndex;
pub use reference_net::{ReferenceNet, ReferenceNetConfig};
pub use traits::{ItemId, RangeIndex, SpaceStats};
