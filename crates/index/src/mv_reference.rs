//! Reference-based indexing with Maximum-Variance pivot selection
//! (Venkateswaran et al., VLDB 2006 / VLDB Journal 2008).
//!
//! This is the "MV-k" baseline of the paper's Figures 8–11. The index keeps a
//! set of `k` reference objects (pivots) and pre-computes the distance from
//! every stored item to every pivot — a `k × n` table, which is why the paper
//! stresses that its space overhead grows with `k` (MV-50 uses ten times the
//! space of MV-5). A range query first computes the `k` query–pivot distances,
//! then uses the triangle inequality per item:
//!
//! * `max_j |δ(q, r_j) − δ(x, r_j)| > ε`  ⇒ the item is pruned without a
//!   distance computation;
//! * `min_j (δ(q, r_j) + δ(x, r_j)) ≤ ε` ⇒ the item is accepted without a
//!   distance computation;
//! * otherwise the true distance is evaluated.
//!
//! Pivot selection follows the Maximum Variance heuristic: candidates are
//! scored by the variance of their distances to a deterministic sample of the
//! dataset and the `k` highest-variance candidates become the pivots. The
//! paper uses MV (rather than the more expensive Maximum Pruning variant)
//! because it needs no training queries; we follow suit.

use ssr_storage::{Decode, DecodeWith, Encode, StorageError};

use crate::metric::Metric;
use crate::par::fanout_map;
use crate::traits::{ItemId, RangeIndex, SpaceStats};

/// Reference-based index with Maximum-Variance pivots.
#[derive(Clone)]
pub struct MvReferenceIndex<T, M> {
    metric: M,
    num_references: usize,
    /// Worker threads used by [`Self::rebuild`] (1 = sequential).
    build_threads: usize,
    /// How many items to sample when scoring pivot candidates.
    selection_sample: usize,
    items: Vec<T>,
    /// Indices (into `items`) of the selected pivots.
    references: Vec<usize>,
    /// `table[i]` holds the distances from item `i` to every pivot.
    table: Vec<Vec<f64>>,
    /// Items inserted since the last (re)build that are not yet in the table.
    dirty: bool,
}

impl<T, M: Metric<T>> MvReferenceIndex<T, M> {
    /// Creates an empty index that will use `num_references` pivots.
    ///
    /// # Panics
    ///
    /// Panics if `num_references == 0`.
    pub fn new(metric: M, num_references: usize) -> Self {
        assert!(num_references >= 1, "at least one reference is required");
        MvReferenceIndex {
            metric,
            num_references,
            build_threads: 1,
            selection_sample: 64,
            items: Vec::new(),
            references: Vec::new(),
            table: Vec::new(),
            dirty: false,
        }
    }

    /// Sets the number of worker threads [`Self::rebuild`] may use. Pivot
    /// scoring and the pivot-distance table are embarrassingly parallel per
    /// item, and every distance is computed exactly once in both paths, so
    /// the resulting index — and its distance-call count — is bit-identical
    /// at every thread count.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// Number of pivots this index uses.
    pub fn num_references(&self) -> usize {
        self.num_references
    }

    /// The metric in use.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Mutable access to the metric (used by live ingestion to swap in a
    /// grown window store before inserting the new tail items).
    pub fn metric_mut(&mut self) -> &mut M {
        &mut self.metric
    }

    /// Whether items were inserted ad hoc since the last [`Self::rebuild`]
    /// (a dirty index re-pivots lazily: queries and snapshots demand a
    /// rebuild first, and the framework's mutation path performs it once per
    /// mutation batch rather than per insert).
    pub fn is_dirty(&self) -> bool {
        self.dirty
    }
}

impl<T: Send + Sync, M: Metric<T>> MvReferenceIndex<T, M> {
    /// Bulk-inserts items and rebuilds the pivot table once at the end.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, items: I) {
        self.items.extend(items);
        self.dirty = true;
        self.rebuild();
    }

    /// Selects pivots and recomputes the distance table.
    ///
    /// Called automatically by queries when items were inserted one by one;
    /// exposed so benchmarks can separate build cost from query cost.
    pub fn rebuild(&mut self) {
        let n = self.items.len();
        self.references.clear();
        self.table = vec![Vec::new(); n];
        self.dirty = false;
        if n == 0 {
            return;
        }
        let k = self.num_references.min(n);

        // Deterministic sample of items used to score candidates.
        let sample_size = self.selection_sample.min(n);
        let sample_stride = (n / sample_size).max(1);
        let sample: Vec<usize> = (0..n).step_by(sample_stride).take(sample_size).collect();

        // Candidate pivots: a deterministic spread across the dataset, at most
        // 4k candidates to keep selection cost bounded.
        let cand_count = (4 * k).min(n);
        let cand_stride = (n / cand_count).max(1);
        let candidates: Vec<usize> = (0..n).step_by(cand_stride).take(cand_count).collect();

        let items = &self.items;
        let metric = &self.metric;
        let mut scored: Vec<(usize, f64)> =
            fanout_map(self.build_threads, candidates.len(), |ci| {
                let c = candidates[ci];
                let dists: Vec<f64> = sample
                    .iter()
                    .map(|&s| metric.dist(&items[c], &items[s]))
                    .collect();
                let mean = dists.iter().sum::<f64>() / dists.len() as f64;
                let var =
                    dists.iter().map(|d| (d - mean) * (d - mean)).sum::<f64>() / dists.len() as f64;
                (c, var)
            });
        scored.sort_by(|a, b| b.1.partial_cmp(&a.1).unwrap_or(std::cmp::Ordering::Equal));
        self.references = scored.into_iter().take(k).map(|(c, _)| c).collect();

        // Pivot table: distance from every item to every pivot.
        let references = &self.references;
        self.table = fanout_map(self.build_threads, n, |i| {
            references
                .iter()
                .map(|&r| metric.dist(&items[i], &items[r]))
                .collect::<Vec<f64>>()
        });
    }

    /// Range query that reports how many true distance computations it used
    /// (pivot distances plus verified items), for the pruning-ratio figures.
    pub fn range_query_counted(&self, query: &T, radius: f64) -> (Vec<ItemId>, u64) {
        self.range_query_counted_with(
            |item, tau| self.metric.dist_within(query, item, tau),
            radius,
        )
    }
}

impl<T, M> MvReferenceIndex<T, M> {
    fn ensure_built(&self) {
        assert!(
            !self.dirty,
            "MvReferenceIndex::rebuild must be called after ad-hoc inserts before querying"
        );
    }

    /// Stored items in id order (the id of `items()[i]` is `ItemId(i)`).
    /// Snapshot loading uses this to validate decoded item handles before
    /// any of them is resolved.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Probe-based counted range query: `probe(item, tau)` evaluates the
    /// query — whatever its representation — against one stored item,
    /// returning `Some(d)` with the exact distance whenever `d ≤ tau`.
    /// Pivot distances are evaluated with an infinite threshold (they feed
    /// both the lower *and* upper triangle-inequality bounds, so they must
    /// be exact); threshold-aware kernels return the exact distance under an
    /// infinite threshold, and a counting probe charges one call either way,
    /// so the call counts match [`Self::range_query_counted`] exactly.
    pub fn range_query_counted_with<F>(&self, mut probe: F, radius: f64) -> (Vec<ItemId>, u64)
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        self.ensure_built();
        if self.items.is_empty() {
            return (Vec::new(), 0);
        }
        let mut calls = 0u64;
        let query_to_ref: Vec<f64> = self
            .references
            .iter()
            .map(|&r| {
                calls += 1;
                probe(&self.items[r], f64::INFINITY).expect("an infinite threshold never rejects")
            })
            .collect();
        let mut result = Vec::new();
        for (i, row) in self.table.iter().enumerate() {
            let mut lower = 0.0f64;
            let mut upper = f64::INFINITY;
            for (dq, dx) in query_to_ref.iter().zip(row.iter()) {
                lower = lower.max((dq - dx).abs());
                upper = upper.min(dq + dx);
            }
            if lower > radius {
                continue;
            }
            if upper <= radius {
                result.push(ItemId(i));
                continue;
            }
            // Verification only needs to know whether d ≤ radius, so the
            // query radius itself is the kernel's threshold; the pivot
            // bounds above already absorbed the triangle-inequality slack.
            calls += 1;
            if probe(&self.items[i], radius).is_some() {
                result.push(ItemId(i));
            }
        }
        (result, calls)
    }

    /// Probe-based range query (ids only); see
    /// [`Self::range_query_counted_with`].
    pub fn range_query_with<F>(&self, probe: F, radius: f64) -> Vec<ItemId>
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        self.range_query_counted_with(probe, radius).0
    }
}

impl<T: Send + Sync, M: Metric<T>> RangeIndex<T> for MvReferenceIndex<T, M> {
    fn insert(&mut self, item: T) -> ItemId {
        let id = ItemId(self.items.len());
        self.items.push(item);
        self.dirty = true;
        id
    }

    fn len(&self) -> usize {
        self.items.len()
    }

    fn item(&self, id: ItemId) -> Option<&T> {
        self.items.get(id.0)
    }

    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId> {
        self.range_query_counted(query, radius).0
    }

    fn space_stats(&self) -> SpaceStats {
        let entries = self.table.iter().map(Vec::len).sum();
        SpaceStats {
            items: self.items.len(),
            entries,
            levels: 1,
            avg_parents: self.references.len() as f64,
            estimated_bytes: entries * std::mem::size_of::<f64>()
                + self.references.len() * std::mem::size_of::<usize>(),
            serialized_bytes: self.structure_encoded_len(),
            item_bytes: self.items.len() * std::mem::size_of::<T>(),
            arena_bytes: 0,
        }
    }
}

// -- snapshot codec ---------------------------------------------------------

impl<T, M> MvReferenceIndex<T, M> {
    /// Encodes the pivot bookkeeping — everything except the items and the
    /// metric (which is runtime context reattached on decode).
    fn encode_structure(&self, w: &mut ssr_storage::Writer) {
        w.put_usize(self.num_references);
        w.put_usize(self.selection_sample);
        self.references.encode(w);
        self.table.encode(w);
    }

    /// Exact byte size of [`Self::encode_structure`]'s output.
    fn structure_encoded_len(&self) -> usize {
        ssr_storage::Writer::measure(|w| self.encode_structure(w))
    }

    /// Stable backend name for telemetry labels.
    pub fn backend_name(&self) -> &'static str {
        "mv_reference"
    }
}

impl<T: Encode, M> Encode for MvReferenceIndex<T, M> {
    /// # Panics
    ///
    /// Panics if items were inserted ad hoc without a [`Self::rebuild`]:
    /// snapshotting a stale pivot table is a programming error.
    fn encode(&self, w: &mut ssr_storage::Writer) {
        assert!(
            !self.dirty,
            "MvReferenceIndex::rebuild must be called before snapshotting"
        );
        self.items.encode(w);
        self.encode_structure(w);
    }
}

impl<T: Decode + Send + Sync, M: Metric<T>> DecodeWith<M> for MvReferenceIndex<T, M> {
    fn decode_with(r: &mut ssr_storage::Reader<'_>, metric: M) -> Result<Self, StorageError> {
        let items = Vec::<T>::decode(r)?;
        let num_references = r.take_usize()?;
        if num_references == 0 {
            return Err(StorageError::Malformed(
                "MV index with zero references".into(),
            ));
        }
        let selection_sample = r.take_usize()?;
        let references = Vec::<usize>::decode(r)?;
        let table = Vec::<Vec<f64>>::decode(r)?;
        if references.iter().any(|&r| r >= items.len()) {
            return Err(StorageError::Malformed(
                "MV reference index out of range".into(),
            ));
        }
        if table.len() != items.len() {
            return Err(StorageError::Malformed(format!(
                "MV pivot table has {} rows for {} items",
                table.len(),
                items.len()
            )));
        }
        if table.iter().any(|row| row.len() != references.len()) {
            return Err(StorageError::Malformed(
                "MV pivot table row width disagrees with reference count".into(),
            ));
        }
        Ok(MvReferenceIndex {
            metric,
            num_references,
            build_threads: 1,
            selection_sample,
            items,
            references,
            table,
            dirty: false,
        })
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::metric::FnMetric;

    fn scalar_metric() -> FnMetric<fn(&f64, &f64) -> f64> {
        FnMetric(|a: &f64, b: &f64| (a - b).abs())
    }

    fn build(values: &[f64], k: usize) -> MvReferenceIndex<f64, FnMetric<fn(&f64, &f64) -> f64>> {
        let mut idx = MvReferenceIndex::new(scalar_metric(), k);
        idx.extend(values.iter().copied());
        idx
    }

    #[test]
    fn range_queries_match_brute_force() {
        let values: Vec<f64> = (0..250).map(|i| ((i * 41) % 233) as f64 * 0.4).collect();
        let idx = build(&values, 5);
        for &(q, r) in &[(12.0, 3.0), (50.0, 0.2), (0.0, 200.0), (93.0, 9.0)] {
            let mut got: Vec<usize> = idx.range_query(&q, r).into_iter().map(|i| i.0).collect();
            got.sort_unstable();
            let expected: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|(_, &v)| (v - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "q={q} r={r}");
        }
    }

    #[test]
    fn empty_index_is_fine() {
        let idx = build(&[], 5);
        assert!(idx.range_query(&1.0, 10.0).is_empty());
        assert_eq!(idx.space_stats().entries, 0);
    }

    #[test]
    fn space_grows_linearly_with_reference_count() {
        let values: Vec<f64> = (0..100).map(|i| i as f64).collect();
        let small = build(&values, 5).space_stats();
        let large = build(&values, 50).space_stats();
        assert_eq!(small.entries, 100 * 5);
        assert_eq!(large.entries, 100 * 50);
        assert_eq!(large.entries, 10 * small.entries);
        assert!(large.estimated_bytes > small.estimated_bytes);
    }

    #[test]
    fn counted_queries_prune_relative_to_linear_scan() {
        let values: Vec<f64> = (0..2000).map(|i| ((i * 37) % 1999) as f64 * 0.1).collect();
        let idx = build(&values, 10);
        let (result, calls) = idx.range_query_counted(&30.0, 1.0);
        assert!(!result.is_empty());
        assert!(
            calls < values.len() as u64 / 2,
            "expected pruning, used {calls} distances"
        );
    }

    #[test]
    fn more_references_prune_at_least_as_well_on_small_radii() {
        let values: Vec<f64> = (0..1000).map(|i| ((i * 61) % 997) as f64 * 0.2).collect();
        let few = build(&values, 2);
        let many = build(&values, 20);
        let (_, calls_few) = few.range_query_counted(&55.0, 0.5);
        let (_, calls_many) = many.range_query_counted(&55.0, 0.5);
        // More pivots cost more up-front query-pivot distances but prune more
        // candidates; on a small radius the total should not be dramatically
        // worse, and the answer sets must agree.
        assert_eq!(few.range_query(&55.0, 0.5), many.range_query(&55.0, 0.5));
        assert!(calls_many <= calls_few + 18, "{calls_many} vs {calls_few}");
    }

    #[test]
    #[should_panic(expected = "rebuild must be called")]
    fn querying_after_adhoc_insert_requires_rebuild() {
        let mut idx = build(&[1.0, 2.0], 1);
        idx.insert(3.0);
        let _ = idx.range_query(&1.0, 1.0);
    }

    #[test]
    #[should_panic(expected = "at least one reference")]
    fn zero_references_rejected() {
        let _ = MvReferenceIndex::new(scalar_metric(), 0);
    }
}
