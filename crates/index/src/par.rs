//! Minimal scoped-thread fan-out used by index construction.
//!
//! The workspace has no crates.io access (no `rayon`), so deterministic
//! build-time parallelism is implemented directly on [`std::thread::scope`]:
//! [`fanout_map`] evaluates a pure function over `0..count` with dynamic
//! scheduling and returns the results in index order. With `threads <= 1`
//! the evaluation runs inline on the caller, so parallel and sequential
//! builds produce bit-identical structures.
//!
//! This deliberately mirrors `ssr-core`'s public `parallel_map` (the
//! query-batch worker pool): `ssr-core` depends on this crate, so sharing
//! one primitive would force the index crate to export a general-purpose
//! parallelism API; a small private copy keeps the layering honest. If you
//! change the scheduling or panic behaviour here, mirror it in
//! `crates/core/src/parallel.rs`.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Applies `f` to every index in `0..count` on up to `threads` scoped
/// workers, returning results in index order.
pub(crate) fn fanout_map<R, F>(threads: usize, count: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = threads.min(count).max(1);
    if threads <= 1 {
        return (0..count).map(f).collect();
    }
    let cursor = AtomicUsize::new(0);
    let collected: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(count));
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = cursor.fetch_add(1, Ordering::Relaxed);
                    if i >= count {
                        break;
                    }
                    local.push((i, f(i)));
                }
                collected
                    .lock()
                    .expect("index build worker panicked")
                    .extend(local);
            });
        }
    });
    let mut results = collected.into_inner().expect("index build worker panicked");
    results.sort_unstable_by_key(|&(i, _)| i);
    results.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fanout_map_matches_sequential_evaluation() {
        let expected: Vec<usize> = (0..100).map(|i| i * 3 + 1).collect();
        for threads in [1, 2, 4, 16] {
            assert_eq!(
                fanout_map(threads, 100, |i| i * 3 + 1),
                expected,
                "threads={threads}"
            );
        }
        assert!(fanout_map::<usize, _>(4, 0, |i| i).is_empty());
    }
}
