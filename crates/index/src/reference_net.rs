//! The Reference Net (Section 6 and Appendix A of the paper).
//!
//! A Reference Net is a hierarchy of references over the indexed items:
//!
//! * level `i` is associated with the radius `ǫ_i = ǫ'·2^i`;
//! * every item appears at exactly one (its highest) level;
//! * a reference at level `i` keeps a *list* of references from the level
//!   below within distance `ǫ_i` (the **inclusive** property: every reference
//!   has at least one parent);
//! * references stored at the same level are far apart (the **exclusive**
//!   property), which keeps the hierarchy shallow;
//! * unlike a cover tree, a reference may appear in the lists of **multiple**
//!   parents (optionally capped at `nummax`), which lets range queries accept
//!   whole lists from whichever parent happens to be close to the query
//!   (Figure 2 of the paper).
//!
//! Range queries follow Algorithm 3: references are visited level by level
//! from the top; for each undecided reference one distance is computed and the
//! triangle inequality is used to accept or prune either its direct list
//! (radius `ǫ'·2^i`) or everything derived from it (radius `ǫ'·2^{i+1}`,
//! Lemma 4). The number of distance evaluations is therefore the number of
//! references that could not be bulk-decided — the quantity the paper's
//! Figures 8–11 report as a fraction of the naive linear scan.

use std::collections::BTreeMap;

use ssr_storage::{Decode, DecodeWith, Encode, StorageError};

use crate::metric::Metric;
use crate::traits::{ItemId, RangeIndex, SpaceStats};

/// Configuration of a [`ReferenceNet`].
#[derive(Clone, Copy, Debug)]
pub struct ReferenceNetConfig {
    /// The base radius `ǫ'`; level `i` references cover radius `ǫ'·2^i`.
    /// The paper uses `ǫ' = 1` for all experiments.
    pub epsilon_prime: f64,
    /// Maximum number of reference lists a single item may appear in
    /// (`nummax`). `None` leaves the number of parents unconstrained.
    pub max_parents: Option<usize>,
}

impl Default for ReferenceNetConfig {
    fn default() -> Self {
        ReferenceNetConfig {
            epsilon_prime: 1.0,
            max_parents: None,
        }
    }
}

impl ReferenceNetConfig {
    /// Config with the given base radius and unconstrained parents.
    pub fn with_epsilon_prime(epsilon_prime: f64) -> Self {
        assert!(
            epsilon_prime > 0.0 && epsilon_prime.is_finite(),
            "epsilon_prime must be positive and finite"
        );
        ReferenceNetConfig {
            epsilon_prime,
            ..Default::default()
        }
    }

    /// Caps the number of parents per item (`nummax`), as in the paper's
    /// "DFD-5" configuration.
    pub fn with_max_parents(mut self, max_parents: usize) -> Self {
        assert!(max_parents >= 1, "max_parents must be at least 1");
        self.max_parents = Some(max_parents);
        self
    }
}

#[derive(Clone, Debug)]
struct Node {
    level: i32,
    parents: Vec<usize>,
    children: Vec<usize>,
    alive: bool,
}

/// The Reference Net metric index.
#[derive(Clone)]
pub struct ReferenceNet<T, M> {
    config: ReferenceNetConfig,
    metric: M,
    items: Vec<T>,
    nodes: Vec<Node>,
    by_level: BTreeMap<i32, Vec<usize>>,
    root: Option<usize>,
    live_count: usize,
    build_threads: usize,
}

/// Minimum number of pending child-distance evaluations in one [`gather`]
/// step before the work is fanned out to scoped threads: below this, thread
/// spawn overhead exceeds the distance work for typical window metrics.
///
/// [`gather`]: ReferenceNet::gather
const PARALLEL_GATHER_THRESHOLD: usize = 64;

impl<T: Send + Sync, M: Metric<T>> ReferenceNet<T, M> {
    /// Creates an empty Reference Net with the default configuration
    /// (`ǫ' = 1`, unconstrained parents).
    pub fn new(metric: M) -> Self {
        Self::with_config(metric, ReferenceNetConfig::default())
    }

    /// Creates an empty Reference Net with an explicit configuration.
    pub fn with_config(metric: M, config: ReferenceNetConfig) -> Self {
        assert!(
            config.epsilon_prime > 0.0 && config.epsilon_prime.is_finite(),
            "epsilon_prime must be positive and finite"
        );
        if let Some(p) = config.max_parents {
            assert!(p >= 1, "max_parents must be at least 1");
        }
        ReferenceNet {
            config,
            metric,
            items: Vec::new(),
            nodes: Vec::new(),
            by_level: BTreeMap::new(),
            root: None,
            live_count: 0,
            build_threads: 1,
        }
    }

    /// Sets the number of worker threads insertions may use to evaluate
    /// child distances during the top-down descent (see [`Self::extend`]).
    ///
    /// The descent itself stays sequential — the net's shape depends on
    /// insertion order by design — but each level's candidate-children
    /// distances are pure functions of the items, so they can be evaluated
    /// concurrently and replayed into the exact sequential decision
    /// procedure: the resulting structure is bit-identical at every thread
    /// count. (The *number* of metric evaluations can differ slightly: the
    /// parallel path evaluates each distinct child once, where the
    /// sequential path may re-evaluate a child rejected under one parent and
    /// reached again under another.) Worthwhile for expensive metrics or
    /// wide nets; small fan-outs stay sequential regardless.
    pub fn with_build_threads(mut self, threads: usize) -> Self {
        self.build_threads = threads.max(1);
        self
    }

    /// The configuration this net was built with.
    pub fn config(&self) -> ReferenceNetConfig {
        self.config
    }

    /// The metric used by the net.
    pub fn metric(&self) -> &M {
        &self.metric
    }

    /// Mutable access to the metric (used by live ingestion to swap in a
    /// grown window store before inserting the new tail items).
    pub fn metric_mut(&mut self) -> &mut M {
        &mut self.metric
    }

    /// Bulk-inserts a collection of items.
    pub fn extend<I: IntoIterator<Item = T>>(&mut self, items: I) {
        for item in items {
            self.insert(item);
        }
    }

    /// Deletes the item with the given id (Algorithm 2 of the Appendix).
    ///
    /// The item's node is removed from its parents' lists; any children left
    /// without a parent are re-attached — preferably to the deleted node's
    /// former parents, otherwise to the closest eligible reference found by a
    /// fresh descent, and as a last resort they are promoted towards the root.
    /// Returns `false` if the id is unknown or the item was already deleted.
    pub fn delete(&mut self, id: ItemId) -> bool {
        let idx = id.0;
        if idx >= self.nodes.len() || !self.nodes[idx].alive {
            return false;
        }
        self.nodes[idx].alive = false;
        self.live_count -= 1;
        self.remove_from_level_map(idx);

        let old_parents = std::mem::take(&mut self.nodes[idx].parents);
        let children = std::mem::take(&mut self.nodes[idx].children);
        for &p in &old_parents {
            self.nodes[p].children.retain(|&c| c != idx);
        }
        for &c in &children {
            self.nodes[c].parents.retain(|&p| p != idx);
        }

        if self.root == Some(idx) {
            if self.live_count == 0 {
                self.root = None;
                return true;
            }
            // Promote the highest-level former child to be the new root.
            let new_root = children
                .iter()
                .copied()
                .filter(|&c| self.nodes[c].alive)
                .max_by_key(|&c| self.nodes[c].level)
                .expect("a live root always has at least one live child");
            let old_level = self.nodes[idx].level;
            // The new root keeps no parents.
            let remaining_parents = std::mem::take(&mut self.nodes[new_root].parents);
            for p in remaining_parents {
                self.nodes[p].children.retain(|&c| c != new_root);
            }
            self.set_level(new_root, old_level.max(self.nodes[new_root].level));
            self.root = Some(new_root);
        }

        // Re-attach orphans.
        let orphans: Vec<usize> = children
            .into_iter()
            .filter(|&c| self.nodes[c].alive && self.nodes[c].parents.is_empty())
            .filter(|&c| self.root != Some(c))
            .collect();
        for orphan in orphans {
            self.reattach(orphan, &old_parents);
        }
        true
    }

    /// Structural invariants, used by tests and debug assertions:
    ///
    /// 1. every live non-root node has at least one parent;
    /// 2. every parent link connects a strictly higher level to a lower level
    ///    and spans a distance of at most `ǫ'·2^{child_level + 1}`;
    /// 3. the number of parents never exceeds `nummax` (when configured);
    /// 4. every live node is reachable from the root.
    pub fn check_invariants(&self) -> Result<(), String> {
        let root = match self.root {
            Some(r) => r,
            None => {
                if self.live_count == 0 {
                    return Ok(());
                }
                return Err("live items but no root".to_string());
            }
        };
        let cap = self.config.max_parents.unwrap_or(usize::MAX);
        for (i, node) in self.nodes.iter().enumerate() {
            if !node.alive {
                continue;
            }
            if i != root && node.parents.is_empty() {
                return Err(format!("node {i} has no parent"));
            }
            if node.parents.len() > cap {
                return Err(format!(
                    "node {i} has {} parents, cap is {cap}",
                    node.parents.len()
                ));
            }
            for &p in &node.parents {
                if !self.nodes[p].alive {
                    return Err(format!("node {i} has dead parent {p}"));
                }
                if self.nodes[p].level <= node.level {
                    return Err(format!(
                        "parent {p} (level {}) not above child {i} (level {})",
                        self.nodes[p].level, node.level
                    ));
                }
                let d = self.metric.dist(&self.items[p], &self.items[i]);
                let bound = self.radius(node.level + 1);
                if d > bound + 1e-9 {
                    return Err(format!(
                        "edge {p}->{i} spans {d}, exceeding bound {bound} for child level {}",
                        node.level
                    ));
                }
                if !self.nodes[p].children.contains(&i) {
                    return Err(format!("parent {p} does not list child {i}"));
                }
            }
        }
        // Reachability from the root.
        let mut reached = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        reached[root] = true;
        while let Some(n) = stack.pop() {
            for &c in &self.nodes[n].children {
                if !reached[c] {
                    reached[c] = true;
                    stack.push(c);
                }
            }
        }
        for (i, node) in self.nodes.iter().enumerate() {
            if node.alive && !reached[i] {
                return Err(format!("node {i} is not reachable from the root"));
            }
        }
        Ok(())
    }

    /// The number of hierarchy levels currently in use.
    pub fn level_count(&self) -> usize {
        self.by_level.len()
    }

    /// Average number of parents (reference lists containing it) per live
    /// non-root item.
    pub fn avg_parents(&self) -> f64 {
        let live_non_root = self.live_count.saturating_sub(1);
        if live_non_root == 0 {
            return 0.0;
        }
        let edges: usize = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.parents.len())
            .sum();
        edges as f64 / live_non_root as f64
    }

    // -- internal helpers ---------------------------------------------------

    fn set_level(&mut self, idx: usize, level: i32) {
        self.remove_from_level_map(idx);
        self.nodes[idx].level = level;
        self.by_level.entry(level).or_default().push(idx);
    }

    fn remove_from_level_map(&mut self, idx: usize) {
        let level = self.nodes[idx].level;
        if let Some(ids) = self.by_level.get_mut(&level) {
            ids.retain(|&n| n != idx);
            if ids.is_empty() {
                self.by_level.remove(&level);
            }
        }
    }

    /// Finds the candidate parents for placing `item` at some level: the
    /// members of level `target_level + 1` (or above) within
    /// `ǫ'·2^{target_level + 1}` that a top-down descent discovers.
    fn find_parent_candidates(&self, item: &T, target_level: i32) -> Vec<(usize, f64)> {
        let root = match self.root {
            Some(r) => r,
            None => return Vec::new(),
        };
        let d_root = self.metric.dist(item, &self.items[root]);
        let mut level = self.nodes[root].level;
        let mut cands = vec![(root, d_root)];
        while level > target_level + 1 {
            let next = self.gather(item, level - 1, &cands);
            if next.is_empty() {
                break;
            }
            cands = next;
            level -= 1;
        }
        let bound = self.radius(target_level + 1);
        cands
            .into_iter()
            .filter(|&(n, d)| self.nodes[n].level > target_level && d <= bound)
            .collect()
    }

    /// Members of level `level` (i.e. nodes whose own level is `>= level`)
    /// within `ǫ'·2^level` of `item`, discovered from the previous candidate
    /// set and its children.
    ///
    /// When [`Self::with_build_threads`] enabled parallelism and the step has
    /// enough pending children, their distances are evaluated concurrently
    /// up front; the decision loop below then replays with the precomputed
    /// values and produces the exact sequential result.
    fn gather(&self, item: &T, level: i32, cands: &[(usize, f64)]) -> Vec<(usize, f64)> {
        let radius = self.radius(level);
        let precomputed = self.precompute_child_distances(item, level, cands);
        let mut seen: Vec<usize> = Vec::new();
        let mut next: Vec<(usize, f64)> = Vec::new();
        for &(n, d) in cands {
            if d <= radius && !seen.contains(&n) {
                seen.push(n);
                next.push((n, d));
            }
            for &c in &self.nodes[n].children {
                if !self.nodes[c].alive || self.nodes[c].level < level || seen.contains(&c) {
                    continue;
                }
                let dc = match precomputed.as_ref().and_then(|p| {
                    p.binary_search_by_key(&c, |&(id, _)| id)
                        .ok()
                        .map(|i| p[i].1)
                }) {
                    Some(dc) => dc,
                    None => self.metric.dist(item, &self.items[c]),
                };
                if dc <= radius {
                    seen.push(c);
                    next.push((c, dc));
                }
            }
        }
        next
    }

    /// Evaluates the distances of all candidate children eligible at `level`
    /// on the build worker pool, returning `None` when the fan-out is too
    /// small to pay for thread spawns (or parallelism is disabled). The
    /// result is sorted by node id for binary-search lookup.
    fn precompute_child_distances(
        &self,
        item: &T,
        level: i32,
        cands: &[(usize, f64)],
    ) -> Option<Vec<(usize, f64)>> {
        if self.build_threads <= 1 {
            return None;
        }
        // Bitmap dedup: child lists overlap between parents, and a linear
        // `contains` scan would be quadratic in exactly the wide fan-outs
        // this path exists for.
        let mut queued = vec![false; self.nodes.len()];
        let mut pending: Vec<usize> = Vec::new();
        for &(n, _) in cands {
            for &c in &self.nodes[n].children {
                if self.nodes[c].alive && self.nodes[c].level >= level && !queued[c] {
                    queued[c] = true;
                    pending.push(c);
                }
            }
        }
        if pending.len() < PARALLEL_GATHER_THRESHOLD {
            return None;
        }
        let mut distances = crate::par::fanout_map(self.build_threads, pending.len(), |i| {
            (pending[i], self.metric.dist(item, &self.items[pending[i]]))
        });
        distances.sort_unstable_by_key(|&(id, _)| id);
        Some(distances)
    }

    /// Attaches node `idx` (already levelled) to up to `nummax` of the given
    /// eligible parents, nearest first.
    fn attach(&mut self, idx: usize, mut eligible: Vec<(usize, f64)>) {
        eligible.sort_by(|a, b| a.1.partial_cmp(&b.1).unwrap_or(std::cmp::Ordering::Equal));
        eligible.dedup_by_key(|e| e.0);
        let cap = self.config.max_parents.unwrap_or(usize::MAX).max(1);
        for (p, _) in eligible.into_iter().take(cap) {
            if !self.nodes[idx].parents.contains(&p) {
                self.nodes[idx].parents.push(p);
                self.nodes[p].children.push(idx);
            }
        }
    }

    /// Places a freshly inserted node at `level` under the given candidates.
    fn place(&mut self, idx: usize, level: i32, parent_cands: &[(usize, f64)]) {
        self.set_level(idx, level);
        let bound = self.radius(level + 1);
        let eligible: Vec<(usize, f64)> = parent_cands
            .iter()
            .copied()
            .filter(|&(p, d)| self.nodes[p].alive && self.nodes[p].level > level && d <= bound)
            .collect();
        self.attach(idx, eligible);
        debug_assert!(
            !self.nodes[idx].parents.is_empty(),
            "placed node {idx} at level {level} without a parent"
        );
    }

    /// Re-attaches an orphaned node after a deletion.
    fn reattach(&mut self, orphan: usize, preferred: &[usize]) {
        let level = self.nodes[orphan].level;
        let bound = self.radius(level + 1);
        // 1. Try the deleted node's former parents (the paper's rule).
        let mut eligible: Vec<(usize, f64)> = preferred
            .iter()
            .copied()
            .filter(|&p| self.nodes[p].alive && self.nodes[p].level > level)
            .map(|p| (p, self.metric.dist(&self.items[p], &self.items[orphan])))
            .filter(|&(_, d)| d <= bound)
            .collect();
        // 2. Otherwise search the net for eligible references.
        if eligible.is_empty() {
            eligible = self
                .find_parent_candidates(&self.items[orphan], level)
                .into_iter()
                .filter(|&(p, _)| p != orphan)
                .collect();
        }
        if !eligible.is_empty() {
            self.attach(orphan, eligible);
            return;
        }
        // 3. Last resort: promote the orphan until the root can cover it.
        let root = self.root.expect("reattach requires a root");
        let d_root = self.metric.dist(&self.items[root], &self.items[orphan]);
        let mut new_level = level;
        while self.radius(new_level + 1) < d_root {
            new_level += 1;
        }
        if self.nodes[root].level <= new_level {
            let root_level = new_level + 1;
            self.set_level(root, root_level);
        }
        self.set_level(orphan, new_level);
        self.attach(orphan, vec![(root, d_root)]);
    }
}

impl<T, M> ReferenceNet<T, M> {
    /// Radius `ǫ'·2^level` associated with a level.
    fn radius(&self, level: i32) -> f64 {
        self.config.epsilon_prime * f64::powi(2.0, level)
    }

    fn mark_descendants(&self, start: usize, value: bool, decided: &mut [Option<bool>]) {
        let mut stack: Vec<usize> = self.nodes[start].children.clone();
        while let Some(n) = stack.pop() {
            if decided[n].is_none() {
                decided[n] = Some(value);
            }
            // Descend regardless of the node's own decision state: some of its
            // descendants may still be undecided through this path.
            stack.extend(self.nodes[n].children.iter().copied());
        }
    }

    /// Stored items in id order, dead nodes included (the id of `items()[i]`
    /// is `ItemId(i)`). Snapshot loading uses this to validate decoded item
    /// handles before any of them is resolved.
    pub fn items(&self) -> &[T] {
        &self.items
    }

    /// Probe-based range query (Algorithm 3): `probe(item, tau)` evaluates
    /// the query — whatever its representation — against one stored item,
    /// returning `Some(d)` with the exact distance whenever `d ≤ tau` and
    /// `None` otherwise. The visit order, the thresholds passed to the probe
    /// and the accept/prune decisions are exactly those of
    /// [`RangeIndex::range_query`], which is the `probe = metric` special
    /// case; the framework passes a probe that resolves id-addressed items
    /// against its shared element arena and counts the evaluation.
    pub fn range_query_with<F>(&self, mut probe: F, radius: f64) -> Vec<ItemId>
    where
        F: FnMut(&T, f64) -> Option<f64>,
    {
        if self.root.is_none() {
            return Vec::new();
        }
        let mut decided: Vec<Option<bool>> = vec![None; self.nodes.len()];
        // Visit references level by level, from the top down (Algorithm 3).
        for (&level, ids) in self.by_level.iter().rev() {
            let r_list = self.radius(level);
            let r_sub = self.radius(level + 1);
            // Per Lemma 4, a reference farther than radius + r_sub excludes
            // all its derived references, so no decision below needs the
            // exact distance beyond that threshold — pass it to the probe
            // and let a threshold-aware kernel abandon early.
            let tau = radius + r_sub;
            for &n in ids {
                if !self.nodes[n].alive || decided[n].is_some() {
                    continue;
                }
                match probe(&self.items[n], tau) {
                    Some(d) => {
                        decided[n] = Some(d <= radius);
                        if d + r_sub <= radius {
                            self.mark_descendants(n, true, &mut decided);
                        } else if d + r_list <= radius {
                            for &c in &self.nodes[n].children {
                                if decided[c].is_none() {
                                    decided[c] = Some(true);
                                }
                            }
                        }
                        if d - r_sub > radius {
                            self.mark_descendants(n, false, &mut decided);
                        } else if d - r_list > radius {
                            for &c in &self.nodes[n].children {
                                if decided[c].is_none() {
                                    decided[c] = Some(false);
                                }
                            }
                        }
                    }
                    None => {
                        // d > radius + r_sub (Lemma 4): prune the reference
                        // and everything derived from it.
                        decided[n] = Some(false);
                        self.mark_descendants(n, false, &mut decided);
                    }
                }
            }
        }
        decided
            .iter()
            .enumerate()
            .filter(|&(i, d)| self.nodes[i].alive && *d == Some(true))
            .map(|(i, _)| ItemId(i))
            .collect()
    }
}

impl<T: Send + Sync, M: Metric<T>> RangeIndex<T> for ReferenceNet<T, M> {
    fn insert(&mut self, item: T) -> ItemId {
        let idx = self.items.len();
        self.items.push(item);
        self.nodes.push(Node {
            level: 0,
            parents: Vec::new(),
            children: Vec::new(),
            alive: true,
        });
        self.live_count += 1;

        let root = match self.root {
            Some(r) => r,
            None => {
                self.root = Some(idx);
                self.set_level(idx, 0);
                return ItemId(idx);
            }
        };

        let d_root = self.metric.dist(&self.items[idx], &self.items[root]);
        assert!(
            d_root.is_finite(),
            "metric returned a non-finite distance; only finite metrics can be indexed"
        );
        // Raise the root until it covers the new item and sits above level 0.
        let mut root_level = self.nodes[root].level;
        while d_root > self.radius(root_level) || root_level < 1 {
            root_level += 1;
        }
        if root_level != self.nodes[root].level {
            self.set_level(root, root_level);
        }

        let mut level = root_level;
        let mut cands = vec![(root, d_root)];
        loop {
            let next = self.gather(&self.items[idx], level - 1, &cands);
            if next.is_empty() {
                let placement = level - 1;
                self.place(idx, placement, &cands);
                return ItemId(idx);
            }
            if level - 1 == 0 {
                self.place(idx, 0, &cands);
                return ItemId(idx);
            }
            cands = next;
            level -= 1;
        }
    }

    fn len(&self) -> usize {
        self.live_count
    }

    fn item(&self, id: ItemId) -> Option<&T> {
        let idx = id.0;
        if idx < self.nodes.len() && self.nodes[idx].alive {
            Some(&self.items[idx])
        } else {
            None
        }
    }

    fn range_query(&self, query: &T, radius: f64) -> Vec<ItemId> {
        self.range_query_with(
            |item, tau| self.metric.dist_within(query, item, tau),
            radius,
        )
    }

    fn space_stats(&self) -> SpaceStats {
        let entries: usize = self
            .nodes
            .iter()
            .filter(|n| n.alive)
            .map(|n| n.parents.len())
            .sum();
        // Per live node: level tag + alive flag + the two Vec headers; per
        // edge: one parent slot and one child slot.
        let estimated_bytes =
            self.live_count * (4 + 1 + 2 * std::mem::size_of::<Vec<usize>>()) + entries * 16;
        SpaceStats {
            items: self.live_count,
            entries,
            levels: self.by_level.len(),
            avg_parents: self.avg_parents(),
            estimated_bytes,
            serialized_bytes: self.structure_encoded_len(),
            item_bytes: self.items.len() * std::mem::size_of::<T>(),
            arena_bytes: 0,
        }
    }
}

// -- snapshot codec ---------------------------------------------------------

impl Encode for Node {
    fn encode(&self, w: &mut ssr_storage::Writer) {
        w.put_i32(self.level);
        self.parents.encode(w);
        self.children.encode(w);
        w.put_bool(self.alive);
    }
}

impl Decode for Node {
    fn decode(r: &mut ssr_storage::Reader<'_>) -> Result<Self, StorageError> {
        Ok(Node {
            level: r.take_i32()?,
            parents: Vec::<usize>::decode(r)?,
            children: Vec::<usize>::decode(r)?,
            alive: r.take_bool()?,
        })
    }
}

impl<T, M> ReferenceNet<T, M> {
    /// Encodes the hierarchy bookkeeping — everything except the items and
    /// the metric. The `by_level` buckets are stored verbatim (not rebuilt
    /// from the nodes) because their *within-level order* determines the
    /// order range queries visit references, and therefore the per-query
    /// distance-call counts a loaded net must reproduce bit-identically.
    fn encode_structure(&self, w: &mut ssr_storage::Writer) {
        w.put_f64(self.config.epsilon_prime);
        self.config.max_parents.encode(w);
        self.nodes.encode(w);
        let levels: Vec<(i32, Vec<usize>)> = self
            .by_level
            .iter()
            .map(|(&level, ids)| (level, ids.clone()))
            .collect();
        levels.encode(w);
        self.root.encode(w);
        w.put_usize(self.live_count);
    }

    /// Exact byte size of [`Self::encode_structure`]'s output.
    fn structure_encoded_len(&self) -> usize {
        ssr_storage::Writer::measure(|w| self.encode_structure(w))
    }

    /// Stable backend name for telemetry labels.
    pub fn backend_name(&self) -> &'static str {
        "reference_net"
    }
}

impl<T: Encode, M> Encode for ReferenceNet<T, M> {
    fn encode(&self, w: &mut ssr_storage::Writer) {
        self.items.encode(w);
        self.encode_structure(w);
    }
}

impl<T: Decode + Send + Sync, M: Metric<T>> DecodeWith<M> for ReferenceNet<T, M> {
    fn decode_with(r: &mut ssr_storage::Reader<'_>, metric: M) -> Result<Self, StorageError> {
        let items = Vec::<T>::decode(r)?;
        let epsilon_prime = r.take_f64()?;
        if !(epsilon_prime > 0.0 && epsilon_prime.is_finite()) {
            return Err(StorageError::Malformed(
                "reference net epsilon_prime must be positive and finite".into(),
            ));
        }
        let max_parents = Option::<usize>::decode(r)?;
        if max_parents == Some(0) {
            return Err(StorageError::Malformed(
                "reference net max_parents must be at least 1".into(),
            ));
        }
        let nodes = Vec::<Node>::decode(r)?;
        if nodes.len() != items.len() {
            return Err(StorageError::Malformed(format!(
                "reference net has {} nodes for {} items",
                nodes.len(),
                items.len()
            )));
        }
        let in_range = |idx: &usize| *idx < nodes.len();
        if !nodes
            .iter()
            .all(|n| n.parents.iter().all(in_range) && n.children.iter().all(in_range))
        {
            return Err(StorageError::Malformed(
                "reference net edge index out of range".into(),
            ));
        }
        let levels = Vec::<(i32, Vec<usize>)>::decode(r)?;
        let mut by_level = BTreeMap::new();
        for (level, ids) in levels {
            if !ids.iter().all(in_range) {
                return Err(StorageError::Malformed(
                    "reference net level bucket index out of range".into(),
                ));
            }
            if by_level.insert(level, ids).is_some() {
                return Err(StorageError::Malformed(format!(
                    "duplicate reference net level {level}"
                )));
            }
        }
        let root = Option::<usize>::decode(r)?;
        if root.is_some_and(|root| root >= nodes.len()) {
            return Err(StorageError::Malformed(
                "reference net root out of range".into(),
            ));
        }
        let live_count = r.take_usize()?;
        if live_count != nodes.iter().filter(|n| n.alive).count() {
            return Err(StorageError::Malformed(
                "reference net live count disagrees with node liveness".into(),
            ));
        }
        Ok(ReferenceNet {
            config: ReferenceNetConfig {
                epsilon_prime,
                max_parents,
            },
            metric,
            items,
            nodes,
            by_level,
            root,
            live_count,
            build_threads: 1,
        })
    }
}

#[cfg(test)]
#[allow(clippy::type_complexity)]
mod tests {
    use super::*;
    use crate::metric::FnMetric;

    fn scalar_metric() -> FnMetric<fn(&f64, &f64) -> f64> {
        FnMetric(|a: &f64, b: &f64| (a - b).abs())
    }

    fn build(values: &[f64]) -> ReferenceNet<f64, FnMetric<fn(&f64, &f64) -> f64>> {
        let mut net = ReferenceNet::new(scalar_metric());
        for &v in values {
            net.insert(v);
        }
        net
    }

    fn brute_force(values: &[f64], q: f64, r: f64) -> Vec<usize> {
        values
            .iter()
            .enumerate()
            .filter(|(_, &v)| (v - q).abs() <= r)
            .map(|(i, _)| i)
            .collect()
    }

    #[test]
    fn empty_net_answers_empty_queries() {
        let net = build(&[]);
        assert!(net.is_empty());
        assert!(net.range_query(&1.0, 100.0).is_empty());
        assert_eq!(net.space_stats().items, 0);
    }

    #[test]
    fn single_item_net() {
        let net = build(&[5.0]);
        assert_eq!(net.len(), 1);
        assert_eq!(net.range_query(&5.2, 0.5), vec![ItemId(0)]);
        assert!(net.range_query(&9.0, 0.5).is_empty());
        net.check_invariants().unwrap();
    }

    #[test]
    fn range_queries_match_brute_force_on_scalars() {
        let values: Vec<f64> = (0..200).map(|i| ((i * 37) % 199) as f64 * 0.75).collect();
        let net = build(&values);
        net.check_invariants().unwrap();
        for &(q, r) in &[
            (10.0, 5.0),
            (75.0, 0.4),
            (0.0, 150.0),
            (149.0, 12.3),
            (50.0, 0.0),
        ] {
            let mut got: Vec<usize> = net.range_query(&q, r).into_iter().map(|i| i.0).collect();
            got.sort_unstable();
            assert_eq!(got, brute_force(&values, q, r), "q={q} r={r}");
        }
    }

    #[test]
    fn duplicates_are_all_retrievable() {
        let values = vec![3.0, 3.0, 3.0, 8.0, 3.0];
        let net = build(&values);
        net.check_invariants().unwrap();
        let mut got: Vec<usize> = net
            .range_query(&3.0, 0.1)
            .into_iter()
            .map(|i| i.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 4]);
    }

    #[test]
    fn invariants_hold_after_many_inserts() {
        let values: Vec<f64> = (0..500)
            .map(|i| (((i * 7919) % 1000) as f64) / 3.0)
            .collect();
        let net = build(&values);
        net.check_invariants().unwrap();
        let stats = net.space_stats();
        assert_eq!(stats.items, 500);
        assert!(stats.entries >= 499, "every non-root node has a parent");
        assert!(stats.levels >= 2);
        assert!(stats.avg_parents >= 1.0);
    }

    #[test]
    fn max_parents_cap_is_respected() {
        let metric = scalar_metric();
        let config = ReferenceNetConfig::with_epsilon_prime(1.0).with_max_parents(2);
        let mut net = ReferenceNet::with_config(metric, config);
        for i in 0..300 {
            net.insert(((i * 31) % 97) as f64 / 7.0);
        }
        net.check_invariants().unwrap();
        assert!(net.avg_parents() <= 2.0 + 1e-9);
    }

    #[test]
    fn deletion_keeps_structure_consistent_and_queries_correct() {
        let values: Vec<f64> = (0..120).map(|i| ((i * 53) % 113) as f64 * 0.5).collect();
        let mut net = build(&values);
        // Delete every third item, including (eventually) internal references.
        let mut alive: Vec<bool> = vec![true; values.len()];
        for i in (0..values.len()).step_by(3) {
            assert!(net.delete(ItemId(i)));
            alive[i] = false;
            net.check_invariants().unwrap();
        }
        assert!(!net.delete(ItemId(0)), "double delete reports false");
        for &(q, r) in &[(10.0, 4.0), (30.0, 1.0), (0.0, 100.0)] {
            let mut got: Vec<usize> = net.range_query(&q, r).into_iter().map(|i| i.0).collect();
            got.sort_unstable();
            let expected: Vec<usize> = values
                .iter()
                .enumerate()
                .filter(|&(i, &v)| alive[i] && (v - q).abs() <= r)
                .map(|(i, _)| i)
                .collect();
            assert_eq!(got, expected, "q={q} r={r}");
        }
    }

    #[test]
    fn deleting_the_root_promotes_a_child() {
        let mut net = build(&[10.0, 11.0, 50.0, 51.0, 90.0]);
        net.check_invariants().unwrap();
        // Item 0 is the first inserted and therefore the root.
        assert!(net.delete(ItemId(0)));
        net.check_invariants().unwrap();
        assert_eq!(net.len(), 4);
        let mut got: Vec<usize> = net
            .range_query(&50.0, 2.0)
            .into_iter()
            .map(|i| i.0)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![2, 3]);
    }

    #[test]
    fn delete_everything_then_reinsert() {
        let mut net = build(&[1.0, 2.0, 3.0]);
        for i in 0..3 {
            assert!(net.delete(ItemId(i)));
        }
        assert!(net.is_empty());
        assert!(net.range_query(&2.0, 10.0).is_empty());
        let id = net.insert(7.0);
        assert_eq!(net.range_query(&7.0, 0.1), vec![id]);
        net.check_invariants().unwrap();
    }

    #[test]
    fn query_uses_fewer_distance_computations_than_linear_scan() {
        use crate::metric::CountingMetric;
        use ssr_distance::CallCounter;

        let counter = CallCounter::new();
        let metric = CountingMetric::new(scalar_metric(), counter.clone());
        let mut net = ReferenceNet::new(metric);
        let values: Vec<f64> = (0..2000).map(|i| ((i * 37) % 1999) as f64 * 0.1).collect();
        for &v in &values {
            net.insert(v);
        }
        counter.reset();
        let result = net.range_query(&50.0, 1.0);
        let calls = counter.get();
        assert!(!result.is_empty());
        assert!(
            calls < values.len() as u64 / 2,
            "expected substantial pruning, used {calls} of {} distances",
            values.len()
        );
    }

    #[test]
    #[should_panic(expected = "epsilon_prime must be positive")]
    fn invalid_epsilon_prime_is_rejected() {
        let _ = ReferenceNet::with_config(
            scalar_metric(),
            ReferenceNetConfig {
                epsilon_prime: 0.0,
                max_parents: None,
            },
        );
    }

    #[test]
    fn item_lookup_respects_liveness() {
        let mut net = build(&[4.0, 5.0]);
        assert_eq!(net.item(ItemId(1)), Some(&5.0));
        net.delete(ItemId(1));
        assert_eq!(net.item(ItemId(1)), None);
        assert_eq!(net.item(ItemId(7)), None);
    }
}
