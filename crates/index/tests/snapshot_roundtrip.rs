//! Index-level snapshot round-trips: a decoded index must answer range
//! queries with the same results AND the same number of metric evaluations
//! as the original, because the framework's per-query statistics (and the CI
//! perf gate built on them) depend on the exact structure, including the
//! order references are visited in.

use ssr_distance::CallCounter;
use ssr_index::metric::{CountingMetric, FnMetric};
use ssr_index::{CoverTree, LinearScan, MvReferenceIndex, RangeIndex, ReferenceNet};
use ssr_storage::{DecodeWith, Encode, Reader, Writer};

type ScalarMetric = CountingMetric<FnMetric<fn(&f64, &f64) -> f64>>;

fn scalar_distance(a: &f64, b: &f64) -> f64 {
    (a - b).abs()
}

fn counted_metric() -> (ScalarMetric, CallCounter) {
    let counter = CallCounter::new();
    let metric = CountingMetric::new(
        FnMetric(scalar_distance as fn(&f64, &f64) -> f64),
        counter.clone(),
    );
    (metric, counter)
}

fn values() -> Vec<f64> {
    (0..600).map(|i| ((i * 37) % 599) as f64 * 0.25).collect()
}

const QUERIES: [(f64, f64); 4] = [(10.0, 2.0), (75.5, 0.5), (0.0, 40.0), (149.0, 0.0)];

/// Runs the queries against `index`, returning (sorted ids, call count) per
/// query with the counter reset around each.
fn probe<I: RangeIndex<f64>>(index: &I, counter: &CallCounter) -> Vec<(Vec<usize>, u64)> {
    QUERIES
        .iter()
        .map(|&(q, r)| {
            counter.reset();
            let mut ids: Vec<usize> = index.range_query(&q, r).into_iter().map(|i| i.0).collect();
            ids.sort_unstable();
            (ids, counter.get())
        })
        .collect()
}

fn roundtrip_bytes<T: Encode>(value: &T) -> Vec<u8> {
    let mut w = Writer::new();
    value.encode(&mut w);
    w.into_bytes()
}

#[test]
fn reference_net_roundtrips_with_identical_query_behaviour() {
    let (metric, counter) = counted_metric();
    let mut net = ReferenceNet::new(metric);
    net.extend(values());
    // Deletions exercise dead nodes and re-attachment state in the snapshot.
    net.delete(ssr_index::ItemId(3));
    net.delete(ssr_index::ItemId(100));
    let before = probe(&net, &counter);

    let bytes = roundtrip_bytes(&net);
    let (metric2, counter2) = counted_metric();
    let loaded = ReferenceNet::<f64, _>::decode_with(&mut Reader::new(&bytes), metric2).unwrap();
    assert_eq!(loaded.len(), net.len());
    loaded.check_invariants().unwrap();
    assert_eq!(probe(&loaded, &counter2), before);
    assert_eq!(loaded.space_stats(), net.space_stats());
    assert!(loaded.space_stats().serialized_bytes > 0);
}

#[test]
fn cover_tree_roundtrips_with_identical_query_behaviour() {
    let (metric, counter) = counted_metric();
    let mut tree = CoverTree::new(metric);
    tree.extend(values());
    let before = probe(&tree, &counter);

    let bytes = roundtrip_bytes(&tree);
    let (metric2, counter2) = counted_metric();
    let loaded = CoverTree::<f64, _>::decode_with(&mut Reader::new(&bytes), metric2).unwrap();
    loaded.check_invariants().unwrap();
    assert_eq!(probe(&loaded, &counter2), before);
    assert_eq!(loaded.space_stats(), tree.space_stats());
}

#[test]
fn mv_reference_roundtrips_with_identical_query_behaviour() {
    let (metric, counter) = counted_metric();
    let mut idx = MvReferenceIndex::new(metric, 7);
    idx.extend(values());
    let before = probe(&idx, &counter);

    let bytes = roundtrip_bytes(&idx);
    let (metric2, counter2) = counted_metric();
    let loaded =
        MvReferenceIndex::<f64, _>::decode_with(&mut Reader::new(&bytes), metric2).unwrap();
    assert_eq!(probe(&loaded, &counter2), before);
    assert_eq!(loaded.space_stats(), idx.space_stats());
}

#[test]
fn linear_scan_roundtrips() {
    let (metric, counter) = counted_metric();
    let mut scan = LinearScan::new(metric);
    scan.extend(values());
    let before = probe(&scan, &counter);

    let bytes = roundtrip_bytes(&scan);
    let (metric2, counter2) = counted_metric();
    let loaded = LinearScan::<f64, _>::decode_with(&mut Reader::new(&bytes), metric2).unwrap();
    assert_eq!(probe(&loaded, &counter2), before);
    assert_eq!(loaded.space_stats().serialized_bytes, 0);
}

#[test]
fn structurally_invalid_payloads_yield_malformed_errors() {
    use ssr_storage::StorageError;

    // An MV index whose pivot table claims more rows than items.
    let mut w = Writer::new();
    vec![1.0f64, 2.0].encode(&mut w); // 2 items
    w.put_usize(1); // num_references
    w.put_usize(64); // selection_sample
    vec![0usize].encode(&mut w); // references
    vec![vec![0.0f64], vec![1.0], vec![2.0]].encode(&mut w); // 3 rows
    let (metric, _) = counted_metric();
    let err = MvReferenceIndex::<f64, _>::decode_with(&mut Reader::new(w.bytes()), metric)
        .err()
        .expect("mismatched table must be rejected");
    assert!(matches!(err, StorageError::Malformed(_)), "{err:?}");

    // A reference net with an out-of-range root.
    let mut w = Writer::new();
    vec![1.0f64].encode(&mut w); // items
    w.put_f64(1.0); // epsilon_prime
    Option::<usize>::None.encode(&mut w); // max_parents
    w.put_usize(1); // one node
    w.put_i32(0);
    Vec::<usize>::new().encode(&mut w);
    Vec::<usize>::new().encode(&mut w);
    w.put_bool(true);
    vec![(0i32, vec![0usize])].encode(&mut w); // by_level
    Some(9usize).encode(&mut w); // root out of range
    w.put_usize(1); // live_count
    let (metric, _) = counted_metric();
    let err = ReferenceNet::<f64, _>::decode_with(&mut Reader::new(w.bytes()), metric)
        .err()
        .expect("out-of-range root must be rejected");
    assert!(matches!(err, StorageError::Malformed(_)), "{err:?}");
}
