//! Property tests: every index structure must answer range queries exactly
//! like a brute-force linear scan, for any metric, dataset and radius, and the
//! Reference Net must preserve its structural invariants under arbitrary
//! insert / delete interleavings.

use proptest::prelude::*;

use ssr_distance::{CallCounter, Levenshtein, SequenceDistance};
use ssr_index::{
    CountingMetric, CoverTree, FnMetric, ItemId, LinearScan, MvReferenceIndex, RangeIndex,
    ReferenceNet, ReferenceNetConfig, SequenceMetricAdapter,
};
use ssr_sequence::Symbol;

fn scalar_metric() -> FnMetric<fn(&f64, &f64) -> f64> {
    FnMetric(|a: &f64, b: &f64| (a - b).abs())
}

fn sorted_ids(ids: Vec<ItemId>) -> Vec<usize> {
    let mut v: Vec<usize> = ids.into_iter().map(|i| i.0).collect();
    v.sort_unstable();
    v
}

fn symbol_window(len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..20).prop_map(|i| Symbol::from_char(b"ACDEFGHIKLMNPQRSTVWY"[i as usize] as char)),
        len..=len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn reference_net_matches_linear_scan_on_scalars(
        values in prop::collection::vec(-100.0f64..100.0, 1..80),
        query in -120.0f64..120.0,
        radius in 0.0f64..60.0,
        epsilon_prime in prop::sample::select(vec![0.5f64, 1.0, 3.0]),
        cap in prop::option::of(1usize..4),
    ) {
        let mut config = ReferenceNetConfig::with_epsilon_prime(epsilon_prime);
        if let Some(c) = cap {
            config = config.with_max_parents(c);
        }
        let mut net = ReferenceNet::with_config(scalar_metric(), config);
        let mut scan = LinearScan::new(scalar_metric());
        for &v in &values {
            net.insert(v);
            scan.insert(v);
        }
        net.check_invariants().unwrap();
        prop_assert_eq!(
            sorted_ids(net.range_query(&query, radius)),
            sorted_ids(scan.range_query(&query, radius))
        );
    }

    #[test]
    fn cover_tree_matches_linear_scan_on_scalars(
        values in prop::collection::vec(-50.0f64..50.0, 1..80),
        query in -60.0f64..60.0,
        radius in 0.0f64..40.0,
    ) {
        let mut tree = CoverTree::new(scalar_metric());
        let mut scan = LinearScan::new(scalar_metric());
        for &v in &values {
            tree.insert(v);
            scan.insert(v);
        }
        tree.check_invariants().unwrap();
        prop_assert_eq!(
            sorted_ids(tree.range_query(&query, radius)),
            sorted_ids(scan.range_query(&query, radius))
        );
    }

    #[test]
    fn mv_reference_matches_linear_scan_on_scalars(
        values in prop::collection::vec(-50.0f64..50.0, 1..80),
        query in -60.0f64..60.0,
        radius in 0.0f64..40.0,
        k in 1usize..8,
    ) {
        let mut mv = MvReferenceIndex::new(scalar_metric(), k);
        mv.extend(values.iter().copied());
        let mut scan = LinearScan::new(scalar_metric());
        scan.extend(values.iter().copied());
        prop_assert_eq!(
            sorted_ids(mv.range_query(&query, radius)),
            sorted_ids(scan.range_query(&query, radius))
        );
    }

    #[test]
    fn all_indexes_agree_on_levenshtein_windows(
        windows in prop::collection::vec(symbol_window(8), 1..40),
        query in symbol_window(8),
        radius in 0.0f64..8.0,
    ) {
        let metric = || SequenceMetricAdapter::new(Levenshtein::new());
        let mut net = ReferenceNet::new(metric());
        let mut tree = CoverTree::new(metric());
        let mut mv = MvReferenceIndex::new(metric(), 4);
        let mut scan = LinearScan::new(metric());
        for w in &windows {
            net.insert(w.clone());
            tree.insert(w.clone());
            scan.insert(w.clone());
        }
        mv.extend(windows.iter().cloned());
        net.check_invariants().unwrap();
        let expected = sorted_ids(scan.range_query(&query, radius));
        prop_assert_eq!(sorted_ids(net.range_query(&query, radius)), expected.clone());
        prop_assert_eq!(sorted_ids(tree.range_query(&query, radius)), expected.clone());
        prop_assert_eq!(sorted_ids(mv.range_query(&query, radius)), expected);
    }

    #[test]
    fn threshold_path_preserves_results_and_distance_call_counts(
        windows in prop::collection::vec(symbol_window(8), 1..40),
        query in symbol_window(8),
        radius in 0.0f64..8.0,
    ) {
        // The same indexes built twice: once over the threshold-aware
        // sequence kernel (banded + early-abandoning `dist_within`), once
        // over a plain closure metric whose default `dist_within` runs the
        // full DP. Results AND per-query distance-call counts must agree
        // exactly — pruning saves DP cells, never calls or answers.
        let kernel = || SequenceMetricAdapter::new(Levenshtein::new());
        let full = || {
            FnMetric(|a: &Vec<Symbol>, b: &Vec<Symbol>| {
                SequenceDistance::<Symbol>::distance(&Levenshtein::new(), a, b)
            })
        };
        macro_rules! compare {
            ($build:expr) => {{
                let kc = CallCounter::new();
                let fc = CallCounter::new();
                let with_kernel = $build(CountingMetric::new(kernel(), kc.clone()));
                let with_full = $build(CountingMetric::new(full(), fc.clone()));
                kc.reset();
                fc.reset();
                let a = sorted_ids(with_kernel.range_query(&query, radius));
                let b = sorted_ids(with_full.range_query(&query, radius));
                prop_assert_eq!(a, b);
                prop_assert_eq!(kc.get(), fc.get(), "distance-call counts diverged");
            }};
        }
        compare!(|m| {
            let mut idx = ReferenceNet::new(m);
            idx.extend(windows.iter().cloned());
            idx
        });
        compare!(|m| {
            let mut idx = CoverTree::new(m);
            idx.extend(windows.iter().cloned());
            idx
        });
        compare!(|m| {
            let mut idx = MvReferenceIndex::new(m, 4);
            idx.extend(windows.iter().cloned());
            idx
        });
        compare!(|m| {
            let mut idx = LinearScan::new(m);
            idx.extend(windows.iter().cloned());
            idx
        });
    }

    #[test]
    fn reference_net_survives_insert_delete_interleavings(
        ops in prop::collection::vec((any::<bool>(), -30.0f64..30.0), 1..120),
        query in -40.0f64..40.0,
        radius in 0.0f64..20.0,
    ) {
        // `true` inserts the value, `false` deletes the oldest live item.
        let mut net = ReferenceNet::new(scalar_metric());
        let mut reference: Vec<(usize, f64, bool)> = Vec::new(); // (id, value, alive)
        for (insert, value) in ops {
            if insert || reference.iter().all(|&(_, _, alive)| !alive) {
                let id = net.insert(value);
                reference.push((id.0, value, true));
            } else {
                let entry = reference
                    .iter_mut()
                    .find(|(_, _, alive)| *alive)
                    .expect("checked above that a live item exists");
                entry.2 = false;
                let id = entry.0;
                prop_assert!(net.delete(ItemId(id)), "delete of live item must succeed");
            }
        }
        net.check_invariants().unwrap();
        let expected: Vec<usize> = reference
            .iter()
            .filter(|&&(_, v, alive)| alive && (v - query).abs() <= radius)
            .map(|&(id, _, _)| id)
            .collect();
        prop_assert_eq!(sorted_ids(net.range_query(&query, radius)), expected);
    }
}
