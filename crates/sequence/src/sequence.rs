//! Sequences and datasets of sequences.

use std::fmt;
use std::ops::Range;

use crate::element::Element;

/// Identifier of a sequence within a [`SequenceDataset`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug, Default)]
pub struct SequenceId(pub usize);

impl fmt::Display for SequenceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "seq#{}", self.0)
    }
}

/// An owned sequence of elements with an optional label.
///
/// Positions are 0-based; the paper's `SX_{a,b}` (1-based, inclusive) maps to
/// the half-open range `a-1..b` here. [`Sequence::subsequence`] takes a
/// half-open range directly.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Sequence<E> {
    elements: Vec<E>,
    label: Option<String>,
}

impl<E: Element> Sequence<E> {
    /// Creates a sequence from its elements.
    pub fn new(elements: Vec<E>) -> Self {
        Sequence {
            elements,
            label: None,
        }
    }

    /// Creates a labelled sequence (e.g. a protein accession or a song id).
    pub fn with_label(elements: Vec<E>, label: impl Into<String>) -> Self {
        Sequence {
            elements,
            label: Some(label.into()),
        }
    }

    /// The sequence label, if any.
    pub fn label(&self) -> Option<&str> {
        self.label.as_deref()
    }

    /// Sets or replaces the label.
    pub fn set_label(&mut self, label: impl Into<String>) {
        self.label = Some(label.into());
    }

    /// Number of elements (`|X|` in the paper).
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the sequence is empty.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// Borrow the elements as a slice.
    pub fn elements(&self) -> &[E] {
        &self.elements
    }

    /// Consumes the sequence and returns its elements.
    pub fn into_elements(self) -> Vec<E> {
        self.elements
    }

    /// Returns the continuous subsequence covering the half-open `range`,
    /// or `None` if the range is out of bounds or empty.
    pub fn subsequence(&self, range: Range<usize>) -> Option<&[E]> {
        if range.start >= range.end || range.end > self.elements.len() {
            return None;
        }
        Some(&self.elements[range])
    }

    /// Iterator over the elements.
    pub fn iter(&self) -> std::slice::Iter<'_, E> {
        self.elements.iter()
    }
}

impl<E: Element> From<Vec<E>> for Sequence<E> {
    fn from(elements: Vec<E>) -> Self {
        Sequence::new(elements)
    }
}

impl<E: Element> std::ops::Index<usize> for Sequence<E> {
    type Output = E;

    fn index(&self, index: usize) -> &E {
        &self.elements[index]
    }
}

/// A collection of sequences with stable [`SequenceId`]s.
///
/// This is the "database" side of the framework; the total database length
/// `Σ|X|` drives the number of windows stored in the metric index.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct SequenceDataset<E> {
    sequences: Vec<Sequence<E>>,
}

impl<E: Element> SequenceDataset<E> {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        SequenceDataset {
            sequences: Vec::new(),
        }
    }

    /// Creates a dataset from existing sequences.
    pub fn from_sequences(sequences: Vec<Sequence<E>>) -> Self {
        SequenceDataset { sequences }
    }

    /// Adds a sequence and returns its id.
    pub fn push(&mut self, sequence: Sequence<E>) -> SequenceId {
        let id = SequenceId(self.sequences.len());
        self.sequences.push(sequence);
        id
    }

    /// Number of sequences in the dataset.
    pub fn len(&self) -> usize {
        self.sequences.len()
    }

    /// Whether the dataset holds no sequences.
    pub fn is_empty(&self) -> bool {
        self.sequences.is_empty()
    }

    /// Total number of elements over all sequences (`Σ|X|`).
    pub fn total_elements(&self) -> usize {
        self.sequences.iter().map(Sequence::len).sum()
    }

    /// Looks up a sequence by id.
    pub fn get(&self, id: SequenceId) -> Option<&Sequence<E>> {
        self.sequences.get(id.0)
    }

    /// Iterates over `(id, sequence)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (SequenceId, &Sequence<E>)> {
        self.sequences
            .iter()
            .enumerate()
            .map(|(i, s)| (SequenceId(i), s))
    }

    /// Borrow all sequences.
    pub fn sequences(&self) -> &[Sequence<E>] {
        &self.sequences
    }
}

impl<E: Element> FromIterator<Sequence<E>> for SequenceDataset<E> {
    fn from_iter<T: IntoIterator<Item = Sequence<E>>>(iter: T) -> Self {
        SequenceDataset {
            sequences: iter.into_iter().collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    #[test]
    fn sequence_basics() {
        let s = seq("GATTACA");
        assert_eq!(s.len(), 7);
        assert!(!s.is_empty());
        assert_eq!(s[0], Symbol::from_char('G'));
        assert_eq!(s.iter().count(), 7);
        assert_eq!(s.label(), None);
    }

    #[test]
    fn sequence_labels() {
        let mut s = Sequence::with_label(vec![Symbol::from_char('A')], "P01234");
        assert_eq!(s.label(), Some("P01234"));
        s.set_label("Q99999");
        assert_eq!(s.label(), Some("Q99999"));
    }

    #[test]
    fn subsequence_extracts_half_open_ranges() {
        let s = seq("GATTACA");
        let sub = s.subsequence(1..4).unwrap();
        assert_eq!(
            sub,
            &[
                Symbol::from_char('A'),
                Symbol::from_char('T'),
                Symbol::from_char('T')
            ]
        );
    }

    #[test]
    fn subsequence_rejects_invalid_ranges() {
        let s = seq("GATTACA");
        assert!(s.subsequence(3..3).is_none());
        #[allow(clippy::reversed_empty_ranges)]
        {
            assert!(s.subsequence(4..2).is_none());
        }
        assert!(s.subsequence(0..8).is_none());
        assert!(s.subsequence(0..7).is_some());
    }

    #[test]
    fn empty_sequence_behaviour() {
        let s: Sequence<Symbol> = Sequence::new(vec![]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
        assert!(s.subsequence(0..0).is_none());
    }

    #[test]
    fn dataset_assigns_sequential_ids() {
        let mut ds = SequenceDataset::new();
        let a = ds.push(seq("ACGT"));
        let b = ds.push(seq("GGG"));
        assert_eq!(a, SequenceId(0));
        assert_eq!(b, SequenceId(1));
        assert_eq!(ds.len(), 2);
        assert_eq!(ds.total_elements(), 7);
        assert_eq!(ds.get(b).unwrap().len(), 3);
        assert!(ds.get(SequenceId(2)).is_none());
    }

    #[test]
    fn dataset_iteration_preserves_order() {
        let ds: SequenceDataset<Symbol> =
            vec![seq("A"), seq("CC"), seq("GGG")].into_iter().collect();
        let lens: Vec<usize> = ds.iter().map(|(_, s)| s.len()).collect();
        assert_eq!(lens, vec![1, 2, 3]);
        let ids: Vec<usize> = ds.iter().map(|(id, _)| id.0).collect();
        assert_eq!(ids, vec![0, 1, 2]);
    }

    #[test]
    fn sequence_id_display() {
        assert_eq!(SequenceId(7).to_string(), "seq#7");
    }
}
