//! Fixed-length window partitioning of database sequences.
//!
//! Step 1 of the framework (Section 7 of the paper) partitions every database
//! sequence `X` into disjoint windows of length `l = λ/2`. Lemma 2 shows that
//! if `l ≤ λ/2` then every similar subsequence `SX` (of length ≥ λ) fully
//! contains at least one window, so matching query segments against windows
//! only — instead of against all `O(|X|²)` subsequences — cannot miss a match.
//!
//! A trailing remainder shorter than `l` is not indexed (the paper produces
//! `⌊|X|/l⌋` windows per sequence); the completeness argument still holds
//! because a subsequence of length ≥ λ = 2l always covers a *full* window.

use std::fmt;

use crate::element::Element;
use crate::sequence::{Sequence, SequenceDataset, SequenceId};

/// Identifier of a window inside a [`WindowStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WindowId(pub usize);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "win#{}", self.0)
    }
}

/// A fixed-length window cut from a database sequence, with provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct Window<E> {
    /// The sequence this window was cut from.
    pub sequence: SequenceId,
    /// 0-based index of the window within its sequence (`w_1` is index 0).
    pub window_index: usize,
    /// 0-based offset of the first element within the source sequence.
    pub start: usize,
    /// The window's elements (always exactly the partition length).
    pub data: Vec<E>,
}

impl<E: Element> Window<E> {
    /// Length of the window.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the window is empty (never true for windows produced by
    /// [`partition_windows`]).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Half-open element range this window covers within its source sequence.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.data.len()
    }
}

/// Partitions one sequence into disjoint windows of length `window_len`.
///
/// Returns an empty vector when the sequence is shorter than `window_len`.
///
/// # Panics
///
/// Panics if `window_len == 0`.
pub fn partition_windows<E: Element>(
    sequence_id: SequenceId,
    sequence: &Sequence<E>,
    window_len: usize,
) -> Vec<Window<E>> {
    assert!(window_len > 0, "window length must be positive");
    let n = sequence.len() / window_len;
    let mut windows = Vec::with_capacity(n);
    for i in 0..n {
        let start = i * window_len;
        windows.push(Window {
            sequence: sequence_id,
            window_index: i,
            start,
            data: sequence.elements()[start..start + window_len].to_vec(),
        });
    }
    windows
}

/// Partitions every sequence of a dataset and collects the windows in a
/// [`WindowStore`].
pub fn partition_windows_dataset<E: Element>(
    dataset: &SequenceDataset<E>,
    window_len: usize,
) -> WindowStore<E> {
    let mut store = WindowStore::new(window_len);
    for (id, seq) in dataset.iter() {
        for w in partition_windows(id, seq, window_len) {
            store.push(w);
        }
    }
    store
}

/// All windows of a database, addressable by [`WindowId`].
///
/// The store is what gets inserted into the metric index (step 2 of the
/// framework); window ids double as the index's item ids so that candidate
/// pairs can be mapped back to `(sequence, offset)` provenance.
#[derive(Clone, Debug)]
pub struct WindowStore<E> {
    window_len: usize,
    windows: Vec<Window<E>>,
    /// Per-window total ground distance to the gap element, computed once at
    /// [`Self::push`] time and serialized with the store, so a loaded
    /// snapshot has it for free. ERP-style lower bounds compare exactly this
    /// sum; keeping it beside the window spares any gap-sum-aware consumer
    /// (diagnostics, future index backends) an `O(l)` rescan per pair. The
    /// current query pipeline does not read it: the filter step's
    /// distance-call statistics are frozen, so its pruning lives inside the
    /// kernels, and verification uses per-sequence prefix tables.
    gap_sums: Vec<f64>,
}

impl<E: Element> WindowStore<E> {
    /// Creates an empty store for windows of length `window_len`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        WindowStore {
            window_len,
            windows: Vec::new(),
            gap_sums: Vec::new(),
        }
    }

    /// The fixed window length `l = λ/2`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Adds a window and returns its id.
    ///
    /// # Panics
    ///
    /// Panics if the window's length differs from the store's window length.
    pub fn push(&mut self, window: Window<E>) -> WindowId {
        assert_eq!(
            window.len(),
            self.window_len,
            "window length mismatch: expected {}, got {}",
            self.window_len,
            window.len()
        );
        let id = WindowId(self.windows.len());
        let gap = E::gap();
        self.gap_sums.push(
            window
                .data
                .iter()
                .map(|e| e.ground_distance(&gap))
                .sum::<f64>(),
        );
        self.windows.push(window);
        id
    }

    /// Number of windows in the store.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Looks up a window by id.
    pub fn get(&self, id: WindowId) -> Option<&Window<E>> {
        self.windows.get(id.0)
    }

    /// Total ground distance of the window's elements to the gap element,
    /// precomputed at [`Self::push`] time (the quantity ERP-style lower
    /// bounds compare; see `ssr-distance`'s `erp_lower_bound_from_sums`).
    pub fn gap_sum(&self, id: WindowId) -> Option<f64> {
        self.gap_sums.get(id.0).copied()
    }

    /// All per-window gap sums (index position == `WindowId.0`).
    pub fn gap_sums(&self) -> &[f64] {
        &self.gap_sums
    }

    /// Replaces the per-window gap sums with values restored from a snapshot
    /// (the codec's decode path). Stored sums are taken verbatim — like
    /// every other serialized float in the format — so a snapshot written on
    /// one platform loads on another even when `ground_distance` is not
    /// bit-reproducible across libm implementations (e.g. `hypot`).
    ///
    /// # Panics
    ///
    /// Panics if the number of sums differs from the number of windows.
    pub(crate) fn restore_gap_sums(&mut self, gap_sums: Vec<f64>) {
        assert_eq!(
            gap_sums.len(),
            self.windows.len(),
            "one gap sum per window required"
        );
        self.gap_sums = gap_sums;
    }

    /// Iterates over `(id, window)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WindowId, &Window<E>)> {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| (WindowId(i), w))
    }

    /// All windows as a slice (index position == `WindowId.0`).
    pub fn windows(&self) -> &[Window<E>] {
        &self.windows
    }

    /// Finds the id of the window with the given provenance, if present.
    pub fn find(&self, sequence: SequenceId, window_index: usize) -> Option<WindowId> {
        // Windows of a sequence are contiguous and ordered by window_index, so a
        // linear scan is acceptable for tests and tooling; hot paths keep ids.
        self.windows
            .iter()
            .position(|w| w.sequence == sequence && w.window_index == window_index)
            .map(WindowId)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    #[test]
    fn partition_produces_floor_len_over_l_windows() {
        let s = seq("ABCDEFGHIJ");
        let windows = partition_windows(SequenceId(0), &s, 3);
        assert_eq!(windows.len(), 3); // 10 / 3 = 3, remainder dropped
        assert_eq!(windows[0].start, 0);
        assert_eq!(windows[1].start, 3);
        assert_eq!(windows[2].start, 6);
        for w in &windows {
            assert_eq!(w.len(), 3);
        }
    }

    #[test]
    fn partition_short_sequence_yields_nothing() {
        let s = seq("AB");
        assert!(partition_windows(SequenceId(0), &s, 3).is_empty());
    }

    #[test]
    fn partition_exact_multiple_covers_everything() {
        let s = seq("ABCDEF");
        let windows = partition_windows(SequenceId(4), &s, 2);
        assert_eq!(windows.len(), 3);
        let covered: usize = windows.iter().map(Window::len).sum();
        assert_eq!(covered, 6);
        assert!(windows.iter().all(|w| w.sequence == SequenceId(4)));
    }

    #[test]
    fn window_range_matches_offsets() {
        let s = seq("ABCDEFGH");
        let windows = partition_windows(SequenceId(0), &s, 4);
        assert_eq!(windows[1].range(), 4..8);
        assert_eq!(
            windows[1].data,
            "EFGH".chars().map(Symbol::from_char).collect::<Vec<_>>()
        );
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_length_panics() {
        let s = seq("ABC");
        let _ = partition_windows(SequenceId(0), &s, 0);
    }

    #[test]
    fn dataset_partitioning_assigns_global_ids() {
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCC"), seq("DD")]
            .into_iter()
            .collect();
        let store = partition_windows_dataset(&ds, 4);
        assert_eq!(store.len(), 3); // 2 + 1 + 0
        assert_eq!(store.window_len(), 4);
        assert_eq!(store.get(WindowId(0)).unwrap().sequence, SequenceId(0));
        assert_eq!(store.get(WindowId(2)).unwrap().sequence, SequenceId(1));
        assert!(store.get(WindowId(3)).is_none());
    }

    #[test]
    fn gap_sums_are_precomputed_per_window() {
        use crate::element::{Element, Pitch};
        let mut store: WindowStore<Pitch> = WindowStore::new(3);
        store.push(Window {
            sequence: SequenceId(0),
            window_index: 0,
            start: 0,
            data: vec![Pitch(1), Pitch(4), Pitch(0)],
        });
        store.push(Window {
            sequence: SequenceId(0),
            window_index: 1,
            start: 3,
            data: vec![Pitch(11), Pitch(11), Pitch(11)],
        });
        // Pitch's gap element is Pitch(0), so the sums are plain totals.
        assert_eq!(store.gap_sum(WindowId(0)), Some(5.0));
        assert_eq!(store.gap_sum(WindowId(1)), Some(33.0));
        assert_eq!(store.gap_sum(WindowId(2)), None);
        assert_eq!(store.gap_sums().len(), 2);
        let gap = Pitch::gap();
        for (id, w) in store.iter() {
            let expected: f64 = w.data.iter().map(|e| e.ground_distance(&gap)).sum();
            assert_eq!(store.gap_sum(id), Some(expected));
        }
    }

    #[test]
    fn window_store_find_locates_provenance() {
        let ds: SequenceDataset<Symbol> =
            vec![seq("AAAABBBB"), seq("CCCCDDDD")].into_iter().collect();
        let store = partition_windows_dataset(&ds, 4);
        assert_eq!(store.find(SequenceId(1), 1), Some(WindowId(3)));
        assert_eq!(store.find(SequenceId(1), 2), None);
    }

    #[test]
    #[should_panic(expected = "window length mismatch")]
    fn window_store_rejects_wrong_length() {
        let mut store: WindowStore<Symbol> = WindowStore::new(4);
        store.push(Window {
            sequence: SequenceId(0),
            window_index: 0,
            start: 0,
            data: vec![Symbol::from_char('A'); 3],
        });
    }

    #[test]
    fn lemma2_every_long_subsequence_contains_a_window() {
        // For any subsequence of length >= lambda = 2*l there is a fully
        // contained window: check exhaustively on a small sequence.
        let l = 3;
        let lambda = 2 * l;
        let s = seq("ABCDEFGHIJKLMNOP");
        let windows = partition_windows(SequenceId(0), &s, l);
        for start in 0..s.len() {
            for end in (start + lambda)..=s.len() {
                let contains_full_window = windows
                    .iter()
                    .any(|w| w.start >= start && w.start + w.len() <= end);
                assert!(
                    contains_full_window,
                    "subsequence {start}..{end} does not contain a full window"
                );
            }
        }
    }
}
