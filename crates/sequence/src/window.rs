//! Fixed-length window partitioning of database sequences.
//!
//! Step 1 of the framework (Section 7 of the paper) partitions every database
//! sequence `X` into disjoint windows of length `l = λ/2`. Lemma 2 shows that
//! if `l ≤ λ/2` then every similar subsequence `SX` (of length ≥ λ) fully
//! contains at least one window, so matching query segments against windows
//! only — instead of against all `O(|X|²)` subsequences — cannot miss a match.
//!
//! A trailing remainder shorter than `l` is not indexed (the paper produces
//! `⌊|X|/l⌋` windows per sequence); the completeness argument still holds
//! because a subsequence of length ≥ λ = 2l always covers a *full* window.
//!
//! Windows are **views**: a [`Window`] is `(sequence, start, len)` provenance
//! only, and a [`WindowStore`] resolves it to a `&[E]` slice of the shared
//! [`ElementArena`]. No window owns its elements — the arena is the single
//! resident copy — which is what keeps the index layout flat and the
//! per-window footprint at a few machine words.

use std::fmt;
use std::sync::Arc;

use crate::arena::ElementArena;
use crate::element::Element;
use crate::sequence::{SequenceDataset, SequenceId};

/// Identifier of a window inside a [`WindowStore`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct WindowId(pub usize);

impl fmt::Display for WindowId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "win#{}", self.0)
    }
}

/// A fixed-length window cut from a database sequence: pure provenance,
/// resolved to elements through the store's [`ElementArena`].
///
/// Deliberately two machine words. The window length is the store's (all
/// windows share it) and the within-sequence index is `start / window_len`,
/// so carrying either here would double the view table — which is part of
/// the CI-gated resident footprint — to store derivable state.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Window {
    /// The sequence this window was cut from.
    pub sequence: SequenceId,
    /// 0-based offset of the first element within the source sequence.
    pub start: usize,
}

impl Window {
    /// 0-based index of the window within its sequence (`w_1` is index 0),
    /// under the store's partition length.
    pub fn window_index(&self, window_len: usize) -> usize {
        self.start / window_len
    }

    /// Half-open element range this window covers within its source
    /// sequence, under the store's partition length.
    pub fn range(&self, window_len: usize) -> std::ops::Range<usize> {
        self.start..self.start + window_len
    }
}

/// Partitions one sequence of length `seq_len` into disjoint window views of
/// length `window_len`.
///
/// Returns an empty vector when the sequence is shorter than `window_len`.
/// The views are provenance only — no elements are copied.
///
/// # Panics
///
/// Panics if `window_len == 0`.
pub fn partition_windows(
    sequence_id: SequenceId,
    seq_len: usize,
    window_len: usize,
) -> Vec<Window> {
    assert!(window_len > 0, "window length must be positive");
    let n = seq_len / window_len;
    (0..n)
        .map(|i| Window {
            sequence: sequence_id,
            start: i * window_len,
        })
        .collect()
}

/// Builds an [`ElementArena`] over `dataset` and partitions every sequence,
/// collecting the window views in a [`WindowStore`].
pub fn partition_windows_dataset<E: Element>(
    dataset: &SequenceDataset<E>,
    window_len: usize,
) -> WindowStore<E> {
    WindowStore::partition(Arc::new(ElementArena::from_dataset(dataset)), window_len)
}

/// All windows of a database, addressable by [`WindowId`], resolving to
/// slices of a shared [`ElementArena`].
///
/// The store is what gets inserted into the metric index (step 2 of the
/// framework); window ids double as the index's item ids so that candidate
/// pairs can be mapped back to `(sequence, offset)` provenance.
//
// Historical note: earlier versions also precomputed and serialized a
// per-window gap-distance sum here. No consumer ever read it — the filter
// step's pruning lives inside the threshold-aware kernels, and the
// verification cascade uses the per-sequence `GapPrefix` tables, which
// recover any window's gap sum in `O(1)` as `prefix[start + len] -
// prefix[start]`. The field and its snapshot section were deleted with the
// arena refactor rather than carried as dead weight.
#[derive(Clone, Debug)]
pub struct WindowStore<E> {
    window_len: usize,
    windows: Vec<Window>,
    arena: Arc<ElementArena<E>>,
}

impl<E: Element> WindowStore<E> {
    /// Partitions every sequence covered by `arena` into windows of length
    /// `window_len` (the canonical constructor: the window set is fully
    /// determined by the arena's sequence boundaries and the window length,
    /// which is also what makes the on-disk format free of per-window data).
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn partition(arena: Arc<ElementArena<E>>, window_len: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        let mut windows = Vec::new();
        for s in 0..arena.sequence_count() {
            let id = SequenceId(s);
            let seq_len = arena.sequence_len(id).expect("sequence ids are dense");
            windows.extend(partition_windows(id, seq_len, window_len));
        }
        WindowStore {
            window_len,
            windows,
            arena,
        }
    }

    /// The fixed window length `l = λ/2`.
    pub fn window_len(&self) -> usize {
        self.window_len
    }

    /// Number of windows in the store.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether the store is empty.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// Looks up a window view by id.
    pub fn get(&self, id: WindowId) -> Option<Window> {
        self.windows.get(id.0).copied()
    }

    /// Resolves a window to its elements: a borrowed slice of the arena.
    pub fn slice(&self, id: WindowId) -> Option<&[E]> {
        let w = self.windows.get(id.0)?;
        self.arena.slice(w.sequence, w.start, self.window_len)
    }

    /// Resolves any window view against this store's arena.
    pub fn resolve(&self, window: &Window) -> Option<&[E]> {
        self.arena
            .slice(window.sequence, window.start, self.window_len)
    }

    /// The shared element arena backing every window.
    pub fn arena(&self) -> &Arc<ElementArena<E>> {
        &self.arena
    }

    /// Iterates over `(id, window)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (WindowId, Window)> + '_ {
        self.windows
            .iter()
            .enumerate()
            .map(|(i, w)| (WindowId(i), *w))
    }

    /// All window views as a slice (index position == `WindowId.0`).
    pub fn windows(&self) -> &[Window] {
        &self.windows
    }

    /// Finds the id of the window with the given provenance, if present.
    pub fn find(&self, sequence: SequenceId, window_index: usize) -> Option<WindowId> {
        // Windows of a sequence are contiguous and ordered by window_index, so a
        // linear scan is acceptable for tests and tooling; hot paths keep ids.
        self.windows
            .iter()
            .position(|w| w.sequence == sequence && w.start == window_index * self.window_len)
            .map(WindowId)
    }

    /// Deterministic resident footprint of the view table in bytes (the
    /// arena's own bytes are reported by [`ElementArena::resident_bytes`]).
    pub fn view_bytes(&self) -> usize {
        self.windows.len() * std::mem::size_of::<Window>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Symbol;
    use crate::sequence::Sequence;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn dataset(texts: &[&str]) -> SequenceDataset<Symbol> {
        texts.iter().map(|t| seq(t)).collect()
    }

    #[test]
    fn partition_produces_floor_len_over_l_windows() {
        let windows = partition_windows(SequenceId(0), 10, 3);
        assert_eq!(windows.len(), 3); // 10 / 3 = 3, remainder dropped
        assert_eq!(windows[0].start, 0);
        assert_eq!(windows[1].start, 3);
        assert_eq!(windows[2].start, 6);
        for w in &windows {
            assert_eq!(w.range(3).len(), 3);
        }
    }

    #[test]
    fn partition_short_sequence_yields_nothing() {
        assert!(partition_windows(SequenceId(0), 2, 3).is_empty());
    }

    #[test]
    fn partition_exact_multiple_covers_everything() {
        let windows = partition_windows(SequenceId(4), 6, 2);
        assert_eq!(windows.len(), 3);
        let covered: usize = windows.iter().map(|w| w.range(2).len()).sum();
        assert_eq!(covered, 6);
        assert!(windows.iter().all(|w| w.sequence == SequenceId(4)));
    }

    #[test]
    fn window_views_resolve_to_the_source_elements() {
        let store = partition_windows_dataset(&dataset(&["ABCDEFGH"]), 4);
        let w = store.get(WindowId(1)).unwrap();
        assert_eq!(w.range(store.window_len()), 4..8);
        assert_eq!(w.window_index(store.window_len()), 1);
        assert_eq!(store.slice(WindowId(1)).unwrap(), seq("EFGH").elements());
        assert_eq!(store.resolve(&w).unwrap(), seq("EFGH").elements());
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_length_panics() {
        let _ = partition_windows(SequenceId(0), 3, 0);
    }

    #[test]
    fn dataset_partitioning_assigns_global_ids() {
        let store = partition_windows_dataset(&dataset(&["AAAABBBB", "CCCC", "DD"]), 4);
        assert_eq!(store.len(), 3); // 2 + 1 + 0
        assert_eq!(store.window_len(), 4);
        assert_eq!(store.get(WindowId(0)).unwrap().sequence, SequenceId(0));
        assert_eq!(store.get(WindowId(2)).unwrap().sequence, SequenceId(1));
        assert!(store.get(WindowId(3)).is_none());
        assert!(store.slice(WindowId(3)).is_none());
    }

    #[test]
    fn every_window_slice_equals_the_direct_subsequence() {
        // The arena-vs-direct parity property: resolving a view through the
        // arena is bit-identical to slicing the owning sequence.
        let texts = ["ABCDEFGHIJ", "KLMNOP", "QRS", ""];
        let ds = dataset(&texts);
        for window_len in 1..5 {
            let store = partition_windows_dataset(&ds, window_len);
            for (id, w) in store.iter() {
                let direct = &ds.get(w.sequence).unwrap().elements()[w.range(window_len)];
                assert_eq!(store.slice(id).unwrap(), direct);
            }
        }
    }

    #[test]
    fn window_store_find_locates_provenance() {
        let store = partition_windows_dataset(&dataset(&["AAAABBBB", "CCCCDDDD"]), 4);
        assert_eq!(store.find(SequenceId(1), 1), Some(WindowId(3)));
        assert_eq!(store.find(SequenceId(1), 2), None);
    }

    #[test]
    fn view_bytes_are_a_few_words_per_window() {
        let store = partition_windows_dataset(&dataset(&["AAAABBBBCCCC"]), 4);
        assert_eq!(store.view_bytes(), 3 * std::mem::size_of::<Window>());
    }

    #[test]
    fn lemma2_every_long_subsequence_contains_a_window() {
        // For any subsequence of length >= lambda = 2*l there is a fully
        // contained window: check exhaustively on a small sequence.
        let l = 3;
        let lambda = 2 * l;
        let n = 16;
        let windows = partition_windows(SequenceId(0), n, l);
        for start in 0..n {
            for end in (start + lambda)..=n {
                let contains_full_window = windows
                    .iter()
                    .any(|w| w.start >= start && w.start + l <= end);
                assert!(
                    contains_full_window,
                    "subsequence {start}..{end} does not contain a full window"
                );
            }
        }
    }
}
