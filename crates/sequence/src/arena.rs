//! Flat, contiguous storage of all dataset elements.
//!
//! The framework touches window elements on every index distance evaluation,
//! so their layout dominates the hot-path memory behaviour. Storing each
//! window as an owned `Vec<E>` (and cloning it again into the index) gives a
//! cache-hostile Vec-of-Vec layout with two resident copies of every window.
//! The [`ElementArena`] fixes the layout at the source: **one** flat buffer
//! owns every element of every database sequence, windows and index items
//! address it by `(sequence, start, len)` and resolve to plain `&[E]` slices.
//! This mirrors how the modular subsequence-matching literature indexes
//! lightweight references into shared sequence storage instead of
//! materialized subsequences.
//!
//! The arena also serializes as a single contiguous snapshot section, so a
//! cold start reconstructs the whole element store with one bulk pass — no
//! per-window allocation — and the section stays amenable to a future
//! mmap-backed loader.

use crate::element::Element;
use crate::sequence::{SequenceDataset, SequenceId};

/// Contiguous storage of every element of a [`SequenceDataset`], in dataset
/// order, with per-sequence boundaries.
///
/// The arena is **append-only**: windows are *views* into it, so mutating or
/// reordering stored elements would silently change what every view resolves
/// to. [`Self::push_sequence`] is the one permitted mutation — it only adds
/// elements *after* every existing boundary, so the `(sequence, start, len)`
/// coordinates of every outstanding view keep resolving to exactly the
/// elements they resolved to before the append.
#[derive(Clone, PartialEq, Debug)]
pub struct ElementArena<E> {
    /// All elements, sequence after sequence.
    elements: Vec<E>,
    /// `bounds[i]..bounds[i + 1]` is sequence `i`'s range; `bounds[0] == 0`
    /// and `bounds.last() == elements.len()`, so there are `n + 1` entries
    /// for `n` sequences.
    bounds: Vec<usize>,
}

impl<E: Element> ElementArena<E> {
    /// Concatenates every sequence of `dataset` into one flat buffer.
    pub fn from_dataset(dataset: &SequenceDataset<E>) -> Self {
        let mut elements = Vec::with_capacity(dataset.total_elements());
        let mut bounds = Vec::with_capacity(dataset.len() + 1);
        bounds.push(0);
        for (_, sequence) in dataset.iter() {
            elements.extend_from_slice(sequence.elements());
            bounds.push(elements.len());
        }
        ElementArena { elements, bounds }
    }

    /// Rebuilds an arena from its raw parts (the snapshot decode path).
    ///
    /// Returns `None` when the bounds are not a monotone cover of
    /// `elements` starting at 0 — structurally impossible for an arena this
    /// type produced.
    pub fn from_parts(elements: Vec<E>, bounds: Vec<usize>) -> Option<Self> {
        if bounds.first() != Some(&0) || bounds.last() != Some(&elements.len()) {
            return None;
        }
        if bounds.windows(2).any(|w| w[0] > w[1]) {
            return None;
        }
        Some(ElementArena { elements, bounds })
    }

    /// Appends one sequence's elements at the tail of the arena and returns
    /// the [`SequenceId`] it now answers to (the next dense id).
    ///
    /// Existing sequence ranges are untouched — the new elements live
    /// strictly after every previous boundary — so outstanding window views
    /// into earlier sequences resolve to exactly the same elements after the
    /// append as before it. This is the live-ingestion primitive: appending
    /// never invalidates an id and never shifts a slice.
    pub fn push_sequence(&mut self, elements: &[E]) -> SequenceId {
        let id = SequenceId(self.sequence_count());
        self.elements.extend_from_slice(elements);
        self.bounds.push(self.elements.len());
        id
    }

    /// Number of sequences the arena covers.
    pub fn sequence_count(&self) -> usize {
        self.bounds.len() - 1
    }

    /// Total number of elements across all sequences.
    pub fn len(&self) -> usize {
        self.elements.len()
    }

    /// Whether the arena holds no element.
    pub fn is_empty(&self) -> bool {
        self.elements.is_empty()
    }

    /// The whole flat buffer.
    pub fn elements(&self) -> &[E] {
        &self.elements
    }

    /// Per-sequence boundaries (`n + 1` entries for `n` sequences).
    pub fn bounds(&self) -> &[usize] {
        &self.bounds
    }

    /// Length of one sequence.
    pub fn sequence_len(&self, id: SequenceId) -> Option<usize> {
        let start = *self.bounds.get(id.0)?;
        let end = *self.bounds.get(id.0 + 1)?;
        Some(end - start)
    }

    /// All elements of one sequence.
    pub fn sequence_slice(&self, id: SequenceId) -> Option<&[E]> {
        let start = *self.bounds.get(id.0)?;
        let end = *self.bounds.get(id.0 + 1)?;
        Some(&self.elements[start..end])
    }

    /// A half-open element range within one sequence (the window-resolution
    /// primitive). `None` when the sequence id or the range is out of bounds.
    pub fn slice(&self, id: SequenceId, start: usize, len: usize) -> Option<&[E]> {
        let base = *self.bounds.get(id.0)?;
        let end = *self.bounds.get(id.0 + 1)?;
        let from = base.checked_add(start)?;
        let to = from.checked_add(len)?;
        if to > end {
            return None;
        }
        Some(&self.elements[from..to])
    }

    /// Deterministic resident footprint of the arena in bytes: the flat
    /// element buffer plus the boundary table. Computed from lengths, not
    /// allocator capacities, so it is identical on every machine and safe to
    /// gate in CI.
    pub fn resident_bytes(&self) -> usize {
        self.elements.len() * std::mem::size_of::<E>()
            + self.bounds.len() * std::mem::size_of::<usize>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Symbol;
    use crate::sequence::Sequence;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn arena(texts: &[&str]) -> ElementArena<Symbol> {
        let ds: SequenceDataset<Symbol> = texts.iter().map(|t| seq(t)).collect();
        ElementArena::from_dataset(&ds)
    }

    #[test]
    fn concatenates_sequences_in_order() {
        let a = arena(&["ABCD", "EF", "", "GHI"]);
        assert_eq!(a.sequence_count(), 4);
        assert_eq!(a.len(), 9);
        assert_eq!(a.bounds(), &[0, 4, 6, 6, 9]);
        assert_eq!(a.sequence_len(SequenceId(1)), Some(2));
        assert_eq!(a.sequence_len(SequenceId(2)), Some(0));
        assert_eq!(a.sequence_len(SequenceId(4)), None);
        assert_eq!(
            a.sequence_slice(SequenceId(3)).unwrap(),
            seq("GHI").elements()
        );
    }

    #[test]
    fn slices_resolve_against_their_own_sequence_only() {
        let a = arena(&["ABCD", "EFGH"]);
        assert_eq!(a.slice(SequenceId(0), 1, 2).unwrap(), seq("BC").elements());
        assert_eq!(
            a.slice(SequenceId(1), 0, 4).unwrap(),
            seq("EFGH").elements()
        );
        // A window may not run past its sequence into the next one.
        assert!(a.slice(SequenceId(0), 2, 3).is_none());
        assert!(a.slice(SequenceId(2), 0, 1).is_none());
        assert!(a.slice(SequenceId(0), 0, 0).is_some());
    }

    #[test]
    fn from_parts_validates_bounds() {
        let elements: Vec<Symbol> = seq("ABCD").elements().to_vec();
        assert!(ElementArena::from_parts(elements.clone(), vec![0, 2, 4]).is_some());
        assert!(ElementArena::from_parts(elements.clone(), vec![0, 5]).is_none());
        assert!(ElementArena::from_parts(elements.clone(), vec![1, 4]).is_none());
        assert!(ElementArena::from_parts(elements.clone(), vec![0, 3, 2, 4]).is_none());
        assert!(ElementArena::from_parts(elements, vec![]).is_none());
        assert!(ElementArena::<Symbol>::from_parts(vec![], vec![0]).is_some());
    }

    #[test]
    fn push_sequence_extends_without_disturbing_existing_ranges() {
        let mut a = arena(&["ABCD", "EF"]);
        let before: Vec<Vec<Symbol>> = (0..a.sequence_count())
            .map(|i| a.sequence_slice(SequenceId(i)).unwrap().to_vec())
            .collect();
        let id = a.push_sequence(seq("GHIJK").elements());
        assert_eq!(id, SequenceId(2));
        assert_eq!(a.sequence_count(), 3);
        assert_eq!(a.bounds(), &[0, 4, 6, 11]);
        assert_eq!(a.sequence_slice(id).unwrap(), seq("GHIJK").elements());
        for (i, expected) in before.iter().enumerate() {
            assert_eq!(a.sequence_slice(SequenceId(i)).unwrap(), &expected[..]);
        }
        // Appending an empty sequence is allowed and keeps the cover valid.
        let id = a.push_sequence(&[]);
        assert_eq!(a.sequence_len(id), Some(0));
        assert_eq!(a.bounds().last(), Some(&a.len()));
    }

    #[test]
    fn empty_dataset_yields_an_empty_arena() {
        let a = arena(&[]);
        assert!(a.is_empty());
        assert_eq!(a.sequence_count(), 0);
        assert_eq!(a.resident_bytes(), std::mem::size_of::<usize>());
    }

    #[test]
    fn resident_bytes_counts_elements_and_bounds() {
        let a = arena(&["ABCD", "EF"]);
        assert_eq!(
            a.resident_bytes(),
            6 * std::mem::size_of::<Symbol>() + 3 * std::mem::size_of::<usize>()
        );
    }
}
