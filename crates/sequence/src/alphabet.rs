//! Finite alphabets and conversions between strings and symbol sequences.
//!
//! The paper's string experiments use the protein alphabet (`|ΣP| = 20`) and
//! mention DNA (`|ΣD| = 4`). The SONGS time-series dataset uses pitch values
//! `0..=11`, which we also expose as an "alphabet" so the generators can share
//! the same plumbing.

use crate::element::Symbol;

/// DNA bases.
pub const DNA_ALPHABET: &str = "ACGT";

/// The 20 standard amino-acid one-letter codes.
pub const PROTEIN_ALPHABET: &str = "ACDEFGHIKLMNPQRSTVWY";

/// Pitch classes 0..=11 rendered as hexadecimal-ish digits for display.
pub const PITCH_ALPHABET: &str = "0123456789AB";

/// A finite alphabet of symbols.
///
/// ```
/// use ssr_sequence::{Alphabet, Symbol};
///
/// let dna = Alphabet::dna();
/// assert_eq!(dna.size(), 4);
/// let seq = dna.encode("GATTACA").unwrap();
/// assert_eq!(dna.decode(&seq), "GATTACA");
/// assert!(dna.contains(Symbol::from_char('G')));
/// assert!(!dna.contains(Symbol::from_char('Z')));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Alphabet {
    name: &'static str,
    symbols: Vec<Symbol>,
}

impl Alphabet {
    /// Builds an alphabet from a string of distinct characters.
    ///
    /// # Panics
    ///
    /// Panics if `chars` contains duplicate characters or the ERP gap sentinel.
    pub fn new(name: &'static str, chars: &str) -> Self {
        let mut symbols = Vec::with_capacity(chars.len());
        for c in chars.chars() {
            let s = Symbol::from_char(c);
            assert!(!s.is_gap(), "alphabet must not contain the gap sentinel");
            assert!(!symbols.contains(&s), "duplicate symbol {c:?} in alphabet");
            symbols.push(s);
        }
        assert!(!symbols.is_empty(), "alphabet must be non-empty");
        Alphabet { name, symbols }
    }

    /// The DNA alphabet `{A, C, G, T}`.
    pub fn dna() -> Self {
        Alphabet::new("DNA", DNA_ALPHABET)
    }

    /// The 20-letter protein alphabet used by the PROTEINS experiments.
    pub fn protein() -> Self {
        Alphabet::new("PROTEIN", PROTEIN_ALPHABET)
    }

    /// The 12-symbol pitch alphabet used for display of SONGS data.
    pub fn pitch() -> Self {
        Alphabet::new("PITCH", PITCH_ALPHABET)
    }

    /// Human-readable name of this alphabet.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Number of symbols in the alphabet (`|Σ|`).
    pub fn size(&self) -> usize {
        self.symbols.len()
    }

    /// The symbols of the alphabet, in definition order.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// The `i`-th symbol of the alphabet.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.size()`.
    pub fn symbol(&self, i: usize) -> Symbol {
        self.symbols[i]
    }

    /// Index of `s` within the alphabet, if present.
    pub fn index_of(&self, s: Symbol) -> Option<usize> {
        self.symbols.iter().position(|&x| x == s)
    }

    /// Whether `s` belongs to this alphabet.
    pub fn contains(&self, s: Symbol) -> bool {
        self.index_of(s).is_some()
    }

    /// Encodes a string into a symbol vector, rejecting characters outside the
    /// alphabet.
    pub fn encode(&self, text: &str) -> Result<Vec<Symbol>, AlphabetError> {
        let mut out = Vec::with_capacity(text.len());
        for c in text.chars() {
            let s = Symbol::from_char(c);
            if !self.contains(s) {
                return Err(AlphabetError::UnknownCharacter {
                    character: c,
                    alphabet: self.name,
                });
            }
            out.push(s);
        }
        Ok(out)
    }

    /// Decodes a symbol slice back into a string. Symbols outside the alphabet
    /// are rendered as `?`.
    pub fn decode(&self, symbols: &[Symbol]) -> String {
        symbols
            .iter()
            .map(|&s| if self.contains(s) { s.to_char() } else { '?' })
            .collect()
    }
}

/// Errors produced while encoding text into an alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AlphabetError {
    /// A character outside the alphabet was encountered.
    UnknownCharacter {
        /// The offending character.
        character: char,
        /// The alphabet that rejected it.
        alphabet: &'static str,
    },
}

impl std::fmt::Display for AlphabetError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AlphabetError::UnknownCharacter {
                character,
                alphabet,
            } => write!(
                f,
                "character {character:?} does not belong to the {alphabet} alphabet"
            ),
        }
    }
}

impl std::error::Error for AlphabetError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dna_alphabet_has_four_symbols() {
        assert_eq!(Alphabet::dna().size(), 4);
    }

    #[test]
    fn protein_alphabet_has_twenty_symbols() {
        assert_eq!(Alphabet::protein().size(), 20);
    }

    #[test]
    fn pitch_alphabet_has_twelve_symbols() {
        assert_eq!(Alphabet::pitch().size(), 12);
    }

    #[test]
    fn encode_round_trips() {
        let p = Alphabet::protein();
        let ok = p.encode("ACDEFGHIKLMNPQRSTVWY").unwrap();
        assert_eq!(p.decode(&ok), "ACDEFGHIKLMNPQRSTVWY");
        let short = p.encode("MKV").unwrap();
        assert_eq!(p.decode(&short), "MKV");
    }

    #[test]
    fn encode_rejects_unknown_characters() {
        let dna = Alphabet::dna();
        let err = dna.encode("ACGX").unwrap_err();
        assert_eq!(
            err,
            AlphabetError::UnknownCharacter {
                character: 'X',
                alphabet: "DNA"
            }
        );
        assert!(err.to_string().contains("DNA"));
    }

    #[test]
    fn decode_renders_foreign_symbols_as_question_marks() {
        let dna = Alphabet::dna();
        let symbols = vec![Symbol::from_char('A'), Symbol::from_char('Z')];
        assert_eq!(dna.decode(&symbols), "A?");
    }

    #[test]
    fn index_of_and_symbol_agree() {
        let p = Alphabet::protein();
        for i in 0..p.size() {
            assert_eq!(p.index_of(p.symbol(i)), Some(i));
        }
        assert_eq!(p.index_of(Symbol::from_char('Z')), None);
    }

    #[test]
    #[should_panic(expected = "duplicate symbol")]
    fn duplicate_characters_panic() {
        let _ = Alphabet::new("BAD", "AAB");
    }
}
