//! # ssr-sequence
//!
//! Sequence substrate for the subsequence-retrieval framework of
//! Zhu, Kollios and Athitsos (VLDB 2012).
//!
//! The paper treats two families of "sequences":
//!
//! * **strings** over a finite alphabet `Σ` (DNA with `|Σ| = 4`, proteins with
//!   `|Σ| = 20`, …), and
//! * **time series** whose elements live in a (possibly infinite,
//!   multi-dimensional) space, e.g. pitch values in `0..=11` or 2-D trajectory
//!   points.
//!
//! This crate provides:
//!
//! * the [`Element`] trait — the minimal contract an element type must satisfy
//!   so that the distance functions in `ssr-distance` can be generic over it
//!   (a ground distance and a gap element for ERP-style distances);
//! * concrete element types: [`Symbol`] for strings, [`Pitch`] for bounded
//!   integer time series, [`Point2D`] / [`Point3D`] for trajectories, and a
//!   blanket implementation for `f64` scalars;
//! * [`Sequence`] and [`SequenceDataset`] containers with stable identifiers;
//! * a flat [`ElementArena`] ([`arena`]) owning every dataset element in one
//!   contiguous buffer — the single resident copy that windows and index
//!   items resolve against;
//! * fixed-length window partitioning ([`window`]) used for the database side
//!   of the framework (step 1 of Section 7 of the paper); windows are
//!   `(sequence, start, len)` views into the arena, not owned vectors;
//! * query segment extraction ([`segment`]) used for the query side
//!   (step 3 of Section 7);
//! * alphabet helpers ([`alphabet`]) for DNA, protein and pitch data.

pub mod alphabet;
pub mod arena;
pub mod element;
pub mod segment;
pub mod sequence;
pub mod storage;
pub mod window;

pub use alphabet::{Alphabet, DNA_ALPHABET, PITCH_ALPHABET, PROTEIN_ALPHABET};
pub use arena::ElementArena;
pub use element::{Element, Pitch, Point2D, Point3D, Symbol};
pub use segment::{extract_segments, segment_count, Segment, SegmentSpec};
pub use sequence::{Sequence, SequenceDataset, SequenceId};
pub use window::{partition_windows, partition_windows_dataset, Window, WindowId, WindowStore};
