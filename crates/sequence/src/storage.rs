//! Snapshot codecs ([`Encode`]/[`Decode`]) for the sequence substrate.
//!
//! Everything here round-trips bit-exactly: `f64` coordinates are stored as
//! IEEE-754 bit patterns, labels and provenance verbatim. Decoding is total —
//! structurally impossible inputs (a window whose data length disagrees with
//! the store's window length, an out-of-range pitch) surface as
//! [`StorageError::Malformed`] rather than panicking, so the container-level
//! CRCs of `ssr-storage` are a second line of defence, not the only one.

use ssr_storage::{Decode, Encode, Reader, StorableElement, StorageError, Writer};

use crate::element::{Pitch, Point2D, Point3D, Symbol};
use crate::sequence::{Sequence, SequenceDataset, SequenceId};
use crate::window::{Window, WindowId, WindowStore};

impl Encode for Symbol {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.0);
    }
}

impl Decode for Symbol {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Symbol(r.take_u8()?))
    }
}

impl StorableElement for Symbol {
    const TAG: &'static str = "symbol";
}

impl Encode for Pitch {
    fn encode(&self, w: &mut Writer) {
        w.put_i32(i32::from(self.0));
    }
}

impl Decode for Pitch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let raw = r.take_i32()?;
        let value = i16::try_from(raw)
            .map_err(|_| StorageError::Malformed(format!("pitch value {raw} out of range")))?;
        Ok(Pitch(value))
    }
}

impl StorableElement for Pitch {
    const TAG: &'static str = "pitch";
}

impl Encode for Point2D {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
}

impl Decode for Point2D {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Point2D {
            x: r.take_f64()?,
            y: r.take_f64()?,
        })
    }
}

impl StorableElement for Point2D {
    const TAG: &'static str = "point2d";
}

impl Encode for Point3D {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.x);
        w.put_f64(self.y);
        w.put_f64(self.z);
    }
}

impl Decode for Point3D {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Point3D {
            x: r.take_f64()?,
            y: r.take_f64()?,
            z: r.take_f64()?,
        })
    }
}

impl StorableElement for Point3D {
    const TAG: &'static str = "point3d";
}

impl Encode for SequenceId {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.0);
    }
}

impl Decode for SequenceId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(SequenceId(r.take_usize()?))
    }
}

impl Encode for WindowId {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.0);
    }
}

impl Decode for WindowId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(WindowId(r.take_usize()?))
    }
}

impl<E: crate::Element + Encode> Encode for Sequence<E> {
    fn encode(&self, w: &mut Writer) {
        self.elements().to_vec().encode(w);
        self.label().map(str::to_string).encode(w);
    }
}

impl<E: crate::Element + Decode> Decode for Sequence<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let elements = Vec::<E>::decode(r)?;
        let label = Option::<String>::decode(r)?;
        let mut sequence = Sequence::new(elements);
        if let Some(label) = label {
            sequence.set_label(label);
        }
        Ok(sequence)
    }
}

impl<E: crate::Element + Encode> Encode for SequenceDataset<E> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for (_, sequence) in self.iter() {
            sequence.encode(w);
        }
    }
}

impl<E: crate::Element + Decode> Decode for SequenceDataset<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let len = r.take_len(1)?;
        let mut sequences = Vec::with_capacity(len);
        for _ in 0..len {
            sequences.push(Sequence::decode(r)?);
        }
        Ok(SequenceDataset::from_sequences(sequences))
    }
}

impl<E: crate::Element + Encode> Encode for Window<E> {
    fn encode(&self, w: &mut Writer) {
        self.sequence.encode(w);
        w.put_usize(self.window_index);
        w.put_usize(self.start);
        self.data.encode(w);
    }
}

impl<E: crate::Element + Decode> Decode for Window<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Window {
            sequence: SequenceId::decode(r)?,
            window_index: r.take_usize()?,
            start: r.take_usize()?,
            data: Vec::<E>::decode(r)?,
        })
    }
}

impl<E: crate::Element + Encode> Encode for WindowStore<E> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.window_len());
        w.put_usize(self.len());
        for (_, window) in self.iter() {
            window.encode(w);
        }
        // Per-window gap-distance sums (snapshot format version 2): stored so
        // a loaded database has the ERP lower-bound inputs without rescanning
        // any window.
        for &sum in self.gap_sums() {
            w.put_f64(sum);
        }
    }
}

impl<E: crate::Element + Decode> Decode for WindowStore<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let window_len = r.take_usize()?;
        if window_len == 0 {
            return Err(StorageError::Malformed(
                "window length must be positive".into(),
            ));
        }
        let count = r.take_len(1)?;
        let mut store = WindowStore::new(window_len);
        for _ in 0..count {
            let window = Window::<E>::decode(r)?;
            // Validate before `push`, whose length assertion would panic.
            if window.len() != window_len {
                return Err(StorageError::Malformed(format!(
                    "window of length {} in a store of window length {window_len}",
                    window.len()
                )));
            }
            store.push(window);
        }
        // Stored sums are restored verbatim rather than compared bit-for-bit
        // against a recompute: ground distances (e.g. `hypot` for points)
        // are not bit-reproducible across libm implementations, and the
        // container CRCs already guarantee the bytes themselves. The codec
        // validates structure only: one finite, non-negative sum per window.
        let mut gap_sums = Vec::with_capacity(count);
        for i in 0..count {
            let sum = r.take_f64()?;
            if !(sum >= 0.0 && sum.is_finite()) {
                return Err(StorageError::Malformed(format!(
                    "window {i} gap sum {sum} is not a finite non-negative value"
                )));
            }
            gap_sums.push(sum);
        }
        store.restore_gap_sums(gap_sums);
        Ok(store)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::partition_windows_dataset;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.expect_empty("value").unwrap();
        assert_eq!(back, value);
    }

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    #[test]
    fn elements_roundtrip() {
        roundtrip(Symbol::from_char('Q'));
        roundtrip(<Symbol as crate::Element>::gap());
        roundtrip(Pitch(11));
        roundtrip(Pitch(-3));
        roundtrip(Point2D::new(1.5, -2.25));
        roundtrip(Point3D::new(0.1, 0.2, 0.3));
        roundtrip(SequenceId(42));
        roundtrip(WindowId(7));
    }

    #[test]
    fn sequences_and_datasets_roundtrip() {
        roundtrip(seq("GATTACA"));
        let mut labelled = seq("ACGT");
        labelled.set_label("chr1");
        roundtrip(labelled);
        roundtrip(Sequence::<Symbol>::new(vec![]));
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCC")].into_iter().collect();
        roundtrip(ds);
    }

    #[test]
    fn window_stores_roundtrip_with_provenance() {
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCCDDDD"), seq("EE")]
            .into_iter()
            .collect();
        let store = partition_windows_dataset(&ds, 4);
        let mut w = Writer::new();
        store.encode(&mut w);
        let bytes = w.into_bytes();
        let back = WindowStore::<Symbol>::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.window_len(), store.window_len());
        assert_eq!(back.len(), store.len());
        for ((_, a), (_, b)) in back.iter().zip(store.iter()) {
            assert_eq!(a, b);
        }
    }

    #[test]
    fn malformed_window_store_is_rejected_not_panicked() {
        // A store claiming window length 0.
        let mut w = Writer::new();
        w.put_usize(0);
        w.put_usize(0);
        assert!(matches!(
            WindowStore::<Symbol>::decode(&mut Reader::new(w.bytes())),
            Err(StorageError::Malformed(_))
        ));

        // A window whose data disagrees with the store's window length.
        let mut w = Writer::new();
        w.put_usize(4); // store window_len
        w.put_usize(1); // one window
        SequenceId(0).encode(&mut w);
        w.put_usize(0); // window_index
        w.put_usize(0); // start
        vec![Symbol(b'A'); 3].encode(&mut w); // wrong length
        assert!(matches!(
            WindowStore::<Symbol>::decode(&mut Reader::new(w.bytes())),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn structurally_invalid_gap_sums_are_rejected() {
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB")].into_iter().collect();
        let store = partition_windows_dataset(&ds, 4);
        let mut w = Writer::new();
        store.encode(&mut w);
        let mut bytes = w.into_bytes();
        // The two gap sums are the trailing 16 bytes; set the sign bit of
        // the last sum (its most significant byte in LE encoding), making it
        // negative — structurally impossible for a sum of ground distances.
        // (Bit-level integrity of plausible values is the container CRC's
        // job, not the codec's: sums are restored verbatim by design.)
        let last = bytes.len() - 1;
        bytes[last] ^= 0x80;
        assert!(matches!(
            WindowStore::<Symbol>::decode(&mut Reader::new(&bytes)),
            Err(StorageError::Malformed(_))
        ));
    }

    #[test]
    fn gap_sums_roundtrip_verbatim() {
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCC")].into_iter().collect();
        let store = partition_windows_dataset(&ds, 4);
        let mut w = Writer::new();
        store.encode(&mut w);
        let bytes = w.into_bytes();
        let back = WindowStore::<Symbol>::decode(&mut Reader::new(&bytes)).unwrap();
        assert_eq!(back.gap_sums(), store.gap_sums());
    }

    #[test]
    fn element_tags_are_distinct() {
        let tags = [
            Symbol::TAG,
            Pitch::TAG,
            <f64 as StorableElement>::TAG,
            Point2D::TAG,
            Point3D::TAG,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
