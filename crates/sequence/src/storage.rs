//! Snapshot codecs ([`Encode`]/[`Decode`]) for the sequence substrate.
//!
//! Everything here round-trips bit-exactly: `f64` coordinates are stored as
//! IEEE-754 bit patterns, labels and provenance verbatim. Decoding is total —
//! structurally impossible inputs (a window whose data length disagrees with
//! the store's window length, an out-of-range pitch) surface as
//! [`StorageError::Malformed`] rather than panicking, so the container-level
//! CRCs of `ssr-storage` are a second line of defence, not the only one.

use ssr_storage::{Decode, Encode, Reader, StorableElement, StorageError, Writer};

use crate::arena::ElementArena;
use crate::element::{Pitch, Point2D, Point3D, Symbol};
use crate::sequence::{Sequence, SequenceDataset, SequenceId};
use crate::window::WindowId;

impl Encode for Symbol {
    fn encode(&self, w: &mut Writer) {
        w.put_u8(self.0);
    }
}

impl Decode for Symbol {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Symbol(r.take_u8()?))
    }
}

impl StorableElement for Symbol {
    const TAG: &'static str = "symbol";
}

impl Encode for Pitch {
    fn encode(&self, w: &mut Writer) {
        w.put_i32(i32::from(self.0));
    }
}

impl Decode for Pitch {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let raw = r.take_i32()?;
        let value = i16::try_from(raw)
            .map_err(|_| StorageError::Malformed(format!("pitch value {raw} out of range")))?;
        Ok(Pitch(value))
    }
}

impl StorableElement for Pitch {
    const TAG: &'static str = "pitch";
}

impl Encode for Point2D {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.x);
        w.put_f64(self.y);
    }
}

impl Decode for Point2D {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Point2D {
            x: r.take_f64()?,
            y: r.take_f64()?,
        })
    }
}

impl StorableElement for Point2D {
    const TAG: &'static str = "point2d";
}

impl Encode for Point3D {
    fn encode(&self, w: &mut Writer) {
        w.put_f64(self.x);
        w.put_f64(self.y);
        w.put_f64(self.z);
    }
}

impl Decode for Point3D {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(Point3D {
            x: r.take_f64()?,
            y: r.take_f64()?,
            z: r.take_f64()?,
        })
    }
}

impl StorableElement for Point3D {
    const TAG: &'static str = "point3d";
}

impl Encode for SequenceId {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.0);
    }
}

impl Decode for SequenceId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(SequenceId(r.take_usize()?))
    }
}

impl Encode for WindowId {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.0);
    }
}

impl Decode for WindowId {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        Ok(WindowId(r.take_usize()?))
    }
}

impl<E: crate::Element + Encode> Encode for Sequence<E> {
    fn encode(&self, w: &mut Writer) {
        self.elements().to_vec().encode(w);
        self.label().map(str::to_string).encode(w);
    }
}

impl<E: crate::Element + Decode> Decode for Sequence<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let elements = Vec::<E>::decode(r)?;
        let label = Option::<String>::decode(r)?;
        let mut sequence = Sequence::new(elements);
        if let Some(label) = label {
            sequence.set_label(label);
        }
        Ok(sequence)
    }
}

impl<E: crate::Element + Encode> Encode for SequenceDataset<E> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.len());
        for (_, sequence) in self.iter() {
            sequence.encode(w);
        }
    }
}

impl<E: crate::Element + Decode> Decode for SequenceDataset<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let len = r.take_len(1)?;
        let mut sequences = Vec::with_capacity(len);
        for _ in 0..len {
            sequences.push(Sequence::decode(r)?);
        }
        Ok(SequenceDataset::from_sequences(sequences))
    }
}

/// The arena serializes as one contiguous element run (snapshot format
/// version 3): sequence boundaries first, then every element back to back.
/// Decoding therefore performs exactly **one** element-buffer allocation for
/// the whole database — no per-window (or per-sequence) element vectors —
/// and the flat layout keeps the section compatible with a future
/// mmap-backed loader that resolves slices without copying at all.
impl<E: crate::Element + Encode> Encode for ElementArena<E> {
    fn encode(&self, w: &mut Writer) {
        w.put_usize(self.sequence_count());
        // bounds[0] is always 0; store the n upper bounds only.
        for &b in &self.bounds()[1..] {
            w.put_usize(b);
        }
        w.put_usize(self.len());
        for e in self.elements() {
            e.encode(w);
        }
    }
}

impl<E: crate::Element + Decode> Decode for ElementArena<E> {
    fn decode(r: &mut Reader<'_>) -> Result<Self, StorageError> {
        let sequences = r.take_len(8)?;
        let mut bounds = Vec::with_capacity(sequences + 1);
        bounds.push(0usize);
        for _ in 0..sequences {
            bounds.push(r.take_usize()?);
        }
        let count = r.take_len(1)?;
        if Some(&count) != bounds.last() {
            return Err(StorageError::Malformed(format!(
                "arena stores {count} elements but its last bound is {}",
                bounds.last().expect("bounds always start with 0")
            )));
        }
        let mut elements = Vec::with_capacity(count);
        for _ in 0..count {
            elements.push(E::decode(r)?);
        }
        ElementArena::from_parts(elements, bounds).ok_or_else(|| {
            StorageError::Malformed("arena bounds are not a monotone cover of the elements".into())
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::window::partition_windows_dataset;

    fn roundtrip<T: Encode + Decode + PartialEq + std::fmt::Debug>(value: T) {
        let mut w = Writer::new();
        value.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        let back = T::decode(&mut r).unwrap();
        r.expect_empty("value").unwrap();
        assert_eq!(back, value);
    }

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    #[test]
    fn elements_roundtrip() {
        roundtrip(Symbol::from_char('Q'));
        roundtrip(<Symbol as crate::Element>::gap());
        roundtrip(Pitch(11));
        roundtrip(Pitch(-3));
        roundtrip(Point2D::new(1.5, -2.25));
        roundtrip(Point3D::new(0.1, 0.2, 0.3));
        roundtrip(SequenceId(42));
        roundtrip(WindowId(7));
    }

    #[test]
    fn sequences_and_datasets_roundtrip() {
        roundtrip(seq("GATTACA"));
        let mut labelled = seq("ACGT");
        labelled.set_label("chr1");
        roundtrip(labelled);
        roundtrip(Sequence::<Symbol>::new(vec![]));
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCC")].into_iter().collect();
        roundtrip(ds);
    }

    #[test]
    fn arenas_roundtrip_and_repartition_identically() {
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB"), seq("CCCCDDDD"), seq("EE")]
            .into_iter()
            .collect();
        let arena = ElementArena::from_dataset(&ds);
        roundtrip(arena.clone());

        // Partitioning the decoded arena reproduces the original store's
        // views exactly — this is what makes the v3 snapshot format free of
        // per-window data.
        let mut w = Writer::new();
        arena.encode(&mut w);
        let bytes = w.into_bytes();
        let back = ElementArena::<Symbol>::decode(&mut Reader::new(&bytes)).unwrap();
        let store = partition_windows_dataset(&ds, 4);
        let restored = crate::window::WindowStore::partition(std::sync::Arc::new(back), 4);
        assert_eq!(restored.len(), store.len());
        for ((ida, a), (idb, b)) in restored.iter().zip(store.iter()) {
            assert_eq!((ida, a), (idb, b));
            assert_eq!(restored.slice(ida).unwrap(), store.slice(idb).unwrap());
        }
    }

    #[test]
    fn empty_arena_roundtrips() {
        roundtrip(ElementArena::<Symbol>::from_dataset(&SequenceDataset::new()));
        let ds: SequenceDataset<Symbol> = vec![Sequence::new(vec![])].into_iter().collect();
        roundtrip(ElementArena::from_dataset(&ds));
    }

    #[test]
    fn malformed_arena_is_rejected_not_panicked() {
        // Element count disagreeing with the last bound.
        let mut w = Writer::new();
        w.put_usize(1); // one sequence
        w.put_usize(4); // its upper bound
        w.put_usize(3); // but only three elements claimed
        for _ in 0..3 {
            Symbol(b'A').encode(&mut w);
        }
        assert!(matches!(
            ElementArena::<Symbol>::decode(&mut Reader::new(w.bytes())),
            Err(StorageError::Malformed(_))
        ));

        // Non-monotone bounds.
        let mut w = Writer::new();
        w.put_usize(2);
        w.put_usize(3);
        w.put_usize(2); // decreasing
        w.put_usize(2);
        for _ in 0..2 {
            Symbol(b'A').encode(&mut w);
        }
        assert!(matches!(
            ElementArena::<Symbol>::decode(&mut Reader::new(w.bytes())),
            Err(StorageError::Malformed(_))
        ));

        // Truncation anywhere yields a typed error.
        let ds: SequenceDataset<Symbol> = vec![seq("AAAABBBB")].into_iter().collect();
        let mut w = Writer::new();
        ElementArena::from_dataset(&ds).encode(&mut w);
        let bytes = w.into_bytes();
        for cut in 0..bytes.len() {
            assert!(
                ElementArena::<Symbol>::decode(&mut Reader::new(&bytes[..cut])).is_err(),
                "prefix of {cut} bytes unexpectedly decoded"
            );
        }
    }

    #[test]
    fn element_tags_are_distinct() {
        let tags = [
            Symbol::TAG,
            Pitch::TAG,
            <f64 as StorableElement>::TAG,
            Point2D::TAG,
            Point3D::TAG,
        ];
        for (i, a) in tags.iter().enumerate() {
            for b in &tags[i + 1..] {
                assert_ne!(a, b);
            }
        }
    }
}
