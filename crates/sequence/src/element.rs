//! Element types and the [`Element`] trait.
//!
//! A sequence in the paper is `Q = (q1, …, q|Q|)` with elements drawn from an
//! alphabet `Σφ`. `Σ` can be a finite character set (strings) or an infinite,
//! multi-dimensional space (time series). Every distance function in
//! `ssr-distance` is defined on top of a *ground distance* between individual
//! elements, so the only requirements placed on an element type are:
//!
//! * a symmetric, non-negative ground distance that satisfies the triangle
//!   inequality (needed so that DTW / ERP / discrete Fréchet built on top of it
//!   behave as described in the paper), and
//! * a designated *gap element* `g` used by ERP, which charges
//!   `ground_distance(x, g)` for unmatched elements.

use std::fmt;

/// An element of a sequence.
///
/// Implementors must guarantee that [`Element::ground_distance`] is
/// non-negative, symmetric, zero on equal elements, and satisfies the triangle
/// inequality. All the element types shipped with this crate do.
pub trait Element: Clone + PartialEq + fmt::Debug {
    /// Ground distance between two elements.
    fn ground_distance(&self, other: &Self) -> f64;

    /// The gap element `g` used by the ERP distance (Chen & Ng, VLDB 2004).
    ///
    /// For numeric elements this is the origin; for symbolic elements it is a
    /// dedicated sentinel that is at distance 1 from every real symbol.
    fn gap() -> Self;

    /// An upper bound on the ground distance between any two elements of this
    /// type, if one exists (e.g. 1.0 for symbols, 11.0 for pitches).
    ///
    /// Used to derive maximum sequence distances for bounded alphabets, which
    /// the evaluation (Figures 8 and 12) expresses query ranges against.
    fn max_ground_distance() -> Option<f64> {
        None
    }
}

/// A symbol of a finite alphabet, e.g. a DNA base or an amino-acid code.
///
/// The ground distance is the discrete metric (0 if equal, 1 otherwise), which
/// makes Hamming and Levenshtein the natural sequence distances.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Symbol(pub u8);

/// Sentinel code used for [`Symbol`]'s gap element.
///
/// No alphabet shipped with this crate uses code 255, so the gap symbol is at
/// distance 1 from every real symbol, as required by ERP over strings.
pub const GAP_SYMBOL_CODE: u8 = u8::MAX;

impl Symbol {
    /// Creates a symbol from an ASCII character.
    pub fn from_char(c: char) -> Self {
        Symbol(c as u8)
    }

    /// Returns the symbol as a `char` (lossy for non-ASCII codes).
    pub fn to_char(self) -> char {
        self.0 as char
    }

    /// Whether this symbol is the ERP gap sentinel.
    pub fn is_gap(self) -> bool {
        self.0 == GAP_SYMBOL_CODE
    }
}

impl fmt::Debug for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_gap() {
            write!(f, "Symbol(GAP)")
        } else if self.0.is_ascii_graphic() {
            write!(f, "Symbol('{}')", self.0 as char)
        } else {
            write!(f, "Symbol({})", self.0)
        }
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0.is_ascii_graphic() {
            write!(f, "{}", self.0 as char)
        } else {
            write!(f, "#{}", self.0)
        }
    }
}

impl Element for Symbol {
    fn ground_distance(&self, other: &Self) -> f64 {
        if self == other {
            0.0
        } else {
            1.0
        }
    }

    fn gap() -> Self {
        Symbol(GAP_SYMBOL_CODE)
    }

    fn max_ground_distance() -> Option<f64> {
        Some(1.0)
    }
}

/// A pitch value in `0..=11`, the element type of the SONGS dataset.
///
/// The paper notes that "the pitch values range between 0 and 11", which makes
/// the discrete Fréchet distance distribution on SONGS extremely skewed
/// (Figure 4). The ground distance is the absolute difference of pitch values.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Debug)]
pub struct Pitch(pub i16);

impl Pitch {
    /// Largest pitch value produced by the SONGS generator.
    pub const MAX: i16 = 11;

    /// Creates a pitch, clamping into the valid `0..=11` range.
    pub fn clamped(value: i16) -> Self {
        Pitch(value.clamp(0, Self::MAX))
    }

    /// Raw pitch value.
    pub fn value(self) -> i16 {
        self.0
    }
}

impl Element for Pitch {
    fn ground_distance(&self, other: &Self) -> f64 {
        f64::from((self.0 - other.0).abs() as i32)
    }

    fn gap() -> Self {
        Pitch(0)
    }

    fn max_ground_distance() -> Option<f64> {
        Some(f64::from(Self::MAX as i32))
    }
}

impl Element for f64 {
    fn ground_distance(&self, other: &Self) -> f64 {
        (self - other).abs()
    }

    fn gap() -> Self {
        0.0
    }
}

/// A point in the plane; the element type of the TRAJ (trajectory) dataset.
///
/// Ground distance is the Euclidean (L2) distance between points, matching the
/// per-coupling cost the paper uses for DTW / ERP / discrete Fréchet on
/// trajectories.
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point2D {
    /// Horizontal coordinate (e.g. longitude or metres east).
    pub x: f64,
    /// Vertical coordinate (e.g. latitude or metres north).
    pub y: f64,
}

impl Point2D {
    /// Creates a new 2-D point.
    pub fn new(x: f64, y: f64) -> Self {
        Point2D { x, y }
    }

    /// Euclidean norm of the point treated as a vector from the origin.
    pub fn norm(&self) -> f64 {
        self.x.hypot(self.y)
    }
}

impl Element for Point2D {
    fn ground_distance(&self, other: &Self) -> f64 {
        (self.x - other.x).hypot(self.y - other.y)
    }

    fn gap() -> Self {
        Point2D { x: 0.0, y: 0.0 }
    }
}

/// A point in 3-D space, for tracks over a 3-D volume (`ΣT ⊆ R³` in the paper).
#[derive(Clone, Copy, PartialEq, Debug, Default)]
pub struct Point3D {
    /// X coordinate.
    pub x: f64,
    /// Y coordinate.
    pub y: f64,
    /// Z coordinate.
    pub z: f64,
}

impl Point3D {
    /// Creates a new 3-D point.
    pub fn new(x: f64, y: f64, z: f64) -> Self {
        Point3D { x, y, z }
    }
}

impl Element for Point3D {
    fn ground_distance(&self, other: &Self) -> f64 {
        let dx = self.x - other.x;
        let dy = self.y - other.y;
        let dz = self.z - other.z;
        (dx * dx + dy * dy + dz * dz).sqrt()
    }

    fn gap() -> Self {
        Point3D {
            x: 0.0,
            y: 0.0,
            z: 0.0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn symbol_ground_distance_is_discrete_metric() {
        let a = Symbol::from_char('A');
        let b = Symbol::from_char('C');
        assert_eq!(a.ground_distance(&a), 0.0);
        assert_eq!(a.ground_distance(&b), 1.0);
        assert_eq!(b.ground_distance(&a), 1.0);
    }

    #[test]
    fn symbol_gap_is_distinct_from_alphabet() {
        let gap = Symbol::gap();
        assert!(gap.is_gap());
        for c in "ACDEFGHIKLMNPQRSTVWY".chars() {
            assert_eq!(gap.ground_distance(&Symbol::from_char(c)), 1.0);
        }
    }

    #[test]
    fn symbol_display_and_debug() {
        let a = Symbol::from_char('Q');
        assert_eq!(format!("{a}"), "Q");
        assert_eq!(format!("{a:?}"), "Symbol('Q')");
        assert_eq!(format!("{:?}", Symbol::gap()), "Symbol(GAP)");
        assert_eq!(format!("{}", Symbol(3)), "#3");
    }

    #[test]
    fn pitch_ground_distance_is_absolute_difference() {
        assert_eq!(Pitch(3).ground_distance(&Pitch(8)), 5.0);
        assert_eq!(Pitch(8).ground_distance(&Pitch(3)), 5.0);
        assert_eq!(Pitch(11).ground_distance(&Pitch(0)), 11.0);
        assert_eq!(Pitch(5).ground_distance(&Pitch(5)), 0.0);
    }

    #[test]
    fn pitch_clamps_into_range() {
        assert_eq!(Pitch::clamped(-3).value(), 0);
        assert_eq!(Pitch::clamped(42).value(), 11);
        assert_eq!(Pitch::clamped(7).value(), 7);
    }

    #[test]
    fn pitch_max_ground_distance_matches_alphabet_span() {
        assert_eq!(Pitch::max_ground_distance(), Some(11.0));
    }

    #[test]
    fn scalar_ground_distance() {
        assert_eq!(2.5_f64.ground_distance(&-1.5), 4.0);
        assert_eq!(f64::gap(), 0.0);
    }

    #[test]
    fn point2d_ground_distance_is_euclidean() {
        let a = Point2D::new(0.0, 0.0);
        let b = Point2D::new(3.0, 4.0);
        assert!((a.ground_distance(&b) - 5.0).abs() < 1e-12);
        assert_eq!(a.ground_distance(&a), 0.0);
    }

    #[test]
    fn point3d_ground_distance_is_euclidean() {
        let a = Point3D::new(1.0, 2.0, 3.0);
        let b = Point3D::new(1.0, 2.0, 3.0);
        assert_eq!(a.ground_distance(&b), 0.0);
        let c = Point3D::new(1.0, 2.0, 5.0);
        assert!((a.ground_distance(&c) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn ground_distance_triangle_inequality_spot_checks() {
        let pts = [
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 2.0),
            Point2D::new(-3.0, 0.5),
        ];
        for a in &pts {
            for b in &pts {
                for c in &pts {
                    assert!(
                        a.ground_distance(c) <= a.ground_distance(b) + b.ground_distance(c) + 1e-12
                    );
                }
            }
        }
    }
}
