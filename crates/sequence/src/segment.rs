//! Query segment extraction.
//!
//! Step 3 of the framework (Section 7) extracts from the query `Q` every
//! segment whose length lies in `[λ/2 − λ0, λ/2 + λ0]`, where `λ0` bounds the
//! temporal shift allowed between similar subsequences. This produces at most
//! `(2·λ0 + 1) · |Q|` segments, the quantity the paper's complexity analysis
//! (Equation 5) relies on.

use crate::element::Element;
use crate::sequence::Sequence;

/// Specification of the segment lengths to extract from a query.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct SegmentSpec {
    /// Window length `l = λ/2` used on the database side.
    pub window_len: usize,
    /// Maximal temporal shift `λ0` between similar subsequences.
    pub max_shift: usize,
}

impl SegmentSpec {
    /// Creates a specification for database window length `window_len` and
    /// maximal shift `max_shift`.
    ///
    /// # Panics
    ///
    /// Panics if `window_len == 0`.
    pub fn new(window_len: usize, max_shift: usize) -> Self {
        assert!(window_len > 0, "window length must be positive");
        SegmentSpec {
            window_len,
            max_shift,
        }
    }

    /// Smallest segment length to extract (`max(1, l − λ0)`).
    pub fn min_len(&self) -> usize {
        self.window_len.saturating_sub(self.max_shift).max(1)
    }

    /// Largest segment length to extract (`l + λ0`).
    pub fn max_len(&self) -> usize {
        self.window_len + self.max_shift
    }

    /// Number of distinct lengths extracted.
    pub fn length_count(&self) -> usize {
        self.max_len() - self.min_len() + 1
    }
}

/// A query segment: a contiguous slice of the query with provenance.
#[derive(Clone, PartialEq, Debug)]
pub struct Segment<E> {
    /// 0-based offset of the segment within the query.
    pub start: usize,
    /// The segment's elements.
    pub data: Vec<E>,
}

impl<E: Element> Segment<E> {
    /// Segment length.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the segment is empty (never true for extracted segments).
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Half-open range covered within the query.
    pub fn range(&self) -> std::ops::Range<usize> {
        self.start..self.start + self.data.len()
    }

    /// End offset (exclusive) within the query.
    pub fn end(&self) -> usize {
        self.start + self.data.len()
    }
}

/// Extracts every segment of `query` whose length lies within `spec`'s bounds.
///
/// Segments are produced in order of increasing length, then increasing start
/// offset; this ordering is deterministic and relied upon by tests.
pub fn extract_segments<E: Element>(query: &Sequence<E>, spec: SegmentSpec) -> Vec<Segment<E>> {
    let n = query.len();
    let mut segments = Vec::with_capacity(segment_count(n, spec));
    for len in spec.min_len()..=spec.max_len() {
        if len > n {
            break;
        }
        for start in 0..=(n - len) {
            segments.push(Segment {
                start,
                data: query.elements()[start..start + len].to_vec(),
            });
        }
    }
    segments
}

/// Number of segments [`extract_segments`] will produce for a query of length
/// `query_len` under `spec`.
pub fn segment_count(query_len: usize, spec: SegmentSpec) -> usize {
    let mut count = 0;
    for len in spec.min_len()..=spec.max_len() {
        if len > query_len {
            break;
        }
        count += query_len - len + 1;
    }
    count
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::element::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    #[test]
    fn spec_length_bounds() {
        let spec = SegmentSpec::new(10, 2);
        assert_eq!(spec.min_len(), 8);
        assert_eq!(spec.max_len(), 12);
        assert_eq!(spec.length_count(), 5);
    }

    #[test]
    fn spec_min_len_never_drops_below_one() {
        let spec = SegmentSpec::new(3, 10);
        assert_eq!(spec.min_len(), 1);
        assert_eq!(spec.max_len(), 13);
    }

    #[test]
    fn zero_shift_extracts_sliding_windows_only() {
        let spec = SegmentSpec::new(3, 0);
        let segments = extract_segments(&seq("ABCDEF"), spec);
        assert_eq!(segments.len(), 4);
        assert!(segments.iter().all(|s| s.len() == 3));
        let starts: Vec<usize> = segments.iter().map(|s| s.start).collect();
        assert_eq!(starts, vec![0, 1, 2, 3]);
    }

    #[test]
    fn shift_widens_length_range() {
        let spec = SegmentSpec::new(3, 1);
        let segments = extract_segments(&seq("ABCDE"), spec);
        // lengths 2,3,4 -> (5-2+1)+(5-3+1)+(5-4+1) = 4+3+2 = 9
        assert_eq!(segments.len(), 9);
        assert_eq!(segments.len(), segment_count(5, spec));
    }

    #[test]
    fn segment_count_matches_extraction_for_various_inputs() {
        for window_len in 1..6 {
            for max_shift in 0..4 {
                for n in 0..12 {
                    let spec = SegmentSpec::new(window_len, max_shift);
                    let q = Sequence::new(vec![Symbol::from_char('A'); n]);
                    assert_eq!(
                        extract_segments(&q, spec).len(),
                        segment_count(n, spec),
                        "window_len={window_len} max_shift={max_shift} n={n}"
                    );
                }
            }
        }
    }

    #[test]
    fn segment_count_upper_bound_from_paper() {
        // The paper bounds the number of segments by (2*lambda0 + 1) * |Q|.
        for max_shift in 0..5 {
            for n in 1..30 {
                let spec = SegmentSpec::new(10, max_shift);
                assert!(segment_count(n, spec) <= (2 * max_shift + 1) * n);
            }
        }
    }

    #[test]
    fn query_shorter_than_min_len_yields_nothing() {
        let spec = SegmentSpec::new(10, 2);
        assert!(extract_segments(&seq("ABC"), spec).is_empty());
        assert_eq!(segment_count(3, spec), 0);
    }

    #[test]
    fn segments_carry_correct_provenance() {
        let spec = SegmentSpec::new(2, 0);
        let q = seq("WXYZ");
        let segments = extract_segments(&q, spec);
        for s in &segments {
            assert_eq!(&q.elements()[s.range()], s.data.as_slice());
            assert_eq!(s.end(), s.start + s.len());
        }
    }

    #[test]
    #[should_panic(expected = "window length must be positive")]
    fn zero_window_spec_panics() {
        let _ = SegmentSpec::new(0, 1);
    }
}
