//! The global enable flag gates every recording path. This test lives in
//! its own integration-test binary (own process) because it toggles
//! process-global state that would race recording tests in other binaries.

use ssr_obs::{Counter, Gauge, Histogram};

#[test]
fn disabling_turns_recording_into_a_no_op() {
    let counter = Counter::standalone();
    let gauge = Gauge::standalone();
    let histogram = Histogram::standalone();

    assert!(ssr_obs::enabled());
    counter.inc();
    gauge.set(5);
    histogram.observe(100);

    ssr_obs::set_enabled(false);
    counter.add(10);
    gauge.set(99);
    gauge.add(1);
    histogram.observe(100);
    assert_eq!(counter.get(), 1);
    assert_eq!(gauge.get(), 5);
    assert_eq!(histogram.snapshot().count(), 1);

    ssr_obs::set_enabled(true);
    counter.inc();
    assert_eq!(counter.get(), 2);
}
