//! Golden-file pin of the Prometheus text exposition, plus a concurrency
//! hammer asserting histogram count conservation.

use ssr_obs::{Histogram, Registry};

/// The exposition format is a wire contract (scraped by `ssr stats`, parsed
/// by the bench checker and by real Prometheus servers), so its exact text
/// for a fixed registry state is pinned here: typed families sorted by
/// name, stable label order with `le` last, cumulative buckets, trailing
/// empty buckets folded into `+Inf`.
#[test]
fn exposition_text_is_pinned() {
    let registry = Registry::new();
    let requests = registry.counter("ssr_requests_total", "Requests handled.");
    requests.add(42);
    let depth = registry.gauge("ssr_queue_depth", "Jobs waiting for a worker.");
    depth.set(3);
    for shard in 0u64..2 {
        let hits = registry.counter_with(
            "ssr_cache_shard_hits_total",
            "Result-cache hits per shard.",
            Some(("shard", shard.to_string())),
        );
        hits.add(shard + 1);
    }
    let latency = registry.histogram(
        "ssr_request_duration_us",
        "Per-request wall clock in microseconds.",
    );
    for us in [1u64, 3, 3, 900] {
        latency.observe(us);
    }

    let expected = "\
# HELP ssr_cache_shard_hits_total Result-cache hits per shard.
# TYPE ssr_cache_shard_hits_total counter
ssr_cache_shard_hits_total{shard=\"0\"} 1
ssr_cache_shard_hits_total{shard=\"1\"} 2
# HELP ssr_queue_depth Jobs waiting for a worker.
# TYPE ssr_queue_depth gauge
ssr_queue_depth 3
# HELP ssr_request_duration_us Per-request wall clock in microseconds.
# TYPE ssr_request_duration_us histogram
ssr_request_duration_us_bucket{le=\"1\"} 1
ssr_request_duration_us_bucket{le=\"2\"} 1
ssr_request_duration_us_bucket{le=\"4\"} 3
ssr_request_duration_us_bucket{le=\"8\"} 3
ssr_request_duration_us_bucket{le=\"16\"} 3
ssr_request_duration_us_bucket{le=\"32\"} 3
ssr_request_duration_us_bucket{le=\"64\"} 3
ssr_request_duration_us_bucket{le=\"128\"} 3
ssr_request_duration_us_bucket{le=\"256\"} 3
ssr_request_duration_us_bucket{le=\"512\"} 3
ssr_request_duration_us_bucket{le=\"1024\"} 4
ssr_request_duration_us_bucket{le=\"+Inf\"} 4
ssr_request_duration_us_sum 907
ssr_request_duration_us_count 4
# HELP ssr_requests_total Requests handled.
# TYPE ssr_requests_total counter
ssr_requests_total 42
";
    assert_eq!(registry.render(), expected);
}

/// 8 threads hammer one histogram; every observation must land in exactly
/// one bucket and the sum must be exact — no lost updates, no double
/// counting.
#[test]
fn histogram_conserves_counts_under_8_threads() {
    const THREADS: u64 = 8;
    const PER_THREAD: u64 = 20_000;
    let histogram = Histogram::standalone();
    std::thread::scope(|scope| {
        for t in 0..THREADS {
            let histogram = histogram.clone();
            scope.spawn(move || {
                for i in 0..PER_THREAD {
                    // Mixed magnitudes so every thread touches many buckets.
                    histogram.observe((t * PER_THREAD + i) % 4096);
                }
            });
        }
    });
    let snapshot = histogram.snapshot();
    assert_eq!(snapshot.count(), THREADS * PER_THREAD);
    let expected_sum: u64 = (0..THREADS * PER_THREAD).map(|v| v % 4096).sum();
    assert_eq!(snapshot.sum, expected_sum);
}
