//! Span-based query tracing: a per-query buffer of stage spans and a
//! bounded ring of the process's most recent events.
//!
//! A [`TraceBuf`] rides inside one query's execution context and records a
//! span per pipeline stage (segment → index filter → chain → verify, plus
//! the ε-sweep rounds of Type III and the server's admission/cache spans).
//! Recording appends to a plain `Vec` owned by the executing thread — no
//! synchronization on the query path. When the query finishes, its events
//! are flushed into the process-global [`crate::trace_ring`] and, if the
//! query exceeded the configured slow-query threshold, rendered as an
//! indented span tree for the stderr slow-query log.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;
use std::time::Instant;

/// One recorded span: a named stage of one traced query.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct TraceEvent {
    /// Identifier of the query (trace) the span belongs to. Assigned
    /// deterministically by the batch engine (the query's index in its
    /// batch) or per-request by the server.
    pub trace_id: u64,
    /// Stage name (`"segment"`, `"filter"`, `"chain"`, `"verify"`, …).
    pub name: &'static str,
    /// Start offset in nanoseconds from the trace's origin.
    pub start_ns: u64,
    /// Duration in nanoseconds.
    pub dur_ns: u64,
    /// Nesting depth: 0 for top-level stages, deeper for spans recorded
    /// inside an enclosing [`TraceBuf::begin`]/[`TraceBuf::end`] pair.
    pub depth: u8,
}

/// A per-query span collector. Owned by the executing thread; recording
/// never synchronizes.
pub struct TraceBuf {
    id: u64,
    origin: Instant,
    depth: u8,
    events: Vec<TraceEvent>,
}

impl TraceBuf {
    /// A new trace with the given id; the origin timestamp is now.
    pub fn new(id: u64) -> Self {
        TraceBuf {
            id,
            origin: Instant::now(),
            depth: 0,
            events: Vec::new(),
        }
    }

    /// The trace's id.
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Records a completed leaf span of `dur_ns` that ended now.
    pub fn record(&mut self, name: &'static str, dur_ns: u64) {
        let end_ns = self.origin.elapsed().as_nanos() as u64;
        self.events.push(TraceEvent {
            trace_id: self.id,
            name,
            start_ns: end_ns.saturating_sub(dur_ns),
            dur_ns,
            depth: self.depth,
        });
    }

    /// Opens an enclosing span; spans recorded until the matching
    /// [`TraceBuf::end`] nest one level deeper. Returns a token for `end`.
    pub fn begin(&mut self, name: &'static str) -> usize {
        let start_ns = self.origin.elapsed().as_nanos() as u64;
        self.events.push(TraceEvent {
            trace_id: self.id,
            name,
            start_ns,
            dur_ns: 0,
            depth: self.depth,
        });
        self.depth = self.depth.saturating_add(1);
        self.events.len() - 1
    }

    /// Closes the span opened by [`TraceBuf::begin`], fixing its duration.
    pub fn end(&mut self, token: usize) {
        let now_ns = self.origin.elapsed().as_nanos() as u64;
        if let Some(event) = self.events.get_mut(token) {
            event.dur_ns = now_ns.saturating_sub(event.start_ns);
        }
        self.depth = self.depth.saturating_sub(1);
    }

    /// The recorded spans, in recording order.
    pub fn events(&self) -> &[TraceEvent] {
        &self.events
    }

    /// Pushes every recorded span into `ring`.
    pub fn flush_to(&self, ring: &TraceRing) {
        for event in &self.events {
            ring.push(event.clone());
        }
    }

    /// Renders the spans as an indented tree, one line per span, for the
    /// slow-query log.
    pub fn render_tree(&self) -> String {
        let mut out = String::new();
        for event in &self.events {
            let indent = "  ".repeat(usize::from(event.depth));
            out.push_str(&format!(
                "{indent}{} {:.3}ms @+{:.3}ms\n",
                event.name,
                event.dur_ns as f64 / 1e6,
                event.start_ns as f64 / 1e6,
            ));
        }
        out
    }
}

/// A bounded ring buffer of recent [`TraceEvent`]s. Writers claim a slot
/// with one atomic increment and store under that slot's (uncontended)
/// lock; the oldest events are overwritten once the ring is full.
pub struct TraceRing {
    slots: Vec<Mutex<Option<TraceEvent>>>,
    cursor: AtomicUsize,
}

impl TraceRing {
    /// A ring holding up to `capacity` events (at least one).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        TraceRing {
            slots: (0..capacity).map(|_| Mutex::new(None)).collect(),
            cursor: AtomicUsize::new(0),
        }
    }

    /// The ring's capacity.
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Appends an event, overwriting the oldest once full.
    pub fn push(&self, event: TraceEvent) {
        let index = self.cursor.fetch_add(1, Ordering::Relaxed) % self.slots.len();
        *self.slots[index].lock().expect("trace ring slot poisoned") = Some(event);
    }

    /// The most recent events, oldest first, up to `max`.
    pub fn recent(&self, max: usize) -> Vec<TraceEvent> {
        let written = self.cursor.load(Ordering::Relaxed);
        let available = written.min(self.slots.len()).min(max);
        let mut events = Vec::with_capacity(available);
        for i in (written - available)..written {
            let slot = self.slots[i % self.slots.len()]
                .lock()
                .expect("trace ring slot poisoned");
            if let Some(event) = slot.as_ref() {
                events.push(event.clone());
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_render() {
        let mut trace = TraceBuf::new(7);
        let round = trace.begin("round");
        trace.record("segment", 1_000);
        trace.record("filter", 2_000);
        trace.end(round);
        trace.record("verify", 500);
        let events = trace.events();
        assert_eq!(events.len(), 4);
        assert_eq!(events[0].name, "round");
        assert_eq!(events[0].depth, 0);
        assert_eq!(events[1].depth, 1);
        assert_eq!(events[2].depth, 1);
        assert_eq!(events[3].depth, 0);
        let tree = trace.render_tree();
        assert!(tree.contains("round"));
        assert!(tree.contains("  segment"));
    }

    #[test]
    fn ring_keeps_the_most_recent_events() {
        let ring = TraceRing::new(4);
        for i in 0..10u64 {
            ring.push(TraceEvent {
                trace_id: i,
                name: "span",
                start_ns: 0,
                dur_ns: i,
                depth: 0,
            });
        }
        let recent = ring.recent(16);
        assert_eq!(recent.len(), 4);
        let ids: Vec<u64> = recent.iter().map(|e| e.trace_id).collect();
        assert_eq!(ids, vec![6, 7, 8, 9]);
        assert_eq!(ring.recent(2).len(), 2);
    }

    #[test]
    fn flush_moves_spans_into_the_ring() {
        let ring = TraceRing::new(8);
        let mut trace = TraceBuf::new(3);
        trace.record("segment", 10);
        trace.record("verify", 20);
        trace.flush_to(&ring);
        let recent = ring.recent(8);
        assert_eq!(recent.len(), 2);
        assert!(recent.iter().all(|e| e.trace_id == 3));
    }
}
