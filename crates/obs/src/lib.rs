//! Zero-dependency telemetry for the subsequence-retrieval stack.
//!
//! The crate sits at the **bottom** of the workspace DAG — it depends on
//! nothing but `std`, so every layer (storage, index, engine, server, bench)
//! can record into it without dependency cycles. Three pieces:
//!
//! * a **metrics registry** ([`Registry`]) of atomically-updated counters,
//!   gauges and log2-bucketed histograms, registered by static name and
//!   rendered as Prometheus text exposition ([`Registry::render`]);
//! * **query tracing** ([`TraceBuf`], [`TraceRing`]) — per-query span
//!   records cheap enough for the hot path, collected into a bounded ring of
//!   recent events and rendered as an indented span tree for slow-query
//!   logs;
//! * a process-wide **kill switch** ([`set_enabled`]) so the bench harness
//!   can measure the instrumentation's own wall-clock overhead by comparing
//!   an enabled run against a no-op run of the same workload.
//!
//! Everything here is *observation only*: nothing in this crate feeds back
//! into query execution, so results and the deterministic per-query
//! statistics ([`QueryStats`]-style counters upstream) are bit-identical
//! whether telemetry is enabled, disabled, or absent.
//!
//! The histogram's bucketing is the exact log2 scheme the bench load
//! generator always used (bucket 0 absorbs values `<= 1`, bucket *i* covers
//! `(2^(i-1), 2^i]`), promoted here so the server and the load generator
//! bin latencies identically and their percentiles can be cross-checked.
//!
//! [`QueryStats`]: Registry

#![warn(missing_docs)]

mod metrics;
mod trace;

pub use metrics::{
    bucket_lower_edge, bucket_upper_edge, log2_bucket, Counter, Gauge, Histogram,
    HistogramSnapshot, MetricKind, Registry, HISTOGRAM_BUCKETS,
};
pub use trace::{TraceBuf, TraceEvent, TraceRing};

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::OnceLock;

/// Whether telemetry recording is active. `true` at startup.
static OBS_ENABLED: AtomicBool = AtomicBool::new(true);

/// Globally enables or disables telemetry recording. With recording off,
/// every [`Counter::add`], [`Gauge::set`] and [`Histogram::observe`] is a
/// single relaxed load and an early return — the no-op baseline the bench
/// `--max-obs-overhead` gate compares against. Reading ([`Counter::get`],
/// [`Registry::render`], …) is never gated.
pub fn set_enabled(on: bool) {
    OBS_ENABLED.store(on, Ordering::Relaxed);
}

/// Whether telemetry recording is currently enabled.
pub fn enabled() -> bool {
    OBS_ENABLED.load(Ordering::Relaxed)
}

/// The process-global registry. Layers without a natural owner (snapshot
/// load, WAL replay) record here; components with a lifetime of their own
/// (the query server) hold a private [`Registry`] so two instances in one
/// process never mix counters, and concatenate this one into their
/// exposition.
pub fn global() -> &'static Registry {
    static GLOBAL: OnceLock<Registry> = OnceLock::new();
    GLOBAL.get_or_init(Registry::new)
}

/// Capacity of the process-global trace ring.
const GLOBAL_RING_CAPACITY: usize = 1024;

/// The process-global ring of recent trace events. Query traces, server
/// admission spans and open-time spans (snapshot load, WAL replay) all land
/// here, so the last `1024` events of a process are always reconstructable.
pub fn trace_ring() -> &'static TraceRing {
    static RING: OnceLock<TraceRing> = OnceLock::new();
    RING.get_or_init(|| TraceRing::new(GLOBAL_RING_CAPACITY))
}
