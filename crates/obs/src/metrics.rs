//! The metrics registry: named families of atomic counters, gauges and
//! log2-bucketed histograms, rendered as Prometheus text exposition.
//!
//! Registration takes a short lock on the family table and hands back a
//! cloneable handle wrapping an `Arc`'d atomic; recording through a handle
//! is lock-free (relaxed atomics) and gated on the crate-wide
//! [`crate::enabled`] flag, so the hot path costs one load when telemetry is
//! off and a couple of relaxed RMWs when it is on.

use std::fmt::Write as _;
use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Number of histogram buckets: one per power of two of `u64` plus the
/// `<= 1` bucket.
pub const HISTOGRAM_BUCKETS: usize = 65;

/// The log2 bucket of a value: bucket `0` absorbs `value <= 1`, bucket `i`
/// (for `i >= 1`) covers `(2^(i-1), 2^i]`. This is the exact bucketing the
/// bench load generator has always applied to microsecond latencies; it
/// lives here so every layer bins identically.
pub fn log2_bucket(value: u64) -> usize {
    if value <= 1 {
        0
    } else {
        (u64::BITS - (value - 1).leading_zeros()) as usize
    }
}

/// Inclusive upper edge of a histogram bucket (`2^i`, saturating for the
/// last bucket, which the exposition renders as `+Inf`).
pub fn bucket_upper_edge(bucket: usize) -> u64 {
    if bucket >= 64 {
        u64::MAX
    } else {
        1u64 << bucket
    }
}

/// Lower edge of a histogram bucket: every value binned into `bucket` is
/// strictly greater than this (except bucket 0, whose lower edge is 0).
/// This is what makes a scraped histogram's percentile a safe *lower bound*
/// on the true percentile — the cross-check `bench --serve` runs against
/// the client-side exact percentile.
pub fn bucket_lower_edge(bucket: usize) -> u64 {
    if bucket == 0 {
        0
    } else {
        1u64 << (bucket - 1)
    }
}

/// What a metric family measures; determines the `# TYPE` exposition line.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum MetricKind {
    /// A monotonically increasing `u64`.
    Counter,
    /// A settable `i64` level.
    Gauge,
    /// A log2-bucketed distribution of `u64` observations.
    Histogram,
}

impl MetricKind {
    fn as_str(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// A monotonically increasing counter. Cloning shares the underlying atomic.
#[derive(Clone)]
pub struct Counter(Arc<AtomicU64>);

impl Counter {
    /// A counter not attached to any registry (for local aggregation).
    pub fn standalone() -> Self {
        Counter(Arc::new(AtomicU64::new(0)))
    }

    /// Adds `n`; a no-op while telemetry is disabled.
    pub fn add(&self, n: u64) {
        if crate::enabled() {
            self.0.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one; a no-op while telemetry is disabled.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A settable level. Cloning shares the underlying atomic.
#[derive(Clone)]
pub struct Gauge(Arc<AtomicI64>);

impl Gauge {
    /// A gauge not attached to any registry.
    pub fn standalone() -> Self {
        Gauge(Arc::new(AtomicI64::new(0)))
    }

    /// Sets the level; a no-op while telemetry is disabled.
    pub fn set(&self, value: i64) {
        if crate::enabled() {
            self.0.store(value, Ordering::Relaxed);
        }
    }

    /// Adjusts the level by `delta` (negative to decrement); a no-op while
    /// telemetry is disabled.
    pub fn add(&self, delta: i64) {
        if crate::enabled() {
            self.0.fetch_add(delta, Ordering::Relaxed);
        }
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

struct HistogramCore {
    counts: [AtomicU64; HISTOGRAM_BUCKETS],
    sum: AtomicU64,
}

/// A log2-bucketed histogram of `u64` observations (see [`log2_bucket`]).
/// The unit is the caller's — time histograms in this workspace observe
/// microseconds and carry a `_us` name suffix. Cloning shares the buckets.
#[derive(Clone)]
pub struct Histogram(Arc<HistogramCore>);

impl Histogram {
    /// A histogram not attached to any registry — what the bench load
    /// generator bins its client-side latencies into.
    pub fn standalone() -> Self {
        Histogram(Arc::new(HistogramCore {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }))
    }

    /// Records one observation; a no-op while telemetry is disabled.
    pub fn observe(&self, value: u64) {
        if crate::enabled() {
            self.0.counts[log2_bucket(value)].fetch_add(1, Ordering::Relaxed);
            self.0.sum.fetch_add(value, Ordering::Relaxed);
        }
    }

    /// A point-in-time copy of the buckets. Concurrent observers may land
    /// between bucket reads; each observation is counted exactly once, so
    /// totals are conserved (asserted by the crate's 8-thread hammer test).
    pub fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            counts: self
                .0
                .counts
                .iter()
                .map(|c| c.load(Ordering::Relaxed))
                .collect(),
            sum: self.0.sum.load(Ordering::Relaxed),
        }
    }
}

/// A point-in-time copy of a [`Histogram`]'s buckets.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts, indexed by [`log2_bucket`].
    pub counts: Vec<u64>,
    /// Sum of all observed values.
    pub sum: u64,
}

impl HistogramSnapshot {
    /// Total number of observations.
    pub fn count(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// The buckets with trailing zero buckets dropped (at least one bucket
    /// is kept) — the compact form the bench JSON report stores.
    pub fn trimmed_counts(&self) -> Vec<u64> {
        let last = self.counts.iter().rposition(|&c| c > 0).unwrap_or(0);
        self.counts[..=last].to_vec()
    }

    /// Lower edge (see [`bucket_lower_edge`]) of the bucket holding the
    /// nearest-rank `p`-th percentile, or `None` for an empty histogram.
    /// `p` is a fraction in `(0, 1]`.
    pub fn percentile_lower_edge(&self, p: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((p * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (bucket, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(bucket_lower_edge(bucket));
            }
        }
        None
    }
}

enum Primitive {
    Counter(Counter),
    Gauge(Gauge),
    Histogram(Histogram),
}

struct Series {
    /// `(key, value)` of the series' single label, if any.
    label: Option<(&'static str, String)>,
    value: Primitive,
}

struct Family {
    name: &'static str,
    help: &'static str,
    kind: MetricKind,
    series: Vec<Series>,
}

/// A named collection of metric families. Registration is idempotent: asking
/// for an existing `(name, label)` returns a handle to the same atomic.
///
/// Two registries never share state, so independent servers in one process
/// (the parity tests spin several up) keep independent counters; the
/// process-global [`crate::global`] registry holds the metrics that have no
/// per-instance owner.
#[derive(Default)]
pub struct Registry {
    families: Mutex<Vec<Family>>,
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    fn register(
        &self,
        name: &'static str,
        help: &'static str,
        kind: MetricKind,
        label: Option<(&'static str, String)>,
        make: impl FnOnce() -> Primitive,
    ) -> Primitive {
        let mut families = self.families.lock().expect("metrics registry poisoned");
        let family = match families.iter_mut().find(|f| f.name == name) {
            Some(family) => {
                assert_eq!(
                    family.kind, kind,
                    "metric {name} registered as {:?} and {kind:?}",
                    family.kind
                );
                family
            }
            None => {
                families.push(Family {
                    name,
                    help,
                    kind,
                    series: Vec::new(),
                });
                families.last_mut().expect("just pushed")
            }
        };
        if let Some(series) = family.series.iter().find(|s| s.label == label) {
            return match &series.value {
                Primitive::Counter(c) => Primitive::Counter(c.clone()),
                Primitive::Gauge(g) => Primitive::Gauge(g.clone()),
                Primitive::Histogram(h) => Primitive::Histogram(h.clone()),
            };
        }
        let value = make();
        let handle = match &value {
            Primitive::Counter(c) => Primitive::Counter(c.clone()),
            Primitive::Gauge(g) => Primitive::Gauge(g.clone()),
            Primitive::Histogram(h) => Primitive::Histogram(h.clone()),
        };
        family.series.push(Series { label, value });
        handle
    }

    /// Registers (or retrieves) an unlabeled counter.
    pub fn counter(&self, name: &'static str, help: &'static str) -> Counter {
        self.counter_with(name, help, None)
    }

    /// Registers (or retrieves) a counter series, optionally labeled with a
    /// single `(key, value)` pair.
    pub fn counter_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
    ) -> Counter {
        match self.register(name, help, MetricKind::Counter, label, || {
            Primitive::Counter(Counter::standalone())
        }) {
            Primitive::Counter(c) => c,
            _ => unreachable!("registered a counter"),
        }
    }

    /// Registers (or retrieves) an unlabeled gauge.
    pub fn gauge(&self, name: &'static str, help: &'static str) -> Gauge {
        self.gauge_with(name, help, None)
    }

    /// Registers (or retrieves) a gauge series, optionally labeled.
    pub fn gauge_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
    ) -> Gauge {
        match self.register(name, help, MetricKind::Gauge, label, || {
            Primitive::Gauge(Gauge::standalone())
        }) {
            Primitive::Gauge(g) => g,
            _ => unreachable!("registered a gauge"),
        }
    }

    /// Registers (or retrieves) an unlabeled histogram.
    pub fn histogram(&self, name: &'static str, help: &'static str) -> Histogram {
        self.histogram_with(name, help, None)
    }

    /// Registers (or retrieves) a histogram series, optionally labeled.
    pub fn histogram_with(
        &self,
        name: &'static str,
        help: &'static str,
        label: Option<(&'static str, String)>,
    ) -> Histogram {
        match self.register(name, help, MetricKind::Histogram, label, || {
            Primitive::Histogram(Histogram::standalone())
        }) {
            Primitive::Histogram(h) => h,
            _ => unreachable!("registered a histogram"),
        }
    }

    /// Renders the registry as Prometheus text exposition: families sorted
    /// by name, each with its `# HELP`/`# TYPE` header; series in
    /// registration order with a stable label order (the series' own label
    /// first, `le` last on histogram buckets). Histogram buckets are
    /// cumulative and trailing empty buckets are folded into `+Inf`.
    pub fn render(&self) -> String {
        let families = self.families.lock().expect("metrics registry poisoned");
        let mut order: Vec<usize> = (0..families.len()).collect();
        order.sort_by_key(|&i| families[i].name);
        let mut out = String::new();
        for i in order {
            let family = &families[i];
            let _ = writeln!(out, "# HELP {} {}", family.name, family.help);
            let _ = writeln!(out, "# TYPE {} {}", family.name, family.kind.as_str());
            for series in &family.series {
                render_series(&mut out, family.name, series);
            }
        }
        out
    }
}

fn label_text(label: &Option<(&'static str, String)>) -> String {
    match label {
        Some((key, value)) => format!("{{{key}=\"{value}\"}}"),
        None => String::new(),
    }
}

fn bucket_label(label: &Option<(&'static str, String)>, le: &str) -> String {
    match label {
        Some((key, value)) => format!("{{{key}=\"{value}\",le=\"{le}\"}}"),
        None => format!("{{le=\"{le}\"}}"),
    }
}

fn render_series(out: &mut String, name: &str, series: &Series) {
    match &series.value {
        Primitive::Counter(c) => {
            let _ = writeln!(out, "{name}{} {}", label_text(&series.label), c.get());
        }
        Primitive::Gauge(g) => {
            let _ = writeln!(out, "{name}{} {}", label_text(&series.label), g.get());
        }
        Primitive::Histogram(h) => {
            let snapshot = h.snapshot();
            let last = snapshot
                .counts
                .iter()
                .rposition(|&c| c > 0)
                .unwrap_or(0)
                .min(63);
            let mut cumulative = 0u64;
            for bucket in 0..=last {
                cumulative += snapshot.counts[bucket];
                let le = bucket_upper_edge(bucket).to_string();
                let _ = writeln!(
                    out,
                    "{name}_bucket{} {cumulative}",
                    bucket_label(&series.label, &le)
                );
            }
            let total = snapshot.count();
            let _ = writeln!(
                out,
                "{name}_bucket{} {total}",
                bucket_label(&series.label, "+Inf")
            );
            let _ = writeln!(
                out,
                "{name}_sum{} {}",
                label_text(&series.label),
                snapshot.sum
            );
            let _ = writeln!(out, "{name}_count{} {total}", label_text(&series.label));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log2_bucket_pins_the_loadgen_boundaries() {
        assert_eq!(log2_bucket(0), 0);
        assert_eq!(log2_bucket(1), 0);
        assert_eq!(log2_bucket(2), 1);
        assert_eq!(log2_bucket(3), 2);
        assert_eq!(log2_bucket(4), 2);
        assert_eq!(log2_bucket(5), 3);
        assert_eq!(log2_bucket(8), 3);
        assert_eq!(log2_bucket(9), 4);
        assert_eq!(log2_bucket(1024), 10);
        assert_eq!(log2_bucket(1025), 11);
        assert_eq!(log2_bucket(u64::MAX), 64);
        // Edges: every value in bucket i sits in (lower, upper].
        for bucket in 1..64 {
            assert_eq!(log2_bucket(bucket_lower_edge(bucket)), bucket - 1);
            assert_eq!(log2_bucket(bucket_lower_edge(bucket) + 1), bucket);
            assert_eq!(log2_bucket(bucket_upper_edge(bucket)), bucket);
        }
    }

    #[test]
    fn registration_is_idempotent_and_kind_checked() {
        let registry = Registry::new();
        let a = registry.counter("ssr_test_total", "a test counter");
        let b = registry.counter("ssr_test_total", "a test counter");
        a.add(2);
        b.inc();
        assert_eq!(a.get(), 3);
        let labeled = registry.counter_with(
            "ssr_test_labeled_total",
            "labeled",
            Some(("shard", "0".to_string())),
        );
        labeled.inc();
        let again = registry.counter_with(
            "ssr_test_labeled_total",
            "labeled",
            Some(("shard", "0".to_string())),
        );
        assert_eq!(again.get(), 1);
    }

    #[test]
    #[should_panic(expected = "registered as")]
    fn conflicting_kinds_panic() {
        let registry = Registry::new();
        let _ = registry.counter("ssr_conflict", "first as counter");
        let _ = registry.gauge("ssr_conflict", "then as gauge");
    }

    #[test]
    fn percentile_lower_edge_brackets_the_exact_percentile() {
        let h = Histogram::standalone();
        for us in [1u64, 2, 3, 100, 900, 1000, 5000] {
            h.observe(us);
        }
        let snapshot = h.snapshot();
        assert_eq!(snapshot.count(), 7);
        // p50 rank 4 of [1,2,3,100,900,1000,5000] = 100, bucket 7 (65..=128].
        assert_eq!(snapshot.percentile_lower_edge(0.5), Some(64));
        // p99 rank 7 = 5000, bucket 13 (4096..=8192].
        assert_eq!(snapshot.percentile_lower_edge(0.99), Some(4096));
        assert!(Histogram::standalone()
            .snapshot()
            .percentile_lower_edge(0.99)
            .is_none());
    }

    #[test]
    fn trimmed_counts_drop_trailing_zeroes_only() {
        let h = Histogram::standalone();
        h.observe(0);
        h.observe(5);
        let trimmed = h.snapshot().trimmed_counts();
        assert_eq!(trimmed, vec![1, 0, 0, 1]);
        assert_eq!(Histogram::standalone().snapshot().trimmed_counts(), vec![0]);
    }
}
