//! Deterministic failpoints for crash and chaos testing.
//!
//! A **failpoint** is a named hook compiled into a risky code path — a WAL
//! append, the snapshot rename, a server worker's body. In production it is
//! *disarmed* and costs exactly one relaxed atomic load ([`evaluate`]'s fast
//! path); armed, it counts how often the site is hit and, when its
//! [`Trigger`] matches, injects its [`Action`]: a typed error, a delay, a
//! partial write, or a panic.
//!
//! Everything is deterministic and seeded so a chaos run is replayable:
//! `nth-hit` and `every-k` triggers are pure functions of the site's hit
//! counter, and the probabilistic trigger hashes `(seed, hit)` with
//! [`mix64`] — the same seed always fires the same hits, on any machine.
//!
//! # Configuration
//!
//! Failpoints are configured programmatically ([`configure`]), from a spec
//! string ([`configure_str`] — what `ssr serve --failpoint` and
//! `bench --chaos` pass through), or from the [`ENV_FAILPOINTS`] environment
//! variable ([`init_from_env`], which binaries call once at startup):
//!
//! ```text
//! SSR_FAILPOINTS="wal.append=nth-3:partial-5;serve.worker=every-2:panic"
//! ```
//!
//! The grammar per entry is `name=trigger:action` with entries separated by
//! `;` or `,`:
//!
//! | trigger            | fires                                              |
//! |--------------------|----------------------------------------------------|
//! | `always`           | on every hit                                       |
//! | `nth-N`            | on exactly the N-th hit (1-based), once            |
//! | `every-K`          | on every K-th hit                                  |
//! | `prob-P` / `prob-P-SEED` | per hit with probability P‰ (seeded)         |
//!
//! | action        | effect at the site                                      |
//! |---------------|---------------------------------------------------------|
//! | `error`       | the operation fails with an injected error              |
//! | `delay-MS`    | the thread sleeps MS milliseconds, then proceeds        |
//! | `partial-N`   | only the first N bytes of the write land, then it fails |
//! | `panic`       | the thread panics (worker-isolation testing)            |
//!
//! Each injection increments the global `ssr_faults_injected_total` counter
//! (labelled by site) in [`ssr_obs::global`], so a chaos harness can check
//! the observed fault count against its schedule.
//!
//! The registry is process-global (like [`ssr_obs::global`]): tests that arm
//! failpoints must serialize against each other and [`clear`] when done —
//! [`FailpointGuard`] packages both obligations as one RAII value.
//!
//! Beyond per-site failpoints, the crate also hosts a **node-level kill
//! switch** ([`kill_node`] / [`revive_node`]) for multi-node harnesses: a
//! server started with a node name consults [`node_killed`] and, while the
//! switch is thrown, drops every connection without answering — the closest
//! in-process model of a crashed process that keeps the listener's port
//! (so a "restart" is instant and deterministic, with no rebind race).

#![warn(missing_docs)]

use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Mutex, MutexGuard, OnceLock};
use std::time::Duration;

/// Environment variable [`init_from_env`] reads failpoint specs from.
pub const ENV_FAILPOINTS: &str = "SSR_FAILPOINTS";

/// When a configured failpoint fires, as a function of the site's hit
/// counter (1-based: the first [`evaluate`] after configuration is hit 1).
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Trigger {
    /// Fire on every hit.
    Always,
    /// Fire on exactly the `n`-th hit, once.
    NthHit(u64),
    /// Fire on every `k`-th hit (hits `k`, `2k`, `3k`, …).
    EveryK(u64),
    /// Fire per hit with probability `permille`/1000, decided by hashing
    /// `(seed, hit)` — deterministic for a fixed seed.
    Probability {
        /// Firing probability in thousandths (0..=1000).
        permille: u32,
        /// Seed of the per-hit hash.
        seed: u64,
    },
}

/// What a firing failpoint does.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Action {
    /// The site fails with an injected error ([`Fault::Error`]).
    ReturnError,
    /// The calling thread sleeps this many milliseconds, then proceeds.
    Delay(u64),
    /// The site performs only the first `n` bytes of its write, then fails
    /// ([`Fault::PartialWrite`]) — a modelled torn write.
    PartialWrite(usize),
    /// The calling thread panics (inside [`evaluate`]).
    Panic,
}

/// One failpoint's configuration: when to fire and what to do.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct FailpointConfig {
    /// When the failpoint fires.
    pub trigger: Trigger,
    /// What it does when it fires.
    pub action: Action,
}

/// The outcome a call site must handle after [`evaluate`] fires. Delays and
/// panics are executed inside [`evaluate`] itself, so sites only deal with
/// the two outcomes that change their control flow.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Fault {
    /// Fail the operation with an injected error (see [`injected_io_error`]).
    Error,
    /// Perform only the first `n` bytes of the write, then fail.
    PartialWrite(usize),
}

/// Status of one configured failpoint, for diagnostics and chaos assertions.
#[derive(Clone, PartialEq, Eq, Debug)]
pub struct FailpointStatus {
    /// The failpoint's site name.
    pub name: String,
    /// Its configuration.
    pub config: FailpointConfig,
    /// Times the site was hit since configuration.
    pub hits: u64,
    /// Times the failpoint fired.
    pub fired: u64,
}

struct Failpoint {
    config: FailpointConfig,
    hits: u64,
    fired: u64,
}

/// Armed flag: the *only* state the disarmed fast path reads. It is true iff
/// at least one failpoint is configured.
static ARMED: AtomicBool = AtomicBool::new(false);

/// Process-total injections (all sites), mirrored per-site into ssr-obs.
static INJECTED_TOTAL: AtomicU64 = AtomicU64::new(0);

fn registry() -> MutexGuard<'static, HashMap<String, Failpoint>> {
    static POINTS: OnceLock<Mutex<HashMap<String, Failpoint>>> = OnceLock::new();
    POINTS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("failpoint registry poisoned")
}

/// SplitMix64 finalizer: a high-quality 64-bit mix, used for the seeded
/// probability trigger and exported for seeded jitter elsewhere in the
/// workspace (the wire client's backoff). Pure, so every consumer is
/// deterministic under a fixed seed.
pub fn mix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Whether any failpoint is configured. One relaxed load — the exact cost a
/// disarmed [`evaluate`] pays.
pub fn armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The failpoint hook. Call sites invoke this with their site name on every
/// pass through the risky path:
///
/// * disarmed (no failpoint configured anywhere): returns `None` after a
///   single relaxed atomic load — no lock, no allocation, no branch on the
///   site name;
/// * armed but this site unconfigured: counts nothing, returns `None`;
/// * armed and firing: a [`Action::Delay`] sleeps here and returns `None`, a
///   [`Action::Panic`] panics here, and the other actions return the
///   [`Fault`] the site must enact.
pub fn evaluate(name: &str) -> Option<Fault> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    evaluate_armed(name)
}

#[cold]
fn evaluate_armed(name: &str) -> Option<Fault> {
    let action = {
        let mut points = registry();
        let point = points.get_mut(name)?;
        point.hits += 1;
        let fires = match point.config.trigger {
            Trigger::Always => true,
            Trigger::NthHit(n) => point.hits == n,
            Trigger::EveryK(k) => k > 0 && point.hits % k == 0,
            Trigger::Probability { permille, seed } => {
                mix64(seed ^ mix64(point.hits)) % 1000 < u64::from(permille)
            }
        };
        if !fires {
            return None;
        }
        point.fired += 1;
        point.config.action
    };
    INJECTED_TOTAL.fetch_add(1, Ordering::Relaxed);
    ssr_obs::global()
        .counter_with(
            "ssr_faults_injected_total",
            "Faults injected by armed failpoints, by site.",
            Some(("site", name.to_string())),
        )
        .add(1);
    match action {
        Action::ReturnError => Some(Fault::Error),
        Action::PartialWrite(n) => Some(Fault::PartialWrite(n)),
        Action::Delay(ms) => {
            std::thread::sleep(Duration::from_millis(ms));
            None
        }
        Action::Panic => panic!("failpoint '{name}' fired: injected panic"),
    }
}

/// The `std::io::Error` an injected [`Fault::Error`] / [`Fault::PartialWrite`]
/// surfaces as. The message names the site, so chaos assertions (and humans
/// reading logs) can tell an injected failure from a real one.
pub fn injected_io_error(name: &str) -> std::io::Error {
    std::io::Error::other(format!("failpoint '{name}' injected failure"))
}

/// Configures (or reconfigures) one failpoint, resetting its hit counters
/// and arming the registry.
pub fn configure(name: &str, config: FailpointConfig) {
    let mut points = registry();
    points.insert(
        name.to_string(),
        Failpoint {
            config,
            hits: 0,
            fired: 0,
        },
    );
    drop(points);
    ARMED.store(true, Ordering::Relaxed);
}

/// Removes every failpoint and disarms the registry; [`evaluate`] is back to
/// its one-load fast path. The process-total injection tally is kept.
pub fn clear() {
    registry().clear();
    ARMED.store(false, Ordering::Relaxed);
}

/// Total faults injected by this process across all sites (monotonic; not
/// reset by [`clear`]).
pub fn injected_total() -> u64 {
    INJECTED_TOTAL.load(Ordering::Relaxed)
}

/// Hit/fired counters of every configured failpoint, sorted by name.
pub fn snapshot() -> Vec<FailpointStatus> {
    let points = registry();
    let mut out: Vec<FailpointStatus> = points
        .iter()
        .map(|(name, p)| FailpointStatus {
            name: name.clone(),
            config: p.config,
            hits: p.hits,
            fired: p.fired,
        })
        .collect();
    out.sort_by(|a, b| a.name.cmp(&b.name));
    out
}

/// Parses and applies a spec string (`name=trigger:action`, entries split on
/// `;` or `,` — see the module docs for the grammar). Returns the number of
/// failpoints configured. Empty entries are skipped, so a trailing separator
/// is harmless; any malformed entry is an `Err` naming the offending text,
/// and entries before it stay applied.
pub fn configure_str(spec: &str) -> Result<usize, String> {
    let mut configured = 0;
    for entry in spec.split([';', ',']) {
        let entry = entry.trim();
        if entry.is_empty() {
            continue;
        }
        let (name, rest) = entry
            .split_once('=')
            .ok_or_else(|| format!("failpoint entry '{entry}' is missing '='"))?;
        let (trigger, action) = rest.split_once(':').ok_or_else(|| {
            format!("failpoint entry '{entry}' is missing ':' between trigger and action")
        })?;
        let config = FailpointConfig {
            trigger: parse_trigger(trigger.trim())?,
            action: parse_action(action.trim())?,
        };
        let name = name.trim();
        if name.is_empty() {
            return Err(format!("failpoint entry '{entry}' has an empty name"));
        }
        configure(name, config);
        configured += 1;
    }
    Ok(configured)
}

/// Applies [`ENV_FAILPOINTS`] if set. Returns the number of failpoints
/// configured (0 when the variable is absent or empty). Binaries call this
/// once at startup; with the variable unset it touches nothing and the
/// registry stays disarmed.
pub fn init_from_env() -> Result<usize, String> {
    match std::env::var(ENV_FAILPOINTS) {
        Ok(spec) if !spec.trim().is_empty() => configure_str(&spec),
        _ => Ok(0),
    }
}

/// RAII ownership of the process-global failpoint registry.
///
/// The registry is shared by every test in a binary, so armed tests carry
/// two manual obligations: serialize against each other, and [`clear`] on
/// every exit path. `FailpointGuard` folds both into one value — creating
/// a guard takes a process-wide arming lock and clears any leftover state;
/// dropping it disarms the registry and resets every per-site hit counter
/// (by removing the sites), even when the test panics mid-way.
///
/// ```
/// let guard = ssr_fault::FailpointGuard::arm("wal.append=nth-1:error").unwrap();
/// assert!(ssr_fault::armed());
/// drop(guard);
/// assert!(!ssr_fault::armed());
/// ```
pub struct FailpointGuard {
    _serial: MutexGuard<'static, ()>,
}

/// The process-wide lock [`FailpointGuard`] serializes on. Poisoning is
/// recovered: a panicking armed test must not wedge every later one.
fn arming_lock() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|poison| poison.into_inner())
}

impl FailpointGuard {
    /// Takes the arming lock, clears leftover registry state and applies
    /// `spec` (the [`configure_str`] grammar). On a malformed spec the
    /// registry is left cleared and the error is returned.
    pub fn arm(spec: &str) -> Result<FailpointGuard, String> {
        let guard = FailpointGuard::disarmed();
        match configure_str(spec) {
            Ok(_) => Ok(guard),
            Err(err) => {
                clear();
                Err(err)
            }
        }
    }

    /// Takes the arming lock and clears the registry without configuring
    /// anything — for tests that must observe *disarmed* behavior without
    /// racing armed ones, or that arm later via [`FailpointGuard::rearm`].
    pub fn disarmed() -> FailpointGuard {
        let serial = arming_lock();
        clear();
        FailpointGuard { _serial: serial }
    }

    /// Replaces the armed configuration: clears every site (resetting hit
    /// counters), then applies `spec`. The serialization lock is already
    /// held, so mid-test reconfiguration stays race-free.
    pub fn rearm(&self, spec: &str) -> Result<usize, String> {
        clear();
        configure_str(spec)
    }

    /// Disarms the registry without releasing the serialization lock — the
    /// mid-test counterpart of dropping the guard.
    pub fn disarm(&self) {
        clear();
    }
}

impl Drop for FailpointGuard {
    fn drop(&mut self) {
        clear();
    }
}

/// Set of node names currently "killed" by [`kill_node`].
fn killed_registry() -> MutexGuard<'static, HashSet<String>> {
    static KILLED: OnceLock<Mutex<HashSet<String>>> = OnceLock::new();
    KILLED
        .get_or_init(|| Mutex::new(HashSet::new()))
        .lock()
        .expect("killed-node registry poisoned")
}

/// Fast path for [`node_killed`]: true iff at least one node is down.
static ANY_NODE_DOWN: AtomicBool = AtomicBool::new(false);

/// Throws the kill switch for `name`: a server bound with this node name
/// drops every new connection and abandons every in-flight one without a
/// response, modelling a crashed process whose port stays reserved. The
/// cluster chaos harness uses this to kill and restart nodes at exact,
/// seeded schedule points.
pub fn kill_node(name: &str) {
    let mut killed = killed_registry();
    killed.insert(name.to_string());
    ANY_NODE_DOWN.store(true, Ordering::Relaxed);
}

/// Clears the kill switch for `name` — the in-process "restart". The server
/// resumes accepting on its existing listener immediately.
pub fn revive_node(name: &str) {
    let mut killed = killed_registry();
    killed.remove(name);
    ANY_NODE_DOWN.store(!killed.is_empty(), Ordering::Relaxed);
}

/// Revives every killed node — harness teardown.
pub fn revive_all_nodes() {
    let mut killed = killed_registry();
    killed.clear();
    ANY_NODE_DOWN.store(false, Ordering::Relaxed);
}

/// Whether `name`'s kill switch is thrown. With no node killed anywhere
/// this is one relaxed atomic load, so production servers (which never call
/// [`kill_node`]) pay nothing per connection.
pub fn node_killed(name: &str) -> bool {
    if !ANY_NODE_DOWN.load(Ordering::Relaxed) {
        return false;
    }
    killed_registry().contains(name)
}

fn parse_trigger(text: &str) -> Result<Trigger, String> {
    if text == "always" {
        return Ok(Trigger::Always);
    }
    if let Some(n) = text.strip_prefix("nth-") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("bad nth-hit count in trigger '{text}'"))?;
        if n == 0 {
            return Err(format!("trigger '{text}': hits are 1-based"));
        }
        return Ok(Trigger::NthHit(n));
    }
    if let Some(k) = text.strip_prefix("every-") {
        let k: u64 = k
            .parse()
            .map_err(|_| format!("bad period in trigger '{text}'"))?;
        if k == 0 {
            return Err(format!("trigger '{text}': the period must be positive"));
        }
        return Ok(Trigger::EveryK(k));
    }
    if let Some(rest) = text.strip_prefix("prob-") {
        let (permille, seed) = match rest.split_once('-') {
            Some((p, s)) => (
                p.parse()
                    .map_err(|_| format!("bad permille in trigger '{text}'"))?,
                s.parse()
                    .map_err(|_| format!("bad seed in trigger '{text}'"))?,
            ),
            None => (
                rest.parse()
                    .map_err(|_| format!("bad permille in trigger '{text}'"))?,
                0,
            ),
        };
        if permille > 1000 {
            return Err(format!("trigger '{text}': permille exceeds 1000"));
        }
        return Ok(Trigger::Probability { permille, seed });
    }
    Err(format!("unknown trigger '{text}'"))
}

fn parse_action(text: &str) -> Result<Action, String> {
    match text {
        "error" => return Ok(Action::ReturnError),
        "panic" => return Ok(Action::Panic),
        _ => {}
    }
    if let Some(ms) = text.strip_prefix("delay-") {
        return ms
            .parse()
            .map(Action::Delay)
            .map_err(|_| format!("bad delay in action '{text}'"));
    }
    if let Some(n) = text.strip_prefix("partial-") {
        return n
            .parse()
            .map(Action::PartialWrite)
            .map_err(|_| format!("bad byte count in action '{text}'"));
    }
    Err(format!("unknown action '{text}'"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disarmed_evaluate_is_a_noop() {
        let _guard = FailpointGuard::disarmed();
        assert!(!armed());
        assert_eq!(evaluate("anything"), None);
    }

    #[test]
    fn nth_hit_fires_exactly_once() {
        let guard = FailpointGuard::disarmed();
        configure(
            "t.nth",
            FailpointConfig {
                trigger: Trigger::NthHit(3),
                action: Action::ReturnError,
            },
        );
        let fired: Vec<bool> = (0..6).map(|_| evaluate("t.nth").is_some()).collect();
        assert_eq!(fired, [false, false, true, false, false, false]);
        let status = &snapshot()[0];
        assert_eq!((status.hits, status.fired), (6, 1));
        drop(guard);
    }

    #[test]
    fn every_k_fires_periodically_and_unconfigured_sites_pass() {
        let _guard = FailpointGuard::disarmed();
        configure(
            "t.every",
            FailpointConfig {
                trigger: Trigger::EveryK(2),
                action: Action::PartialWrite(7),
            },
        );
        assert_eq!(evaluate("t.other"), None, "unconfigured site");
        let fired: Vec<Option<Fault>> = (0..4).map(|_| evaluate("t.every")).collect();
        assert_eq!(
            fired,
            [
                None,
                Some(Fault::PartialWrite(7)),
                None,
                Some(Fault::PartialWrite(7))
            ]
        );
    }

    #[test]
    fn probability_is_deterministic_per_seed() {
        let _guard = FailpointGuard::disarmed();
        let run = |seed: u64| -> Vec<bool> {
            configure(
                "t.prob",
                FailpointConfig {
                    trigger: Trigger::Probability {
                        permille: 500,
                        seed,
                    },
                    action: Action::ReturnError,
                },
            );
            (0..64).map(|_| evaluate("t.prob").is_some()).collect()
        };
        let a = run(42);
        let b = run(42);
        let c = run(43);
        assert_eq!(a, b, "same seed, same schedule");
        assert_ne!(a, c, "different seed, different schedule");
        let hits = a.iter().filter(|&&f| f).count();
        assert!((10..=54).contains(&hits), "500‰ fired {hits}/64 times");
    }

    #[test]
    fn spec_strings_parse_and_misparse() {
        let guard =
            FailpointGuard::arm("a.b=nth-2:error; c.d=every-3:delay-5,e.f=prob-250-9:partial-10;")
                .unwrap();
        let status = snapshot();
        assert_eq!(status.len(), 3);
        assert_eq!(
            status[0].config,
            FailpointConfig {
                trigger: Trigger::NthHit(2),
                action: Action::ReturnError
            }
        );
        assert_eq!(
            status[2].config,
            FailpointConfig {
                trigger: Trigger::Probability {
                    permille: 250,
                    seed: 9
                },
                action: Action::PartialWrite(10)
            }
        );
        for bad in [
            "noequals",
            "a=nocolon",
            "a=nth-0:error",
            "a=nth-2:explode",
            "a=prob-2000:error",
            "=always:error",
        ] {
            assert!(guard.rearm(bad).is_err(), "spec '{bad}' should fail");
        }
    }

    #[test]
    fn injected_errors_name_the_site() {
        let err = injected_io_error("wal.append");
        assert!(err.to_string().contains("failpoint 'wal.append'"));
    }

    #[test]
    #[should_panic(expected = "failpoint 't.panic' fired: injected panic")]
    fn panic_action_panics_inside_evaluate() {
        // The panic poisons the arming lock; later guards recover it with
        // `into_inner` and the dropped guard still disarms the registry.
        let _guard = FailpointGuard::disarmed();
        configure(
            "t.panic",
            FailpointConfig {
                trigger: Trigger::Always,
                action: Action::Panic,
            },
        );
        let _ = evaluate("t.panic");
    }

    #[test]
    fn guard_drop_disarms_and_resets_counters() {
        {
            let _guard = FailpointGuard::arm("t.guarded=always:error").unwrap();
            assert!(armed());
            assert_eq!(evaluate("t.guarded"), Some(Fault::Error));
            assert_eq!(snapshot()[0].hits, 1);
        }
        // Out of scope: disarmed, every site (and its counters) gone.
        let _check = FailpointGuard::disarmed();
        assert!(!armed());
        assert!(snapshot().is_empty());
    }

    #[test]
    fn guard_rearm_replaces_the_schedule_atomically() {
        let guard = FailpointGuard::arm("t.one=always:error").unwrap();
        assert_eq!(evaluate("t.one"), Some(Fault::Error));
        guard.rearm("t.two=always:partial-3").unwrap();
        assert_eq!(evaluate("t.one"), None, "old site is gone");
        assert_eq!(evaluate("t.two"), Some(Fault::PartialWrite(3)));
        assert_eq!(snapshot().len(), 1);
        guard.disarm();
        assert!(!armed());
    }

    #[test]
    fn a_malformed_guard_spec_leaves_the_registry_disarmed() {
        assert!(FailpointGuard::arm("broken-spec").is_err());
        let _check = FailpointGuard::disarmed();
        assert!(!armed());
    }

    #[test]
    fn node_kill_switch_is_cheap_scoped_and_reversible() {
        revive_all_nodes();
        assert!(!node_killed("node-a"), "nothing killed yet");
        kill_node("node-a");
        assert!(node_killed("node-a"));
        assert!(!node_killed("node-b"), "the switch is per node");
        kill_node("node-b");
        revive_node("node-a");
        assert!(!node_killed("node-a"));
        assert!(node_killed("node-b"));
        revive_all_nodes();
        assert!(!node_killed("node-b"));
    }
}
