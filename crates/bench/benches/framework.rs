//! End-to-end framework benchmarks: database construction and the three query
//! types on the synthetic PROTEINS workload.

use criterion::{criterion_group, criterion_main, Criterion};

use ssr_core::{FrameworkConfig, IndexBackend, SubsequenceDatabase};
use ssr_datagen::{generate_proteins, plant_query, ProteinConfig, QueryConfig, SymbolMutator};
use ssr_distance::Levenshtein;

fn bench_framework(c: &mut Criterion) {
    let lambda = 40;
    let proteins = generate_proteins(&ProteinConfig::sized_for_windows(800, lambda / 2, 7));
    let planted = plant_query(
        &proteins,
        &SymbolMutator,
        &QueryConfig {
            planted_len: 60,
            context_len: 15,
            perturbation_rate: 0.05,
            seed: 99,
        },
    )
    .expect("plantable query");

    let mut group = c.benchmark_group("framework_proteins_800_windows");
    group.sample_size(10);

    group.bench_function("build_reference_net_database", |b| {
        b.iter(|| {
            SubsequenceDatabase::builder(
                FrameworkConfig::new(lambda).with_max_shift(2),
                Levenshtein::new(),
            )
            .add_dataset(&proteins)
            .build()
            .unwrap()
            .window_count()
        })
    });

    for backend in [IndexBackend::ReferenceNet, IndexBackend::LinearScan] {
        let db = SubsequenceDatabase::builder(
            FrameworkConfig::new(lambda)
                .with_max_shift(2)
                .with_backend(backend),
            Levenshtein::new(),
        )
        .add_dataset(&proteins)
        .build()
        .unwrap();
        group.bench_function(format!("type2_longest_{backend}"), |b| {
            b.iter(|| db.query_type2(&planted.query, 6.0).result.is_some())
        });
        group.bench_function(format!("type3_nearest_{backend}"), |b| {
            b.iter(|| db.query_type3(&planted.query, 10.0, 2.0).result.is_some())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_framework);
criterion_main!(benches);
