//! Index construction cost (the offline step 2 of the framework), feeding the
//! space-overhead discussion of Figures 5–7.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssr_bench::{build_index, protein_windows, song_windows, IndexChoice};
use ssr_distance::{DiscreteFrechet, Levenshtein};

fn bench_index_build(c: &mut Criterion) {
    let proteins = protein_windows(600, 1);
    let songs = song_windows(600, 2);

    let mut group = c.benchmark_group("index_build_600_windows");
    group.sample_size(10);

    for choice in [
        IndexChoice::ReferenceNet,
        IndexChoice::ReferenceNetCapped(5),
        IndexChoice::CoverTree,
        IndexChoice::MaxVariance(5),
    ] {
        group.bench_function(
            BenchmarkId::new("proteins_levenshtein", choice.label()),
            |b| b.iter(|| build_index(choice, &proteins, Levenshtein::new()).len()),
        );
        group.bench_function(BenchmarkId::new("songs_dfd", choice.label()), |b| {
            b.iter(|| build_index(choice, &songs, DiscreteFrechet::new()).len())
        });
    }
    group.finish();
}

criterion_group!(benches, bench_index_build);
criterion_main!(benches);
