//! Range-query cost per index structure and radius — the wall-clock companion
//! to the pruning-ratio measurements of Figures 8–11.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssr_bench::{build_index, protein_windows, song_windows, IndexChoice, QuerySet};
use ssr_distance::{DiscreteFrechet, Levenshtein};

fn bench_range_queries(c: &mut Criterion) {
    let mut protein_all = protein_windows(1_200, 1);
    let protein_pool = protein_all.split_off(1_000);
    let mut song_all = song_windows(1_200, 2);
    let song_pool = song_all.split_off(1_000);

    let protein_queries = QuerySet::from_pool(&protein_pool, 5);
    let song_queries = QuerySet::from_pool(&song_pool, 5);

    let mut group = c.benchmark_group("range_query_1000_windows");
    group.sample_size(20);

    for choice in [
        IndexChoice::ReferenceNet,
        IndexChoice::CoverTree,
        IndexChoice::MaxVariance(5),
        IndexChoice::Linear,
    ] {
        let protein_index = build_index(choice, &protein_all, Levenshtein::new());
        for radius in [2.0, 4.0] {
            group.bench_function(
                BenchmarkId::new(format!("proteins_lev_r{radius}"), choice.label()),
                |b| {
                    b.iter(|| {
                        let mut hits = 0usize;
                        for q in &protein_queries.queries {
                            hits += protein_index.range_query_count(q, radius);
                        }
                        hits
                    })
                },
            );
        }
        let song_index = build_index(choice, &song_all, DiscreteFrechet::new());
        group.bench_function(BenchmarkId::new("songs_dfd_r2", choice.label()), |b| {
            b.iter(|| {
                let mut hits = 0usize;
                for q in &song_queries.queries {
                    hits += song_index.range_query_count(q, 2.0);
                }
                hits
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_range_queries);
criterion_main!(benches);
