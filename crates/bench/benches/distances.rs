//! Microbenchmarks of the distance functions on window-length inputs
//! (the unit of work every index operation and every figure is built from).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};

use ssr_bench::{protein_windows, song_windows, traj_windows};
use ssr_distance::{DiscreteFrechet, Dtw, Erp, Euclidean, Hamming, Levenshtein, SequenceDistance};
use ssr_sequence::Element;

fn sum_pairwise<E: Element, D: SequenceDistance<E>>(d: &D, windows: &[Vec<E>]) -> f64 {
    let mut acc = 0.0;
    for pair in windows.chunks(2) {
        acc += d.distance(&pair[0], &pair[pair.len() - 1]);
    }
    acc
}

fn bench_distances(c: &mut Criterion) {
    let proteins = protein_windows(64, 1);
    let songs = song_windows(64, 2);
    let trajs = traj_windows(64, 3);

    let mut group = c.benchmark_group("distance_window20");
    group.sample_size(40);

    group.bench_function(BenchmarkId::new("levenshtein", "proteins"), |b| {
        b.iter(|| sum_pairwise(&Levenshtein::new(), &proteins))
    });
    group.bench_function(BenchmarkId::new("hamming", "proteins"), |b| {
        b.iter(|| sum_pairwise(&Hamming::new(), &proteins))
    });
    group.bench_function(BenchmarkId::new("dfd", "songs"), |b| {
        b.iter(|| sum_pairwise(&DiscreteFrechet::new(), &songs))
    });
    group.bench_function(BenchmarkId::new("erp", "songs"), |b| {
        b.iter(|| sum_pairwise(&Erp::new(), &songs))
    });
    group.bench_function(BenchmarkId::new("dtw", "songs"), |b| {
        b.iter(|| sum_pairwise(&Dtw::new(), &songs))
    });
    group.bench_function(BenchmarkId::new("erp", "traj"), |b| {
        b.iter(|| sum_pairwise(&Erp::new(), &trajs))
    });
    group.bench_function(BenchmarkId::new("euclidean", "traj"), |b| {
        b.iter(|| sum_pairwise(&Euclidean::new(), &trajs))
    });
    group.finish();
}

criterion_group!(benches, bench_distances);
criterion_main!(benches);
