//! Regenerates every figure of the paper's evaluation (Section 8) from the
//! synthetic datasets, printing each as an aligned text table.
//!
//! ```text
//! cargo run --release -p ssr-bench --bin figures -- <figure> [--scale small|medium|full]
//!
//! <figure> ∈ { fig4, fig5, fig6, fig7, fig8, fig9, fig10, fig11, fig12,
//!              ablation-nummax, ablation-eps, all }
//! ```
//!
//! Absolute values differ from the paper (synthetic data, different machine);
//! EXPERIMENTS.md records the measured numbers next to the paper's and
//! discusses where the shapes agree.

use ssr_bench::{
    build_index, distance_histogram, print_header, print_table, protein_windows, pruning_ratio,
    song_windows, traj_windows, IndexChoice, QuerySet, Scale, Table,
};
use ssr_core::{build_candidates, FrameworkConfig, SubsequenceDatabase};
use ssr_datagen::{generate_proteins, ProteinConfig};
use ssr_distance::{DiscreteFrechet, Erp, Levenshtein, SequenceDistance};
use ssr_sequence::{Element, Sequence};

use ssr_bench::datasets::WINDOW_LEN;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut figure = "all".to_string();
    let mut scale = Scale::Small;
    let mut i = 0;
    while i < args.len() {
        match args[i].as_str() {
            "--scale" => {
                i += 1;
                scale = args
                    .get(i)
                    .and_then(|s| Scale::parse(s))
                    .unwrap_or_else(|| {
                        eprintln!("unknown scale; expected small|medium|full");
                        std::process::exit(2);
                    });
            }
            "--help" | "-h" => {
                eprintln!(
                    "usage: figures [fig4..fig12|ablation-nummax|ablation-eps|all] \
                     [--scale small|medium|full]"
                );
                return;
            }
            other => figure = other.to_string(),
        }
        i += 1;
    }

    println!("# Subsequence-retrieval figure harness (scale: {scale:?})");
    let run = |name: &str| figure == "all" || figure == name;
    let mut ran_any = false;
    if run("fig4") {
        fig4(scale);
        ran_any = true;
    }
    if run("fig5") {
        fig5(scale);
        ran_any = true;
    }
    if run("fig6") {
        fig6(scale);
        ran_any = true;
    }
    if run("fig7") {
        fig7(scale);
        ran_any = true;
    }
    if run("fig8") {
        fig8(scale);
        ran_any = true;
    }
    if run("fig9") {
        fig9(scale);
        ran_any = true;
    }
    if run("fig10") {
        fig10(scale);
        ran_any = true;
    }
    if run("fig11") {
        fig11(scale);
        ran_any = true;
    }
    if run("fig12") {
        fig12(scale);
        ran_any = true;
    }
    if run("ablation-nummax") {
        ablation_nummax(scale);
        ran_any = true;
    }
    if run("ablation-eps") {
        ablation_eps(scale);
        ran_any = true;
    }
    if !ran_any {
        eprintln!(
            "unknown figure {figure:?}; expected fig4..fig12, ablation-nummax, ablation-eps or all"
        );
        std::process::exit(2);
    }
}

fn fmt(v: f64) -> String {
    if v >= 100.0 {
        format!("{v:.0}")
    } else if v >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

/// Figure 4: pairwise distance distributions per dataset and distance.
fn fig4(scale: Scale) {
    print_header(
        "Figure 4",
        "distance distributions for the three datasets and their distance functions",
    );
    let sample = 3_000.min(scale.protein_windows());
    let proteins = protein_windows(sample, 1);
    let songs = song_windows(sample, 2);
    let trajs = traj_windows(sample, 3);

    histogram_table("PROTEINS / Levenshtein", &proteins, &Levenshtein::new());
    histogram_table("SONGS / DFD", &songs, &DiscreteFrechet::new());
    histogram_table("SONGS / ERP", &songs, &Erp::new());
    histogram_table("TRAJ / DFD", &trajs, &DiscreteFrechet::new());
    histogram_table("TRAJ / ERP", &trajs, &Erp::new());
}

fn histogram_table<E, D>(name: &str, windows: &[Vec<E>], distance: &D)
where
    E: Element,
    D: SequenceDistance<E>,
{
    // First pass to find the sampled maximum so buckets cover the real range.
    const BUCKETS: usize = 12;
    const PAIRS: usize = 20_000;
    let mut max_seen = 0.0f64;
    // Sample a subset of pairs to estimate the maximum.
    let stride = (windows.len() / 60).max(1);
    for (i, a) in windows.iter().step_by(stride).enumerate() {
        for b in windows.iter().step_by(stride).skip(i + 1) {
            max_seen = max_seen.max(distance.distance(a, b));
        }
    }
    let max_value = if max_seen > 0.0 { max_seen } else { 1.0 };
    let hist = distance_histogram(windows, distance, max_value, BUCKETS, PAIRS);
    let mut table = Table::new(
        format!("{name} (sampled max distance {:.2})", max_value),
        &["distance bucket", "fraction of pairs"],
    );
    for (b, frac) in hist.iter().enumerate() {
        let lo = max_value * b as f64 / BUCKETS as f64;
        let hi = max_value * (b + 1) as f64 / BUCKETS as f64;
        table.push_row(vec![format!("{lo:.1} – {hi:.1}"), fmt(*frac)]);
    }
    print_table(&table);
}

/// Figure 5: space overhead of the Reference Net on PROTEINS / Levenshtein.
fn fig5(scale: Scale) {
    print_header(
        "Figure 5",
        "Reference Net space overhead on PROTEINS (Levenshtein), vs. number of windows",
    );
    let target = scale.protein_windows();
    let mut table = Table::new(
        "PROTEINS space overhead (epsilon' = 1)",
        &[
            "windows",
            "RN list entries (K)",
            "RN avg parents",
            "RN size (MiB)",
            "CT size (MiB)",
            "RN/CT entries",
        ],
    );
    for fraction in [0.2, 0.4, 0.6, 0.8, 1.0] {
        let count = ((target as f64 * fraction) as usize).max(100);
        let windows = protein_windows(count, 1);
        let rn = build_index(IndexChoice::ReferenceNet, &windows, Levenshtein::new());
        let ct = build_index(IndexChoice::CoverTree, &windows, Levenshtein::new());
        let rn_stats = rn.space_stats();
        let ct_stats = ct.space_stats();
        table.push_row(vec![
            windows.len().to_string(),
            fmt(rn_stats.entries as f64 / 1000.0),
            fmt(rn_stats.avg_parents),
            fmt(rn_stats.estimated_mib()),
            fmt(ct_stats.estimated_mib()),
            fmt(rn_stats.entries as f64 / ct_stats.entries.max(1) as f64),
        ]);
    }
    print_table(&table);
}

/// Figure 6: space overhead on SONGS, comparing DFD, DFD-5 and ERP.
fn fig6(scale: Scale) {
    print_header(
        "Figure 6",
        "Reference Net space overhead on SONGS: DFD vs DFD-5 (nummax=5) vs ERP",
    );
    let target = scale.song_windows();
    let mut table = Table::new(
        "SONGS space overhead",
        &[
            "windows",
            "DFD entries",
            "DFD parents",
            "DFD MiB",
            "DFD-5 entries",
            "DFD-5 parents",
            "DFD-5 MiB",
            "ERP entries",
            "ERP parents",
            "ERP MiB",
        ],
    );
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let count = ((target as f64 * fraction) as usize).max(100);
        let windows = song_windows(count, 2);
        let dfd = build_index(IndexChoice::ReferenceNet, &windows, DiscreteFrechet::new());
        let dfd5 = build_index(
            IndexChoice::ReferenceNetCapped(5),
            &windows,
            DiscreteFrechet::new(),
        );
        let erp = build_index(IndexChoice::ReferenceNet, &windows, Erp::new());
        let (a, b, c) = (dfd.space_stats(), dfd5.space_stats(), erp.space_stats());
        table.push_row(vec![
            windows.len().to_string(),
            a.entries.to_string(),
            fmt(a.avg_parents),
            fmt(a.estimated_mib()),
            b.entries.to_string(),
            fmt(b.avg_parents),
            fmt(b.estimated_mib()),
            c.entries.to_string(),
            fmt(c.avg_parents),
            fmt(c.estimated_mib()),
        ]);
    }
    print_table(&table);
}

/// Figure 7: space overhead on TRAJ for DFD and ERP.
fn fig7(scale: Scale) {
    print_header(
        "Figure 7",
        "Reference Net space overhead on TRAJ: DFD vs ERP (wide distance distribution)",
    );
    let target = scale.traj_windows();
    let mut table = Table::new(
        "TRAJ space overhead",
        &[
            "windows",
            "DFD entries",
            "DFD parents",
            "DFD MiB",
            "ERP entries",
            "ERP parents",
            "ERP MiB",
            "CT entries",
        ],
    );
    for fraction in [0.25, 0.5, 0.75, 1.0] {
        let count = ((target as f64 * fraction) as usize).max(100);
        let windows = traj_windows(count, 3);
        let dfd = build_index(IndexChoice::ReferenceNet, &windows, DiscreteFrechet::new());
        let erp = build_index(IndexChoice::ReferenceNet, &windows, Erp::new());
        let ct = build_index(IndexChoice::CoverTree, &windows, Erp::new());
        let (a, b, c) = (dfd.space_stats(), erp.space_stats(), ct.space_stats());
        table.push_row(vec![
            windows.len().to_string(),
            a.entries.to_string(),
            fmt(a.avg_parents),
            fmt(a.estimated_mib()),
            b.entries.to_string(),
            fmt(b.avg_parents),
            fmt(b.estimated_mib()),
            c.entries.to_string(),
        ]);
    }
    print_table(&table);
}

/// Shared driver for the query-performance figures (8–11).
fn query_performance_figure<E, D>(
    title: &str,
    windows: Vec<Vec<E>>,
    query_pool: Vec<Vec<E>>,
    distance: D,
    choices: &[IndexChoice],
    radii: &[f64],
) where
    E: Element + Send + Sync,
    D: SequenceDistance<E> + Clone,
{
    let queries = QuerySet::from_pool(&query_pool, 10);
    let mut handles = Vec::new();
    for &choice in choices {
        handles.push((choice, build_index(choice, &windows, distance.clone())));
    }
    let mut header: Vec<String> = vec!["range".to_string(), "avg results".to_string()];
    header.extend(choices.iter().map(|c| format!("{} %dist", c.label())));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(
        format!(
            "{title} ({} windows, {} queries)",
            windows.len(),
            queries.queries.len()
        ),
        &header_refs,
    );
    for &radius in radii {
        let mut row = vec![fmt(radius)];
        let mut results_cell = String::new();
        let mut ratios = Vec::new();
        for (_, handle) in &handles {
            let (ratio, avg_results) = pruning_ratio(handle, &queries, radius);
            if results_cell.is_empty() {
                results_cell = fmt(avg_results);
            }
            ratios.push(ratio);
        }
        row.push(results_cell);
        row.extend(ratios.iter().map(|r| fmt(r * 100.0)));
        table.push_row(row);
    }
    print_table(&table);
}

/// Figure 8: query performance on PROTEINS under Levenshtein.
fn fig8(scale: Scale) {
    print_header(
        "Figure 8",
        "percentage of distance computations vs naive scan, PROTEINS + Levenshtein",
    );
    let mut all = protein_windows(scale.protein_windows() + 400, 1);
    let pool = all.split_off(all.len().saturating_sub(400));
    let windows = all;
    query_performance_figure(
        "PROTEINS + Levenshtein",
        windows,
        pool,
        Levenshtein::new(),
        &[
            IndexChoice::ReferenceNet,
            IndexChoice::CoverTree,
            IndexChoice::MaxVariance(5),
            IndexChoice::MaxVariance(50),
        ],
        &[0.5, 1.0, 2.0, 3.0, 4.0, 6.0, 8.0, 10.0],
    );
}

/// Figure 9: query performance on SONGS under the discrete Fréchet distance.
fn fig9(scale: Scale) {
    print_header(
        "Figure 9",
        "percentage of distance computations vs naive scan, SONGS + DFD",
    );
    let mut all = song_windows(scale.song_windows() + 400, 2);
    let pool = all.split_off(all.len().saturating_sub(400));
    let windows = all;
    query_performance_figure(
        "SONGS + DFD",
        windows,
        pool,
        DiscreteFrechet::new(),
        &[
            IndexChoice::ReferenceNet,
            IndexChoice::ReferenceNetCapped(5),
            IndexChoice::CoverTree,
            IndexChoice::MaxVariance(5),
        ],
        &[0.5, 1.0, 1.5, 2.0, 2.5, 3.0, 4.0, 5.0],
    );
}

/// Radii derived from the sampled distance distribution (percentile values),
/// used for the TRAJ figures where distances are not integer-valued.
fn percentile_radii<E, D>(windows: &[Vec<E>], distance: &D) -> Vec<f64>
where
    E: Element,
    D: SequenceDistance<E>,
{
    let mut sample = Vec::new();
    let stride = (windows.len() / 80).max(1);
    for (i, a) in windows.iter().step_by(stride).enumerate() {
        for b in windows.iter().step_by(stride).skip(i + 1) {
            sample.push(distance.distance(a, b));
        }
    }
    sample.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    [0.01, 0.05, 0.10, 0.25, 0.50]
        .iter()
        .map(|p| sample[((sample.len() - 1) as f64 * p) as usize])
        .collect()
}

/// Figure 10: query performance on TRAJ under ERP.
fn fig10(scale: Scale) {
    print_header(
        "Figure 10",
        "percentage of distance computations vs naive scan, TRAJ + ERP \
         (radii at the 1/5/10/25/50th distance percentiles)",
    );
    let mut all = traj_windows(scale.traj_windows() + 400, 3);
    let pool = all.split_off(all.len().saturating_sub(400));
    let windows = all;
    let radii = percentile_radii(&windows, &Erp::new());
    query_performance_figure(
        "TRAJ + ERP",
        windows,
        pool,
        Erp::new(),
        &[
            IndexChoice::ReferenceNet,
            IndexChoice::CoverTree,
            IndexChoice::MaxVariance(20),
        ],
        &radii,
    );
}

/// Figure 11: query performance on TRAJ under the discrete Fréchet distance.
fn fig11(scale: Scale) {
    print_header(
        "Figure 11",
        "percentage of distance computations vs naive scan, TRAJ + DFD",
    );
    let mut all = traj_windows(scale.traj_windows() + 400, 3);
    let pool = all.split_off(all.len().saturating_sub(400));
    let windows = all;
    let radii = percentile_radii(&windows, &DiscreteFrechet::new());
    query_performance_figure(
        "TRAJ + DFD",
        windows,
        pool,
        DiscreteFrechet::new(),
        &[
            IndexChoice::ReferenceNet,
            IndexChoice::CoverTree,
            IndexChoice::MaxVariance(20),
        ],
        &radii,
    );
}

/// Figure 12: unique vs consecutive matching windows on PROTEINS as ε grows.
fn fig12(scale: Scale) {
    print_header(
        "Figure 12",
        "PROTEINS: unique matching windows and consecutive (>=2) matching windows vs epsilon",
    );
    let lambda = 2 * WINDOW_LEN;
    let target = scale.protein_windows().min(10_000);
    let proteins = generate_proteins(&ProteinConfig::sized_for_windows(target, WINDOW_LEN, 1));
    let config = FrameworkConfig::new(lambda).with_max_shift(2);
    let db = SubsequenceDatabase::builder(config.clone(), Levenshtein::new())
        .add_dataset(&proteins)
        .build()
        .expect("database builds");
    let total_windows = db.window_count();

    // "Random queries of size similar to the smallest proteins in the dataset":
    // independently generated protein sequences of ~60 residues.
    let query_source = generate_proteins(&ProteinConfig {
        num_sequences: 2,
        min_len: 60,
        max_len: 60,
        seed: 4242,
        ..Default::default()
    });
    let queries: Vec<Sequence<_>> = query_source.iter().map(|(_, s)| s.clone()).collect();

    let mut table = Table::new(
        format!("PROTEINS-{total_windows} window matches vs epsilon"),
        &[
            "epsilon",
            "% unique matching windows",
            "% windows in consecutive chains",
        ],
    );
    for epsilon in (2..=20).step_by(2) {
        let mut unique = 0usize;
        let mut consecutive = 0usize;
        for q in &queries {
            let scan = db.matching_segments(q, epsilon as f64);
            let matches = scan.matches;
            let mut windows_hit: Vec<usize> = matches.iter().map(|m| m.window.0).collect();
            windows_hit.sort_unstable();
            windows_hit.dedup();
            unique += windows_hit.len();
            let candidates = build_candidates(&matches, config.window_len(), config.max_shift);
            consecutive += candidates
                .iter()
                .filter(|c| c.chain_len >= 2)
                .map(|c| c.chain_len)
                .sum::<usize>();
        }
        let denom = (queries.len() * total_windows) as f64;
        table.push_row(vec![
            epsilon.to_string(),
            fmt(unique as f64 / denom * 100.0),
            fmt((consecutive as f64 / denom * 100.0).min(100.0)),
        ]);
    }
    print_table(&table);
}

/// Ablation: effect of the `nummax` parent cap on space and pruning (SONGS + DFD).
fn ablation_nummax(scale: Scale) {
    print_header(
        "Ablation",
        "nummax parent cap: space vs pruning trade-off on SONGS + DFD",
    );
    let windows = song_windows(scale.song_windows(), 2);
    let pool = song_windows(200, 95);
    let queries = QuerySet::from_pool(&pool, 8);
    let mut table = Table::new(
        "nummax ablation (SONGS + DFD)",
        &[
            "nummax",
            "list entries",
            "avg parents",
            "MiB",
            "%dist @ r=1",
            "%dist @ r=2",
            "%dist @ r=3",
        ],
    );
    let choices = [
        (IndexChoice::ReferenceNetCapped(1), "1"),
        (IndexChoice::ReferenceNetCapped(2), "2"),
        (IndexChoice::ReferenceNetCapped(5), "5"),
        (IndexChoice::ReferenceNet, "unlimited"),
    ];
    for (choice, label) in choices {
        let handle = build_index(choice, &windows, DiscreteFrechet::new());
        let stats = handle.space_stats();
        let mut row = vec![
            label.to_string(),
            stats.entries.to_string(),
            fmt(stats.avg_parents),
            fmt(stats.estimated_mib()),
        ];
        for radius in [1.0, 2.0, 3.0] {
            let (ratio, _) = pruning_ratio(&handle, &queries, radius);
            row.push(fmt(ratio * 100.0));
        }
        table.push_row(row);
    }
    print_table(&table);
}

/// Ablation: effect of the base radius `ǫ'` on the Reference Net (PROTEINS).
fn ablation_eps(scale: Scale) {
    print_header(
        "Ablation",
        "base radius epsilon': hierarchy shape vs pruning on PROTEINS + Levenshtein",
    );
    let windows = protein_windows(scale.protein_windows().min(4_000), 1);
    let pool = protein_windows(200, 96);
    let queries = QuerySet::from_pool(&pool, 8);
    let mut table = Table::new(
        "epsilon' ablation (PROTEINS + Levenshtein)",
        &[
            "epsilon'",
            "levels",
            "list entries",
            "avg parents",
            "%dist @ r=2",
            "%dist @ r=4",
        ],
    );
    for eps in [0.5, 1.0, 2.0, 4.0] {
        use ssr_distance::CallCounter;
        use ssr_index::{
            CountingMetric, RangeIndex, ReferenceNet, ReferenceNetConfig, SequenceMetricAdapter,
        };
        let counter = CallCounter::new();
        let metric = CountingMetric::new(
            SequenceMetricAdapter::new(Levenshtein::new()),
            counter.clone(),
        );
        let mut idx =
            ReferenceNet::with_config(metric, ReferenceNetConfig::with_epsilon_prime(eps));
        idx.extend(windows.iter().cloned());
        let stats = idx.space_stats();
        let mut row = vec![
            fmt(eps),
            stats.levels.to_string(),
            stats.entries.to_string(),
            fmt(stats.avg_parents),
        ];
        for radius in [2.0, 4.0] {
            counter.reset();
            for q in &queries.queries {
                let _ = idx.range_query(q, radius);
            }
            let ratio =
                counter.reset() as f64 / (queries.queries.len() as f64 * windows.len() as f64);
            row.push(fmt(ratio * 100.0));
        }
        table.push_row(row);
    }
    print_table(&table);
}
