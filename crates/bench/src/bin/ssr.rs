//! `ssr` — build, inspect and query on-disk database snapshots.
//!
//! ```text
//! ssr build   [--dataset dna|proteins|songs|traj] [--windows N] [--seed S]
//!             [--lambda L] [--max-shift S] [--backend reference-net|cover-tree|mv-K|linear-scan]
//!             [--threads N] [--out PATH]
//! ssr info    PATH [--json]
//! ssr query   PATH (--plant SEED | --text STRING) [--type 1|2|3] [--epsilon X]
//!             [--epsilon-max X] [--epsilon-increment X]
//! ssr append  PATH --text STRING [--label L]
//! ssr remove  PATH --sequence N
//! ssr compact PATH
//! ssr serve   PATH [--addr HOST:PORT] [--workers N] [--replicas N]
//!             [--queue-depth N] [--cache-shards N] [--cache-capacity N]
//!             [--slow-query-ms N] [--failpoint SPEC]
//! ssr stats   ADDR [--check] [--json]
//! ssr drain   ADDR
//! ssr cluster ADDR1,ADDR2,... query --text STRING [--type 1|2|3] [--epsilon X]
//!             [--epsilon-max X] [--epsilon-increment X] [--hedge-ms N]
//! ssr cluster ADDR1,ADDR2,... stats
//! ssr cluster ADDR1,ADDR2,... drain
//! ```
//!
//! `build` generates one of the four synthetic datasets, runs steps 1–2 of
//! the framework (window partitioning + metric index construction) and
//! writes the result as a versioned, checksummed snapshot. `info` prints the
//! snapshot's manifest, per-section byte sizes and the state of the WAL
//! sibling (if any) without needing to know the element type. `query`
//! cold-starts a database from the snapshot — loading it instead of
//! rebuilding — and answers a Type I/II/III query against it, printing
//! matches, statistics and the load wall-clock.
//!
//! `append`, `remove` and `compact` mutate a snapshot through its
//! write-ahead log: each operation is logged durably in the `.wal` sibling
//! and applied to the in-memory database incrementally; `compact` folds the
//! log into a fresh snapshot and truncates it. Opening a snapshot always
//! replays its WAL, so `query` and `info` observe pending mutations too.
//!
//! `serve` cold-starts the database the same way and exposes it over a TCP
//! wire protocol (see `ssr_core::serve`): a worker pool behind a bounded
//! admission queue, a sharded result cache, and optional read-only replicas
//! sharing one element arena. It runs in the foreground until a client sends
//! a wire `Shutdown`. `bench --serve ADDR` is the matching load generator.
//! `info --json` emits the same facts as `info` machine-readably (plus the
//! pending-WAL op counts), for scripts and the CI smoke job.
//!
//! `stats` scrapes a *running* server's telemetry over the wire: by default
//! it prints the raw Prometheus text exposition (pipe it into any scraper);
//! `--check` additionally validates the exposition and the presence of the
//! core metric families, exiting nonzero otherwise (the CI serve-smoke job
//! runs this mid-load); `--json` prints the wire Stats snapshot — uptime,
//! cache occupancy and byte estimate included — as one JSON object.
//! `serve --slow-query-ms N` dumps a span tree plus the per-query
//! statistics to stderr for every query batch slower than `N` milliseconds.
//!
//! `drain` asks a running server to stop gracefully: in-flight work
//! finishes, new queries are refused with a typed `Draining` error, probes
//! keep answering, and the process exits once the worker pool empties. It is
//! the scripted counterpart to a wire `Shutdown`. For failure drills,
//! `serve --failpoint SPEC` (or the `SSR_FAILPOINTS` environment variable,
//! honored by every subcommand) arms deterministic fault-injection sites —
//! see `ssr_fault` and ARCHITECTURE.md for the site map and the
//! `name=trigger:action` grammar.
//!
//! `cluster` speaks to N servers at once through `ssr_cluster`'s
//! fault-tolerant client: `query` routes one query by seeded
//! power-of-two-choices over the healthy nodes, fails over across nodes on
//! node-level failures (circuit breakers quarantine repeat offenders), and
//! optionally hedges with `--hedge-ms` (`0` hedges immediately); it prints
//! the matches plus the failover/hedge counters the request spent. `stats`
//! and `drain` fan out to every node individually and report per-node
//! outcomes — a dead node fails its own line without blocking the rest.
//!
//! Each dataset is bound to its paper distance: DNA and PROTEINS use
//! Levenshtein over symbols, SONGS uses ERP over pitches, TRAJ uses the
//! discrete Fréchet distance over 2-D points. The snapshot manifest records
//! both tags, and `query`/`info` dispatch on them.

use std::time::Instant;

use ssr_bench::json::JsonValue;
use ssr_core::live::count_op_kinds;
use ssr_core::storage::SnapshotManifest;
use ssr_core::{
    wal_path_for, FrameworkConfig, IndexBackend, LiveDatabase, QueryOutcome, ServeConfig, Server,
    SubsequenceDatabase,
};
use ssr_datagen::{
    generate_dna, generate_proteins, generate_songs, generate_trajectories, plant_query, DnaConfig,
    PitchMutator, PointMutator, ProteinConfig, QueryConfig, QueryMutator, SongsConfig,
    SymbolMutator, TrajConfig,
};
use ssr_distance::{DiscreteFrechet, Erp, Levenshtein, SequenceDistance};
use ssr_sequence::{Element, Pitch, Point2D, Sequence, SequenceDataset, Symbol};
use ssr_storage::{Snapshot, StorableElement, StorageError, WalBinding};

fn usage() -> ! {
    eprintln!(
        "usage:\n  ssr build [--dataset dna|proteins|songs|traj] [--windows N] [--seed S] \
         [--lambda L] [--max-shift S] [--backend reference-net|cover-tree|mv-K|linear-scan] \
         [--threads N] [--out PATH]\n  ssr info PATH [--json]\n  ssr query PATH (--plant SEED | \
         --text STRING) [--type 1|2|3] [--epsilon X] [--epsilon-max X] [--epsilon-increment X]\n  \
         ssr append PATH --text STRING [--label L]\n  ssr remove PATH --sequence N\n  \
         ssr compact PATH\n  ssr serve PATH [--addr HOST:PORT] [--workers N] [--replicas N] \
         [--queue-depth N] [--cache-shards N] [--cache-capacity N] [--slow-query-ms N] \
         [--failpoint SPEC]\n  ssr stats ADDR [--check] [--json]\n  ssr drain ADDR\n  \
         ssr cluster ADDR1,ADDR2,... query --text STRING [--type 1|2|3] [--epsilon X] \
         [--epsilon-max X] [--epsilon-increment X] [--hedge-ms N]\n  \
         ssr cluster ADDR1,ADDR2,... stats\n  ssr cluster ADDR1,ADDR2,... drain"
    );
    std::process::exit(2);
}

fn fail(msg: impl std::fmt::Display) -> ! {
    eprintln!("ssr: {msg}");
    std::process::exit(1);
}

fn main() {
    // Arm any failpoints requested via SSR_FAILPOINTS before touching disk
    // or the network; a malformed spec is a configuration error, not a
    // silently-disarmed drill.
    if let Err(e) = ssr_fault::init_from_env() {
        fail(format!("SSR_FAILPOINTS: {e}"));
    }
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("build") => cmd_build(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("query") => cmd_query(&args[1..]),
        Some("append") => cmd_append(&args[1..]),
        Some("remove") => cmd_remove(&args[1..]),
        Some("compact") => cmd_compact(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("stats") => cmd_stats(&args[1..]),
        Some("drain") => cmd_drain(&args[1..]),
        Some("cluster") => cmd_cluster(&args[1..]),
        _ => usage(),
    }
}

// -- build ------------------------------------------------------------------

struct BuildOptions {
    dataset: String,
    windows: usize,
    seed: u64,
    lambda: usize,
    max_shift: usize,
    backend: IndexBackend,
    threads: usize,
    out: String,
}

fn parse_backend(text: &str) -> IndexBackend {
    match text {
        "reference-net" => IndexBackend::ReferenceNet,
        "cover-tree" => IndexBackend::CoverTree,
        "linear-scan" => IndexBackend::LinearScan,
        other => match other.strip_prefix("mv-").and_then(|k| k.parse().ok()) {
            Some(references) => IndexBackend::MvReference { references },
            None => usage(),
        },
    }
}

fn cmd_build(args: &[String]) {
    let mut opts = BuildOptions {
        dataset: "proteins".to_string(),
        windows: 400,
        seed: 42,
        lambda: 40,
        max_shift: 2,
        backend: IndexBackend::ReferenceNet,
        threads: 1,
        out: "db.ssr".to_string(),
    };
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--dataset" => opts.dataset = value(&mut i),
            "--windows" => opts.windows = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--seed" => opts.seed = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lambda" => opts.lambda = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-shift" => opts.max_shift = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--backend" => opts.backend = parse_backend(&value(&mut i)),
            "--threads" => opts.threads = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--out" => opts.out = value(&mut i),
            _ => usage(),
        }
        i += 1;
    }
    let window_len = (opts.lambda / 2).max(1);
    match opts.dataset.as_str() {
        "dna" => {
            // DNA has no windows-based sizing helper; aim for ~windows/4
            // sequences of ~4 windows each.
            let config = DnaConfig {
                num_sequences: (opts.windows / 4).max(1),
                min_len: window_len * 3,
                max_len: window_len * 5,
                seed: opts.seed,
                ..Default::default()
            };
            build_and_save(generate_dna(&config), Levenshtein::new(), &opts);
        }
        "proteins" => {
            let config = ProteinConfig::sized_for_windows(opts.windows, window_len, opts.seed);
            build_and_save(generate_proteins(&config), Levenshtein::new(), &opts);
        }
        "songs" => {
            let config = SongsConfig::sized_for_windows(opts.windows, window_len, opts.seed);
            build_and_save(generate_songs(&config), Erp::new(), &opts);
        }
        "traj" => {
            let config = TrajConfig::sized_for_windows(opts.windows, window_len, opts.seed);
            build_and_save(
                generate_trajectories(&config),
                DiscreteFrechet::new(),
                &opts,
            );
        }
        _ => usage(),
    }
}

fn build_and_save<E, D>(dataset: SequenceDataset<E>, distance: D, opts: &BuildOptions)
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    let distance_name = distance.name();
    let config = FrameworkConfig::new(opts.lambda).with_max_shift(opts.max_shift);
    let config = config.with_backend(opts.backend);
    let started = Instant::now();
    let db = SubsequenceDatabase::builder(config, distance)
        .add_dataset(&dataset)
        .with_threads(opts.threads)
        .build()
        .unwrap_or_else(|e| fail(e));
    let build_ms = started.elapsed().as_secs_f64() * 1e3;
    let started = Instant::now();
    db.save_snapshot(&opts.out).unwrap_or_else(|e| fail(e));
    let save_ms = started.elapsed().as_secs_f64() * 1e3;
    let file_bytes = std::fs::metadata(&opts.out).map(|m| m.len()).unwrap_or(0);
    println!(
        "built {} ({} windows over {} sequences, {} distance, {} backend) in {build_ms:.1} ms \
         ({} build distance calls)",
        opts.dataset,
        db.window_count(),
        db.dataset().len(),
        distance_name,
        opts.backend,
        db.build_distance_calls()
    );
    println!("wrote {} ({file_bytes} bytes) in {save_ms:.1} ms", opts.out);
}

// -- info -------------------------------------------------------------------

/// The WAL sibling's state, shared by the human and `--json` renderings.
#[derive(Default)]
struct WalState {
    present: bool,
    readable: bool,
    records: usize,
    appends: usize,
    removes: usize,
    bytes: u64,
    torn_bytes: u64,
    stale: bool,
}

fn wal_state(path: &str) -> WalState {
    let wal_path = wal_path_for(path);
    if !wal_path.exists() {
        return WalState::default();
    }
    let mut state = WalState {
        present: true,
        ..WalState::default()
    };
    let read = match ssr_storage::read_wal_file(&wal_path) {
        Ok(read) => read,
        Err(_) => return state,
    };
    state.readable = true;
    state.records = read.records.len();
    state.bytes = read.valid_len as u64;
    state.torn_bytes = read.dropped_bytes as u64;
    if let Ok((appends, removes)) = count_op_kinds(&read.records) {
        state.appends = appends;
        state.removes = removes;
    }
    state.stale = match std::fs::read(path) {
        Ok(bytes) => read.binding != Some(WalBinding::of(&bytes)),
        Err(_) => true,
    };
    state
}

fn cmd_info(args: &[String]) {
    let (path, json) = match args {
        [path] => (path, false),
        [path, flag] if flag == "--json" => (path, true),
        [flag, path] if flag == "--json" => (path, true),
        _ => usage(),
    };
    let snapshot = Snapshot::open(path).unwrap_or_else(|e| fail(e));
    let manifest = SnapshotManifest::read(&snapshot).unwrap_or_else(|e| fail(e));
    if json {
        print_info_json(path, &snapshot, &manifest);
        return;
    }
    println!("snapshot      {path}");
    println!(
        "format        version {} ({} bytes total)",
        ssr_storage::FORMAT_VERSION,
        snapshot.file_len()
    );
    println!("element       {}", manifest.element);
    println!("distance      {}", manifest.distance);
    println!(
        "config        lambda={} max_shift={} epsilon_prime={} backend={} max_parents={:?}",
        manifest.config.lambda,
        manifest.config.max_shift,
        manifest.config.epsilon_prime,
        manifest.config.backend,
        manifest.config.max_parents
    );
    println!(
        "contents      {} sequences, {} windows, {} build distance calls saved",
        manifest.sequences, manifest.windows, manifest.build_distance_calls
    );
    println!("sections");
    for entry in snapshot.sections() {
        println!(
            "  {:<10} {:>12} bytes  crc32 {:08x}",
            entry.name, entry.len, entry.crc
        );
    }
    print_wal_state(path);
    // Loading the typed database additionally surfaces the index's exact
    // serialized structural footprint (SpaceStats::serialized_bytes) and the
    // resident memory layout: the shared element arena, the window views and
    // the index's per-item id handles.
    with_database(path, &manifest, |db| {
        let stats = db.index_space_stats();
        println!(
            "index         items={} entries={} levels={} avg_parents={:.2} \
             serialized_bytes={} estimated_bytes={}",
            stats.items,
            stats.entries,
            stats.levels,
            stats.avg_parents,
            stats.serialized_bytes,
            stats.estimated_bytes
        );
        let resident = db.resident_window_bytes();
        println!(
            "memory        arena_bytes={} view_bytes={} item_bytes={} \
             resident_window_bytes={} bytes_per_window={:.1}",
            stats.arena_bytes,
            db.window_view_bytes(),
            stats.item_bytes,
            resident,
            resident as f64 / stats.items.max(1) as f64
        );
    });
}

/// `info --json`: the manifest, sections, WAL state and (when a typed loader
/// exists) the index/memory footprint as one machine-readable object —
/// scripts and the CI serve-smoke job consume this instead of scraping the
/// human rendering.
fn print_info_json(path: &str, snapshot: &Snapshot, manifest: &SnapshotManifest) {
    let num = |v: f64| JsonValue::Number(v);
    let wal = wal_state(path);
    let mut members: Vec<(String, JsonValue)> = vec![
        ("path".to_string(), JsonValue::String(path.to_string())),
        (
            "format_version".to_string(),
            num(ssr_storage::FORMAT_VERSION as f64),
        ),
        ("file_bytes".to_string(), num(snapshot.file_len() as f64)),
        (
            "element".to_string(),
            JsonValue::String(manifest.element.clone()),
        ),
        (
            "distance".to_string(),
            JsonValue::String(manifest.distance.clone()),
        ),
        (
            "config".to_string(),
            JsonValue::object(vec![
                ("lambda", num(manifest.config.lambda as f64)),
                ("max_shift", num(manifest.config.max_shift as f64)),
                ("epsilon_prime", num(manifest.config.epsilon_prime)),
                (
                    "backend",
                    JsonValue::String(format!("{}", manifest.config.backend)),
                ),
                (
                    "max_parents",
                    match manifest.config.max_parents {
                        Some(n) => num(n as f64),
                        None => JsonValue::Null,
                    },
                ),
            ]),
        ),
        ("sequences".to_string(), num(manifest.sequences as f64)),
        ("windows".to_string(), num(manifest.windows as f64)),
        (
            "build_distance_calls".to_string(),
            num(manifest.build_distance_calls as f64),
        ),
        // Server-runtime fields, present so `info --json` and
        // `stats --json` share one schema; a snapshot on disk has no
        // uptime or result cache, so they are null here and populated by
        // `ssr stats ADDR --json` against a running server.
        ("uptime_ms".to_string(), JsonValue::Null),
        ("cache_entries".to_string(), JsonValue::Null),
        ("cache_bytes_estimate".to_string(), JsonValue::Null),
        (
            "sections".to_string(),
            JsonValue::Array(
                snapshot
                    .sections()
                    .iter()
                    .map(|entry| {
                        JsonValue::object(vec![
                            ("name", JsonValue::String(entry.name.clone())),
                            ("bytes", num(entry.len as f64)),
                        ])
                    })
                    .collect(),
            ),
        ),
        (
            "wal".to_string(),
            JsonValue::object(vec![
                ("present", JsonValue::Bool(wal.present)),
                ("readable", JsonValue::Bool(wal.readable)),
                ("pending_records", num(wal.records as f64)),
                ("appends", num(wal.appends as f64)),
                ("removes", num(wal.removes as f64)),
                ("bytes", num(wal.bytes as f64)),
                ("torn_bytes", num(wal.torn_bytes as f64)),
                ("stale", JsonValue::Bool(wal.present && wal.stale)),
            ]),
        ),
    ];
    with_database(path, manifest, |db| {
        let stats = db.index_space_stats();
        let resident = db.resident_window_bytes();
        members.push((
            "index".to_string(),
            JsonValue::object(vec![
                ("items", num(stats.items as f64)),
                ("entries", num(stats.entries as f64)),
                ("levels", num(stats.levels as f64)),
                ("serialized_bytes", num(stats.serialized_bytes as f64)),
                ("estimated_bytes", num(stats.estimated_bytes as f64)),
            ]),
        ));
        members.push((
            "memory".to_string(),
            JsonValue::object(vec![
                ("arena_bytes", num(stats.arena_bytes as f64)),
                ("view_bytes", num(db.window_view_bytes() as f64)),
                ("item_bytes", num(stats.item_bytes as f64)),
                ("resident_window_bytes", num(resident as f64)),
                (
                    "bytes_per_window",
                    num((resident as f64 / stats.items.max(1) as f64 * 10.0).round() / 10.0),
                ),
            ]),
        ));
    });
    println!("{}", JsonValue::Object(members).render());
}

/// Prints the state of the snapshot's WAL sibling: record counts by kind,
/// bytes, and whether the log actually binds to this snapshot (a stale
/// binding is the leftover of an interrupted compaction and will be
/// discarded on the next open).
fn print_wal_state(path: &str) {
    let wal_path = wal_path_for(path);
    if !wal_path.exists() {
        println!("wal           none");
        return;
    }
    let read = match ssr_storage::read_wal_file(&wal_path) {
        Ok(read) => read,
        Err(e) => {
            println!("wal           {} (unreadable: {e})", wal_path.display());
            return;
        }
    };
    let kinds = match count_op_kinds(&read.records) {
        Ok((appends, removes)) => format!("{appends} appends, {removes} removes"),
        Err(e) => format!("unclassifiable ops: {e}"),
    };
    let binding = match std::fs::read(path) {
        Ok(bytes) if read.binding == Some(WalBinding::of(&bytes)) => "",
        _ => " [stale: bound to a different snapshot; discarded on open]",
    };
    let torn = if read.dropped_bytes > 0 {
        format!(" + {} bytes torn tail", read.dropped_bytes)
    } else {
        String::new()
    };
    println!(
        "wal           {} pending records ({kinds}), {} bytes{torn}{binding}",
        read.records.len(),
        read.valid_len
    );
}

// -- append / remove / compact ----------------------------------------------

/// The slice of live-database behaviour the mutation subcommands need,
/// object-safe so `remove` and `compact` can erase the element and distance
/// types behind the manifest dispatch.
trait LiveOps {
    fn remove(&mut self, sequence: usize) -> Result<bool, StorageError>;
    fn compact(&mut self) -> Result<(), StorageError>;
    fn live_sequences(&self) -> usize;
    fn pending_ops(&self) -> usize;
    fn wal_len_bytes(&self) -> u64;
}

impl<E, D> LiveOps for LiveDatabase<E, D>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    fn remove(&mut self, sequence: usize) -> Result<bool, StorageError> {
        self.remove_sequence(ssr_sequence::SequenceId(sequence))
    }

    fn compact(&mut self) -> Result<(), StorageError> {
        LiveDatabase::compact(self)
    }

    fn live_sequences(&self) -> usize {
        self.database().live_sequence_count()
    }

    fn pending_ops(&self) -> usize {
        LiveDatabase::pending_ops(self)
    }

    fn wal_len_bytes(&self) -> u64 {
        LiveDatabase::wal_len_bytes(self)
    }
}

/// Opens the snapshot + WAL pair behind `path` with the element/distance
/// pairing the manifest records, then runs `f` on the type-erased handle.
fn with_live(path: &str, f: impl FnOnce(&mut dyn LiveOps)) {
    let snapshot = Snapshot::open(path).unwrap_or_else(|e| fail(e));
    let manifest = SnapshotManifest::read(&snapshot).unwrap_or_else(|e| fail(e));
    match manifest.element.as_str() {
        "symbol" => {
            let mut live = LiveDatabase::<Symbol, _>::open(path, Levenshtein::new())
                .unwrap_or_else(|e| fail(e));
            f(&mut live);
        }
        "pitch" => {
            let mut live =
                LiveDatabase::<Pitch, _>::open(path, Erp::new()).unwrap_or_else(|e| fail(e));
            f(&mut live);
        }
        "point2d" => {
            let mut live = LiveDatabase::<Point2D, _>::open(path, DiscreteFrechet::new())
                .unwrap_or_else(|e| fail(e));
            f(&mut live);
        }
        other => fail(format!("no mutation support for element type '{other}'")),
    }
}

fn cmd_append(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let path = args[0].clone();
    let mut text: Option<String> = None;
    let mut label: Option<String> = None;
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--text" => text = Some(value(&mut i)),
            "--label" => label = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    let Some(text) = text else { usage() };
    let snapshot = Snapshot::open(&path).unwrap_or_else(|e| fail(e));
    let manifest = SnapshotManifest::read(&snapshot).unwrap_or_else(|e| fail(e));
    if manifest.element != Symbol::TAG {
        fail(format!(
            "append takes --text and therefore only supports symbol snapshots, not '{}'",
            manifest.element
        ));
    }
    let mut live =
        LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).unwrap_or_else(|e| fail(e));
    let mut sequence = Sequence::new(text.chars().map(Symbol::from_char).collect::<Vec<_>>());
    if let Some(label) = label {
        sequence.set_label(label);
    }
    let elements = sequence.len();
    let id = live.append_sequence(sequence).unwrap_or_else(|e| fail(e));
    println!(
        "appended {id} ({elements} elements); {} windows indexed, wal {} pending ops ({} bytes)",
        live.database().window_count(),
        live.pending_ops(),
        live.wal_len_bytes()
    );
}

fn cmd_remove(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let path = args[0].clone();
    let mut sequence: Option<usize> = None;
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--sequence" => sequence = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 1;
    }
    let Some(sequence) = sequence else { usage() };
    with_live(&path, |live| match live.remove(sequence) {
        Ok(true) => println!(
            "removed sequence {sequence}; {} live sequences remain, wal {} pending ops ({} bytes)",
            live.live_sequences(),
            live.pending_ops(),
            live.wal_len_bytes()
        ),
        Ok(false) => fail(format!("sequence {sequence} is unknown or already removed")),
        Err(e) => fail(e),
    });
}

fn cmd_compact(args: &[String]) {
    let [path] = args else { usage() };
    with_live(path, |live| {
        let pending = live.pending_ops();
        live.compact().unwrap_or_else(|e| fail(e));
        let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        println!(
            "folded {pending} pending ops into {path} ({file_bytes} bytes); wal reset to {} bytes",
            live.wal_len_bytes()
        );
    });
}

// -- serve ------------------------------------------------------------------

struct ServeOptions {
    addr: String,
    workers: usize,
    replicas: usize,
    queue_depth: usize,
    cache_shards: usize,
    cache_capacity: usize,
    slow_query_ms: Option<u64>,
}

fn cmd_serve(args: &[String]) {
    let Some(path) = args.first().cloned() else {
        usage()
    };
    let mut opts = ServeOptions {
        addr: "127.0.0.1:7878".to_string(),
        workers: 0,
        replicas: 1,
        queue_depth: 64,
        cache_shards: 16,
        cache_capacity: 256,
        slow_query_ms: None,
    };
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--addr" => opts.addr = value(&mut i),
            "--workers" => opts.workers = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--replicas" => opts.replicas = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--queue-depth" => opts.queue_depth = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--cache-shards" => {
                opts.cache_shards = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--cache-capacity" => {
                opts.cache_capacity = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--slow-query-ms" => {
                opts.slow_query_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage()))
            }
            "--failpoint" => {
                let spec = value(&mut i);
                let armed = ssr_fault::configure_str(&spec)
                    .unwrap_or_else(|e| fail(format!("--failpoint {spec}: {e}")));
                eprintln!("# armed {armed} failpoint(s): {spec}");
            }
            _ => usage(),
        }
        i += 1;
    }
    let snapshot = Snapshot::open(&path).unwrap_or_else(|e| fail(e));
    let manifest = SnapshotManifest::read(&snapshot).unwrap_or_else(|e| fail(e));
    drop(snapshot);
    match manifest.element.as_str() {
        "symbol" => serve_db(
            load::<Symbol, _>(&path, Levenshtein::new(), &manifest),
            &opts,
        ),
        "pitch" => serve_db(load::<Pitch, _>(&path, Erp::new(), &manifest), &opts),
        "point2d" => serve_db(
            load::<Point2D, _>(&path, DiscreteFrechet::new(), &manifest),
            &opts,
        ),
        other => fail(format!("no typed loader for element '{other}'")),
    }
}

fn serve_db<E, D>(db: SubsequenceDatabase<E, D>, opts: &ServeOptions)
where
    E: Element + StorableElement + Send + Sync + 'static,
    D: SequenceDistance<E> + Send + Sync + 'static,
{
    let config = ServeConfig {
        workers: opts.workers,
        replicas: opts.replicas,
        queue_depth: opts.queue_depth,
        cache_shards: opts.cache_shards,
        cache_shard_capacity: opts.cache_capacity,
        slow_query_ms: opts.slow_query_ms,
        ..ServeConfig::default()
    };
    let server = Server::bind(db, opts.addr.as_str(), config).unwrap_or_else(|e| fail(e));
    let stats = server.stats();
    println!(
        "serving {} sequences / {} windows on {} ({} workers, {} replicas)",
        stats.sequences,
        stats.windows,
        server.local_addr(),
        stats.workers,
        stats.replicas
    );
    server.wait();
    println!("server stopped");
}

// -- stats ------------------------------------------------------------------

/// Metric families `stats --check` requires of a healthy server — the
/// observability contract the CI serve-smoke job enforces mid-load.
const REQUIRED_FAMILIES: [&str; 7] = [
    "ssr_request_duration_us",
    "ssr_cache_hits_total",
    "ssr_cache_misses_total",
    "ssr_queue_depth",
    "ssr_overload_rejections_total",
    "ssr_replica_dp_cells_total",
    "ssr_wal_pending_ops",
];

fn cmd_stats(args: &[String]) {
    let mut addr: Option<String> = None;
    let mut check = false;
    let mut json = false;
    for arg in args {
        match arg.as_str() {
            "--check" => check = true,
            "--json" => json = true,
            other if addr.is_none() && !other.starts_with("--") => addr = Some(other.to_string()),
            _ => usage(),
        }
    }
    let Some(addr) = addr else { usage() };
    // Stats and Metrics carry no element payload, so the client's element
    // type parameter is immaterial; Symbol stands in.
    let mut client =
        ssr_bench::connect_with_retry::<Symbol>(&addr, std::time::Duration::from_secs(10))
            .unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")));
    if check || !json {
        let text = match client.request(&ssr_core::Request::Metrics) {
            Ok(ssr_core::Response::Metrics(text)) => text,
            Ok(other) => fail(format!("metrics answered with {other:?}")),
            Err(e) => fail(format!("scraping {addr}: {e}")),
        };
        if check {
            let doc = ssr_bench::promcheck::parse(&text)
                .unwrap_or_else(|e| fail(format!("invalid exposition from {addr}: {e}")));
            let missing: Vec<&str> = REQUIRED_FAMILIES
                .iter()
                .copied()
                .filter(|family| !doc.families.contains_key(*family))
                .collect();
            if !missing.is_empty() {
                fail(format!(
                    "exposition from {addr} is missing required families: {}",
                    missing.join(", ")
                ));
            }
            eprintln!(
                "# exposition valid: {} families, {} samples, all {} required families present",
                doc.families.len(),
                doc.samples.len(),
                REQUIRED_FAMILIES.len()
            );
        }
        if !json {
            print!("{text}");
            return;
        }
    }
    let stats = match client.request(&ssr_core::Request::Stats) {
        Ok(ssr_core::Response::Stats(stats)) => stats,
        Ok(other) => fail(format!("stats answered with {other:?}")),
        Err(e) => fail(format!("fetching stats from {addr}: {e}")),
    };
    let num = |v: f64| JsonValue::Number(v);
    println!(
        "{}",
        JsonValue::object(vec![
            ("addr", JsonValue::String(addr)),
            ("uptime_ms", num(stats.uptime_ms as f64)),
            ("sequences", num(stats.sequences as f64)),
            ("windows", num(stats.windows as f64)),
            ("workers", num(stats.workers as f64)),
            ("replicas", num(stats.replicas as f64)),
            ("arena_bytes", num(stats.arena_bytes as f64)),
            ("queries_executed", num(stats.queries_executed as f64)),
            ("cache_hits", num(stats.cache_hits as f64)),
            ("cache_misses", num(stats.cache_misses as f64)),
            ("cache_entries", num(stats.cache_entries as f64)),
            (
                "cache_bytes_estimate",
                num(stats.cache_bytes_estimate as f64)
            ),
            ("rejected_overload", num(stats.rejected_overload as f64)),
        ])
        .render()
    );
}

// -- drain ------------------------------------------------------------------

fn cmd_drain(args: &[String]) {
    let Some(addr) = args.first() else { usage() };
    if args.len() > 1 {
        usage()
    }
    // Shutdown is deliberately non-idempotent in the client: one attempt,
    // no retries, a typed refusal on any ambiguous failure. The element
    // type parameter is immaterial for a control frame; Symbol stands in.
    let mut client = ssr_core::WireClient::<Symbol>::connect(addr)
        .unwrap_or_else(|e| fail(format!("connecting to {addr}: {e}")));
    match client.request(&ssr_core::Request::Shutdown) {
        Ok(ssr_core::Response::ShuttingDown) => {}
        Ok(other) => fail(format!("drain answered with {other:?}")),
        Err(e) => fail(format!("draining {addr}: {e}")),
    }
    // The ack races the drain flag by design (it is written first), so wait
    // for the observable outcome: the listener going away once in-flight
    // work finishes and the worker pool empties.
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    while ssr_bench::is_listening(addr) {
        if Instant::now() >= deadline {
            fail(format!("{addr} still listening 30s after the drain ack"));
        }
        std::thread::sleep(std::time::Duration::from_millis(50));
    }
    println!("drained: {addr} acknowledged shutdown and stopped listening");
}

// -- cluster ----------------------------------------------------------------

/// A cluster client over the comma-separated address list, tuned for CLI
/// one-shots: health probing on, modest timeouts, the cluster's failover as
/// the only retry.
fn cluster_client(addrs: &str, hedge_ms: Option<u64>) -> ssr_cluster::ClusterClient<Symbol> {
    let addrs: Vec<String> = addrs
        .split(',')
        .map(str::trim)
        .filter(|a| !a.is_empty())
        .map(String::from)
        .collect();
    if addrs.len() < 2 {
        fail("cluster takes at least two comma-separated node addresses");
    }
    let config = ssr_cluster::ClusterConfig {
        hedge_after: hedge_ms.map(std::time::Duration::from_millis),
        ..ssr_cluster::ClusterConfig::default()
    };
    ssr_cluster::ClusterClient::new(addrs, config).unwrap_or_else(|e| fail(e))
}

fn cmd_cluster(args: &[String]) {
    let (Some(addrs), Some(verb)) = (args.first(), args.get(1)) else {
        usage()
    };
    match verb.as_str() {
        "query" => cluster_query(addrs, &args[2..]),
        "stats" => cluster_stats(addrs),
        "drain" => cluster_drain(addrs),
        _ => usage(),
    }
}

/// `cluster ... query`: one Type I/II/III query through the fault-tolerant
/// client — whichever healthy node answers, plus the failover/hedge spend.
/// `--text` only (and therefore symbol snapshots only), like `append`.
fn cluster_query(addrs: &str, args: &[String]) {
    let mut opts = QueryOptions {
        query_type: 2,
        epsilon: 8.0,
        epsilon_max: 16.0,
        epsilon_increment: 1.0,
        plant: None,
        text: None,
    };
    let mut hedge_ms = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--type" => opts.query_type = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon" => opts.epsilon = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon-max" => opts.epsilon_max = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon-increment" => {
                opts.epsilon_increment = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--text" => opts.text = Some(value(&mut i)),
            "--hedge-ms" => hedge_ms = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            _ => usage(),
        }
        i += 1;
    }
    let Some(text) = &opts.text else { usage() };
    if !(1..=3).contains(&opts.query_type) {
        usage();
    }
    let spec = match opts.query_type {
        1 => ssr_core::QuerySpec::Type1 {
            epsilon: opts.epsilon,
        },
        2 => ssr_core::QuerySpec::Type2 {
            epsilon: opts.epsilon,
        },
        _ => ssr_core::QuerySpec::Type3 {
            epsilon_max: opts.epsilon_max,
            epsilon_increment: opts.epsilon_increment,
        },
    };
    let request = ssr_core::Request::Query {
        spec,
        queries: vec![text.chars().map(Symbol::from_char).collect::<Vec<_>>()],
    };
    let cluster = cluster_client(addrs, hedge_ms);
    let started = Instant::now();
    let response = cluster.request(&request).unwrap_or_else(|e| fail(e));
    let wall_ms = started.elapsed().as_secs_f64() * 1e3;
    let counters = cluster.counters();
    match response {
        ssr_core::Response::Outcomes(outcomes) => {
            for outcome in &outcomes {
                println!(
                    "{} match(es){}:",
                    outcome.matches.len(),
                    if outcome.cached { " (cached)" } else { "" }
                );
                for m in &outcome.matches {
                    print_match(m);
                }
            }
            eprintln!(
                "# cluster: answered in {wall_ms:.1} ms — {} failover(s), {} hedge(s) \
                 ({} won), {} breaker trip(s)",
                counters.failovers, counters.hedges, counters.hedge_wins, counters.breaker_trips
            );
        }
        ssr_core::Response::Error(e) => fail(format!("the cluster answered with: {e}")),
        other => fail(format!("unexpected response: {other:?}")),
    }
}

/// `cluster ... stats`: the wire Stats snapshot from every node, one JSON
/// object per line tagged with the node address. Dead nodes report their
/// failure without blocking the rest; exits nonzero only when *no* node
/// answered.
fn cluster_stats(addrs: &str) {
    let cluster = cluster_client(addrs, None);
    let mut answered = 0usize;
    for (addr, outcome) in cluster.for_each_node(&ssr_core::Request::Stats) {
        match outcome {
            Ok(ssr_core::Response::Stats(stats)) => {
                answered += 1;
                let num = |v: f64| JsonValue::Number(v);
                println!(
                    "{}",
                    JsonValue::object(vec![
                        ("node", JsonValue::String(addr)),
                        ("uptime_ms", num(stats.uptime_ms as f64)),
                        ("sequences", num(stats.sequences as f64)),
                        ("windows", num(stats.windows as f64)),
                        ("queries_executed", num(stats.queries_executed as f64)),
                        ("cache_hits", num(stats.cache_hits as f64)),
                        ("cache_misses", num(stats.cache_misses as f64)),
                        ("rejected_overload", num(stats.rejected_overload as f64)),
                    ])
                    .render()
                );
            }
            Ok(other) => eprintln!("# {addr}: unexpected response {other:?}"),
            Err(e) => eprintln!("# {addr}: DOWN ({e})"),
        }
    }
    if answered == 0 {
        fail("no node answered stats");
    }
}

/// `cluster ... drain`: graceful shutdown fanned out to every node; waits
/// for each acknowledging node's listener to go away. Exits nonzero when any
/// listed node fails to drain — pass only the nodes you mean to stop.
fn cluster_drain(addrs: &str) {
    let cluster = cluster_client(addrs, None);
    let mut failures = 0usize;
    let mut acked = Vec::new();
    for (addr, outcome) in cluster.for_each_node(&ssr_core::Request::Shutdown) {
        match outcome {
            Ok(ssr_core::Response::ShuttingDown) => {
                println!("{addr}: acknowledged shutdown");
                acked.push(addr);
            }
            Ok(other) => {
                eprintln!("# {addr}: drain answered with {other:?}");
                failures += 1;
            }
            Err(e) => {
                eprintln!("# {addr}: drain failed ({e})");
                failures += 1;
            }
        }
    }
    let deadline = Instant::now() + std::time::Duration::from_secs(30);
    for addr in &acked {
        while ssr_bench::is_listening(addr) {
            if Instant::now() >= deadline {
                eprintln!("# {addr}: still listening 30s after the drain ack");
                failures += 1;
                break;
            }
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
    println!("drained {} node(s)", acked.len());
}

// -- query ------------------------------------------------------------------

#[derive(Clone, Default)]
struct QueryOptions {
    query_type: u8,
    epsilon: f64,
    epsilon_max: f64,
    epsilon_increment: f64,
    plant: Option<u64>,
    text: Option<String>,
}

fn cmd_query(args: &[String]) {
    if args.is_empty() {
        usage();
    }
    let path = args[0].clone();
    let mut opts = QueryOptions {
        query_type: 2,
        epsilon: 8.0,
        epsilon_max: 16.0,
        epsilon_increment: 1.0,
        plant: None,
        text: None,
    };
    let mut i = 1;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--type" => opts.query_type = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon" => opts.epsilon = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon-max" => opts.epsilon_max = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--epsilon-increment" => {
                opts.epsilon_increment = value(&mut i).parse().unwrap_or_else(|_| usage())
            }
            "--plant" => opts.plant = Some(value(&mut i).parse().unwrap_or_else(|_| usage())),
            "--text" => opts.text = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    if !(1..=3).contains(&opts.query_type) || (opts.plant.is_none() && opts.text.is_none()) {
        usage();
    }
    let snapshot = Snapshot::open(&path).unwrap_or_else(|e| fail(e));
    let manifest = SnapshotManifest::read(&snapshot).unwrap_or_else(|e| fail(e));
    match manifest.element.as_str() {
        "symbol" => {
            let db = load::<Symbol, _>(&path, Levenshtein::new(), &manifest);
            let query = symbol_query(&db, &opts, &manifest);
            run_query(&db, query, &opts);
        }
        "pitch" => {
            let db = load::<Pitch, _>(&path, Erp::new(), &manifest);
            let query = planted_query(&db, PitchMutator, &opts);
            run_query(&db, query, &opts);
        }
        "point2d" => {
            let db = load::<Point2D, _>(&path, DiscreteFrechet::new(), &manifest);
            let query = planted_query(&db, PointMutator::default(), &opts);
            run_query(&db, query, &opts);
        }
        other => fail(format!("no query support for element type '{other}'")),
    }
}

/// Runs `f` over the typed database behind the snapshot at `path` (with its
/// WAL replayed read-only), dispatching on the manifest's element tag. Used
/// by `info`; `query` needs per-element query construction and dispatches
/// itself.
fn with_database(path: &str, manifest: &SnapshotManifest, f: impl FnOnce(&dyn DatabaseStats)) {
    match manifest.element.as_str() {
        "symbol" => {
            f(&load::<Symbol, _>(path, Levenshtein::new(), manifest));
        }
        "pitch" => {
            f(&load::<Pitch, _>(path, Erp::new(), manifest));
        }
        "point2d" => {
            f(&load::<Point2D, _>(path, DiscreteFrechet::new(), manifest));
        }
        other => {
            eprintln!("note: no typed loader for element '{other}'; manifest only");
        }
    }
}

/// The slice of database behaviour `info` needs, object-safe so dispatch can
/// erase the element and distance types.
trait DatabaseStats {
    fn index_space_stats(&self) -> ssr_index::SpaceStats;
    /// Resident bytes of the window view table (provenance words, no
    /// elements — those are the arena's).
    fn window_view_bytes(&self) -> usize;
    /// Total resident window/index bytes — the framework's own definition,
    /// so this always agrees with the CI-gated `bytes_per_window`.
    fn resident_window_bytes(&self) -> usize;
}

impl<E, D> DatabaseStats for SubsequenceDatabase<E, D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    fn index_space_stats(&self) -> ssr_index::SpaceStats {
        SubsequenceDatabase::index_space_stats(self)
    }

    fn window_view_bytes(&self) -> usize {
        self.windows().view_bytes()
    }

    fn resident_window_bytes(&self) -> usize {
        SubsequenceDatabase::resident_window_bytes(self)
    }
}

fn load<E, D>(path: &str, distance: D, manifest: &SnapshotManifest) -> SubsequenceDatabase<E, D>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    if manifest.distance != distance.name() {
        fail(StorageError::DistanceMismatch {
            expected: distance.name().to_string(),
            found: manifest.distance.clone(),
        });
    }
    let started = Instant::now();
    let (db, replayed) =
        ssr_core::load_with_wal(path, distance).unwrap_or_else(|e: StorageError| fail(e));
    let replay_note = if replayed > 0 {
        format!("; replayed {replayed} wal ops")
    } else {
        String::new()
    };
    eprintln!(
        "# cold start: loaded {} windows in {:.1} ms (0 distance calls; the original build \
         spent {}{replay_note})",
        db.window_count(),
        started.elapsed().as_secs_f64() * 1e3,
        db.build_distance_calls()
    );
    db
}

fn symbol_query<D: SequenceDistance<Symbol>>(
    db: &SubsequenceDatabase<Symbol, D>,
    opts: &QueryOptions,
    manifest: &SnapshotManifest,
) -> Sequence<Symbol> {
    if let Some(text) = &opts.text {
        let elements: Vec<Symbol> = text.chars().map(Symbol::from_char).collect();
        if elements.len() < manifest.config.lambda {
            fail(format!(
                "--text must be at least lambda = {} characters",
                manifest.config.lambda
            ));
        }
        return Sequence::new(elements);
    }
    planted_query(db, SymbolMutator, opts)
}

fn planted_query<E, D, M>(
    db: &SubsequenceDatabase<E, D>,
    mutator: M,
    opts: &QueryOptions,
) -> Sequence<E>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
    M: QueryMutator<E>,
{
    let Some(seed) = opts.plant else {
        fail("this element type only supports --plant SEED queries");
    };
    let config = QueryConfig {
        planted_len: db.config().lambda + db.config().window_len(),
        context_len: db.config().window_len(),
        perturbation_rate: 0.05,
        seed,
    };
    let planted = plant_query(db.dataset(), &mutator, &config)
        .unwrap_or_else(|| fail("database too small to plant a query; use more windows"));
    eprintln!(
        "# planted query from {} range {:?}",
        planted.source, planted.source_range
    );
    planted.query
}

fn run_query<E, D>(db: &SubsequenceDatabase<E, D>, query: Sequence<E>, opts: &QueryOptions)
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    let started = Instant::now();
    match opts.query_type {
        1 => {
            let outcome = db.query_type1(&query, opts.epsilon);
            print_stats(&outcome, started);
            println!(
                "{} matching pairs (epsilon {}):",
                outcome.result.len(),
                opts.epsilon
            );
            for m in outcome.result.iter().take(10) {
                print_match(m);
            }
            if outcome.result.len() > 10 {
                println!("  … {} more", outcome.result.len() - 10);
            }
        }
        2 => {
            let outcome = db.query_type2(&query, opts.epsilon);
            print_stats(&outcome, started);
            match &outcome.result {
                Some(m) => {
                    println!("longest similar subsequence (epsilon {}):", opts.epsilon);
                    print_match(m);
                }
                None => println!("no similar subsequence within epsilon {}", opts.epsilon),
            }
        }
        3 => {
            let outcome = db.query_type3(&query, opts.epsilon_max, opts.epsilon_increment);
            print_stats(&outcome, started);
            match &outcome.result {
                Some(m) => {
                    println!(
                        "nearest pair (epsilon_max {}, increment {}):",
                        opts.epsilon_max, opts.epsilon_increment
                    );
                    print_match(m);
                }
                None => println!("no pair found up to epsilon_max {}", opts.epsilon_max),
            }
        }
        _ => usage(),
    }
}

fn print_match(m: &ssr_core::SubsequenceMatch) {
    println!(
        "  {} db[{}..{}] ~ query[{}..{}]  distance {:.3}",
        m.sequence,
        m.db_range.start,
        m.db_range.end,
        m.query_range.start,
        m.query_range.end,
        m.distance
    );
}

fn print_stats<R>(outcome: &QueryOutcome<R>, started: Instant) {
    let s = &outcome.stats;
    eprintln!(
        "# {:.1} ms | segments {} | index distance calls {} | segment matches {} | \
         candidates {} | verification calls {}{}",
        started.elapsed().as_secs_f64() * 1e3,
        s.segments,
        s.index_distance_calls,
        s.segment_matches,
        s.candidates,
        s.verification_calls,
        if s.budget_exhausted {
            " | BUDGET EXHAUSTED"
        } else {
            ""
        }
    );
    eprintln!(
        "# pruning: dp cells {} | lower-bound prunes {}",
        s.dp_cells_evaluated, s.pruned_by_lower_bound
    );
}
