//! Batched query-engine benchmark and CI perf-regression gate.
//!
//! Builds a seeded synthetic protein database, plants a batch of queries
//! with known answers, and runs the batch through [`ssr_core::QueryEngine`]
//! twice — sequentially (`threads = 1`) and with `--threads N` workers —
//! verifying that both produce identical outcomes. Emits a machine-readable
//! report (`BENCH_<date>.json` by default) with per-stage wall-clock and
//! distance-call counts, and optionally gates against a committed baseline:
//!
//! ```text
//! cargo run --release -p ssr-bench --bin bench -- \
//!     [--scale smoke|small|medium] [--threads N] [--queries N] \
//!     [--out PATH] [--baseline bench/baseline.json] [--min-speedup X] \
//!     [--snapshot PATH] [--min-cold-start-speedup X]
//! ```
//!
//! With `--snapshot PATH` the harness additionally measures the cold-start
//! story: it saves the built database to `PATH`, loads it back, asserts the
//! loaded database answers the whole batch with bit-identical outcomes
//! (results AND statistics), and records load wall-clock versus rebuild
//! wall-clock — plus per-section byte sizes — in the JSON report. Loading
//! performs **zero** distance calls, so the cold-start speedup is gated at
//! ≥ 5× by default (`--min-cold-start-speedup 0` disables the gate).
//!
//! The gated metrics are **distance-call counts** (index filtering and
//! verification) plus the shortlist sizes — deterministic on every machine,
//! unlike wall-clock — and the gate fails when any of them regresses more
//! than 10% over the baseline. Wall-clock and speedup are reported for
//! humans; `--min-speedup` turns the speedup into a local acceptance check.

use std::time::{Duration, Instant, SystemTime, UNIX_EPOCH};

use ssr_bench::json::JsonValue;
use ssr_core::{BatchOutcome, FrameworkConfig, QueryEngine, SubsequenceDatabase};
use ssr_datagen::{generate_proteins, plant_query, ProteinConfig, QueryConfig, SymbolMutator};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};
use ssr_storage::Snapshot;

/// Fraction by which a gated metric may exceed its baseline value.
const GATE_TOLERANCE: f64 = 0.10;

/// Metrics compared against the baseline ("higher is worse"). All are
/// deterministic counts: the distance-call counters are invariant under the
/// threshold-aware pruning machinery by construction, `dp_cells_evaluated`
/// gates the pruning itself — a kernel regression that evaluates more cells
/// fails here even when every call count is unchanged — and the two byte
/// counters gate the flat arena layout: they are computed from lengths and
/// `size_of`, identical on every machine, and a change that reintroduces
/// per-window copies (or fattens the view/handle types) regresses them.
const GATED_METRICS: [&str; 7] = [
    "index_distance_calls",
    "verification_calls",
    "segment_matches",
    "candidates",
    "dp_cells_evaluated",
    "arena_bytes",
    "bytes_per_window",
];

/// Resident bytes the pre-arena (format v2) layout spent on windows and
/// index items: every window owned its elements **twice** — once in the
/// window store (provenance + `Vec<E>` header + payload + serialized gap
/// sum) and once cloned into the index as a bare `Vec<E>`. Used only to
/// report the reduction ratio the arena layout achieves; the gated numbers
/// are the measured ones.
fn owned_layout_bytes(windows: usize, window_len: usize, elem_size: usize) -> usize {
    let vec_bytes = std::mem::size_of::<Vec<u8>>() + window_len * elem_size;
    let provenance = 3 * std::mem::size_of::<usize>(); // sequence, window_index, start
    let gap_sum = std::mem::size_of::<f64>();
    windows * (provenance + vec_bytes + gap_sum + vec_bytes)
}

struct Options {
    scale: &'static str,
    windows: usize,
    queries: usize,
    threads: usize,
    out: Option<String>,
    baseline: Option<String>,
    min_speedup: Option<f64>,
    snapshot: Option<String>,
    min_cold_start_speedup: f64,
    /// Load-generator mode: drive a running `ssr serve` at this address
    /// instead of benchmarking in-process. `--snapshot` then names the
    /// snapshot the server loaded, for the served-vs-in-process parity check.
    serve: Option<String>,
    /// Closed-loop connections in `--serve` mode.
    connections: usize,
    /// Queries per request batch in `--serve` mode.
    batch: usize,
    /// Requests per connection in `--serve` mode.
    rounds: usize,
    /// Gate: served p99 latency must stay under this (0 disables).
    max_p99_ms: f64,
    /// Gate: result-cache hit rate after the run must reach this (0
    /// disables).
    min_cache_hit_rate: f64,
    /// After the load, ask the server to shut down and assert it exits.
    serve_shutdown: bool,
    /// Chaos mode: run the seeded fault schedules instead of benchmarking.
    chaos: bool,
    /// Base seed of `--chaos` (each schedule derives its own from it).
    chaos_seed: u64,
    /// Cluster chaos mode: three in-process `ssr serve` nodes, a seeded
    /// node-kill/restart schedule, and schedule-exact counter replay.
    /// `--snapshot` (optional here) names the database all nodes serve.
    cluster: bool,
    /// Base seed of `--cluster` (routing, kill schedule, hedge placement).
    cluster_seed: u64,
    /// Ablation: disable the threshold-aware pruning machinery entirely.
    no_pruning: bool,
    /// Gate: the pruned run must evaluate at least this factor fewer DP
    /// cells than a pruning-disabled ablation run (0 disables the gate and
    /// the extra ablation pass).
    min_dp_pruning_ratio: f64,
    /// Gate: resident window/index bytes (arena + views + item handles) must
    /// be at least this factor smaller than the owned Vec-of-Vec layout the
    /// arena replaced (0 disables the gate; the ratio is always reported).
    min_bytes_reduction: f64,
    /// Gate: telemetry wall-clock overhead — the fractional slowdown of a
    /// sequential batch with recording enabled vs the same batch with the
    /// `ssr_obs` kill switch thrown (0 disables the gate and the extra
    /// passes). Both sides take the min of 5 runs; the stats must be
    /// bit-identical either way.
    max_obs_overhead: f64,
}

fn usage() -> ! {
    eprintln!(
        "usage: bench [--scale smoke|small|medium] [--threads N] [--queries N] \
         [--out PATH] [--baseline PATH] [--min-speedup X] [--snapshot PATH] \
         [--min-cold-start-speedup X] [--no-pruning] [--min-dp-pruning-ratio X] \
         [--min-bytes-reduction X] [--max-obs-overhead X]\n       \
         bench --serve ADDR --snapshot PATH [--connections N] [--batch N] [--rounds N] \
         [--max-p99-ms X] [--min-cache-hit-rate X] [--serve-shutdown] [--out PATH]\n       \
         bench --chaos [--chaos-seed N] [--out PATH]\n       \
         bench --cluster [--cluster-seed N] [--snapshot PATH] [--out PATH]"
    );
    std::process::exit(2);
}

fn parse_options() -> Options {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut opts = Options {
        scale: "smoke",
        windows: 400,
        queries: 12,
        threads: 4,
        out: None,
        baseline: None,
        min_speedup: None,
        snapshot: None,
        min_cold_start_speedup: 5.0,
        no_pruning: false,
        min_dp_pruning_ratio: 0.0,
        min_bytes_reduction: 0.0,
        max_obs_overhead: 0.0,
        serve: None,
        connections: 4,
        batch: 4,
        rounds: 25,
        max_p99_ms: 0.0,
        min_cache_hit_rate: 0.0,
        serve_shutdown: false,
        chaos: false,
        chaos_seed: 42,
        cluster: false,
        cluster_seed: 42,
    };
    let mut queries_override = None;
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--scale" => {
                let (scale, windows, queries) = match value(&mut i).as_str() {
                    "smoke" => ("smoke", 400, 12),
                    "small" => ("small", 1200, 24),
                    "medium" => ("medium", 4000, 48),
                    _ => usage(),
                };
                opts.scale = scale;
                opts.windows = windows;
                opts.queries = queries;
            }
            "--threads" => {
                opts.threads = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--queries" => {
                queries_override = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--out" => opts.out = Some(value(&mut i)),
            "--baseline" => opts.baseline = Some(value(&mut i)),
            "--min-speedup" => {
                opts.min_speedup = Some(value(&mut i).parse().unwrap_or_else(|_| usage()));
            }
            "--snapshot" => opts.snapshot = Some(value(&mut i)),
            "--min-cold-start-speedup" => {
                opts.min_cold_start_speedup = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--no-pruning" => opts.no_pruning = true,
            "--min-dp-pruning-ratio" => {
                opts.min_dp_pruning_ratio = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--min-bytes-reduction" => {
                opts.min_bytes_reduction = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--max-obs-overhead" => {
                opts.max_obs_overhead = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--serve" => opts.serve = Some(value(&mut i)),
            "--connections" => {
                opts.connections = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--batch" => opts.batch = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--rounds" => opts.rounds = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--max-p99-ms" => {
                opts.max_p99_ms = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--min-cache-hit-rate" => {
                opts.min_cache_hit_rate = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--serve-shutdown" => opts.serve_shutdown = true,
            "--chaos" => opts.chaos = true,
            "--chaos-seed" => {
                opts.chaos_seed = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--cluster" => opts.cluster = true,
            "--cluster-seed" => {
                opts.cluster_seed = value(&mut i).parse().unwrap_or_else(|_| usage());
            }
            "--help" | "-h" => usage(),
            _ => usage(),
        }
        i += 1;
    }
    if let Some(q) = queries_override {
        opts.queries = q;
    }
    if opts.queries == 0 || opts.threads == 0 && opts.min_speedup.is_some() {
        usage();
    }
    opts
}

/// Gregorian date for a Unix day number (Howard Hinnant's `civil_from_days`).
fn civil_from_days(mut z: i64) -> (i64, u32, u32) {
    z += 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = (doy - (153 * mp + 2) / 5 + 1) as u32;
    let m = if mp < 10 { mp + 3 } else { mp - 9 } as u32;
    (if m <= 2 { y + 1 } else { y }, m, d)
}

fn today() -> String {
    let days = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| (d.as_secs() / 86_400) as i64)
        .unwrap_or(0);
    let (y, m, d) = civil_from_days(days);
    format!("{y:04}-{m:02}-{d:02}")
}

fn stage_object(batch: &BatchOutcome<Option<ssr_core::SubsequenceMatch>>) -> JsonValue {
    JsonValue::object(vec![
        ("wall_ns", JsonValue::Number(batch.wall_ns as f64)),
        (
            "segment_ns",
            JsonValue::Number(batch.timings.segment_ns as f64),
        ),
        (
            "filter_ns",
            JsonValue::Number(batch.timings.filter_ns as f64),
        ),
        ("chain_ns", JsonValue::Number(batch.timings.chain_ns as f64)),
        (
            "verify_ns",
            JsonValue::Number(batch.timings.verify_ns as f64),
        ),
        ("threads", JsonValue::Number(batch.threads as f64)),
    ])
}

fn main() {
    if let Err(e) = ssr_fault::init_from_env() {
        eprintln!("bench: SSR_FAILPOINTS: {e}");
        std::process::exit(2);
    }
    let opts = parse_options();
    if opts.chaos {
        chaos_mode(&opts);
        return;
    }
    if opts.cluster {
        cluster_mode(&opts);
        return;
    }
    if opts.serve.is_some() {
        serve_mode(&opts);
        return;
    }
    let epsilon = 8.0;
    if opts.no_pruning {
        eprintln!("# ablation: threshold-aware pruning DISABLED");
        ssr_distance::set_pruning_enabled(false);
    }

    // Seeded workload: deterministic across machines, so the distance-call
    // counts gated by CI are reproducible everywhere.
    eprintln!(
        "# bench: scale={} windows~{} queries={} threads={}",
        opts.scale, opts.windows, opts.queries, opts.threads
    );
    let proteins = generate_proteins(&ProteinConfig::sized_for_windows(opts.windows, 20, 42));
    let mut queries: Vec<Sequence<Symbol>> = (0..opts.queries)
        .map(|i| {
            plant_query(
                &proteins,
                &SymbolMutator,
                &QueryConfig {
                    planted_len: 60,
                    context_len: 20,
                    perturbation_rate: 0.05,
                    seed: 1000 + i as u64,
                },
            )
            .expect("protein dataset large enough to plant queries")
            .query
        })
        .collect();
    // A duplicate of the first query exercises batch deduplication.
    queries.push(queries[0].clone());

    let build_started = Instant::now();
    let db: SubsequenceDatabase<Symbol, Levenshtein> = SubsequenceDatabase::builder(
        FrameworkConfig::new(40).with_max_shift(2),
        Levenshtein::new(),
    )
    .add_dataset(&proteins)
    .with_threads(opts.threads)
    .build()
    .expect("bench database builds");
    let build_wall_ns = build_started.elapsed().as_nanos() as u64;
    eprintln!(
        "# built {} windows in {:.1} ms ({} build distance calls)",
        db.window_count(),
        build_wall_ns as f64 / 1e6,
        db.build_distance_calls()
    );

    let sequential = QueryEngine::new(&db).batch_type2(&queries, epsilon);
    let parallel = QueryEngine::new(&db)
        .with_threads(opts.threads)
        .batch_type2(&queries, epsilon);

    // Parity: the parallel batch must be bit-identical to the sequential one.
    let mut parity_failures = 0usize;
    for (i, (a, b)) in sequential
        .outcomes
        .iter()
        .zip(&parallel.outcomes)
        .enumerate()
    {
        if a != b {
            eprintln!("PARITY FAILURE on query {i}: sequential != parallel outcome");
            parity_failures += 1;
        }
    }
    let available = ssr_core::resolve_threads(0);
    if parallel.threads > available {
        eprintln!(
            "# note: {} worker threads on {} hardware threads — wall-clock speedup is \
             bounded by the machine, not the engine",
            parallel.threads, available
        );
    }
    let found = sequential
        .outcomes
        .iter()
        .filter(|o| o.result.is_some())
        .count();
    let stats = sequential.total_stats();
    let speedup = sequential.wall_ns as f64 / parallel.wall_ns.max(1) as f64;
    eprintln!(
        "# {}/{} queries matched; sequential {:.1} ms, parallel {:.1} ms ({} threads): speedup {:.2}x",
        found,
        queries.len(),
        sequential.wall_ns as f64 / 1e6,
        parallel.wall_ns as f64 / 1e6,
        parallel.threads,
        speedup
    );
    eprintln!(
        "# dp cells {} ({} lower-bound prunes) across {} index + {} verification calls",
        stats.dp_cells_evaluated,
        stats.pruned_by_lower_bound,
        stats.index_distance_calls,
        stats.verification_calls
    );

    // DP-cell ablation: rerun the batch with pruning disabled, assert the
    // outcomes are bit-identical apart from the work counters, and gate the
    // in-repo saving. Skipped when the whole run is already an ablation.
    let mut ablation_failures = 0usize;
    let ablation = (!opts.no_pruning && opts.min_dp_pruning_ratio > 0.0).then(|| {
        ssr_distance::set_pruning_enabled(false);
        let unpruned = QueryEngine::new(&db).batch_type2(&queries, epsilon);
        ssr_distance::set_pruning_enabled(true);
        for (i, (a, b)) in sequential
            .outcomes
            .iter()
            .zip(&unpruned.outcomes)
            .enumerate()
        {
            if a.result != b.result {
                eprintln!("ABLATION PARITY FAILURE on query {i}: pruning changed the result");
                ablation_failures += 1;
            }
            if a.stats.verification_calls != b.stats.verification_calls
                || a.stats.index_distance_calls != b.stats.index_distance_calls
            {
                eprintln!("ABLATION PARITY FAILURE on query {i}: pruning changed call counts");
                ablation_failures += 1;
            }
        }
        let full_cells = unpruned.total_stats().dp_cells_evaluated;
        let ratio = full_cells as f64 / stats.dp_cells_evaluated.max(1) as f64;
        eprintln!(
            "# pruning ablation: {} dp cells without pruning vs {} with — {:.2}x fewer",
            full_cells, stats.dp_cells_evaluated, ratio
        );
        if ratio < opts.min_dp_pruning_ratio {
            eprintln!(
                "FAIL dp-cell pruning ratio {ratio:.2}x below required {:.2}x",
                opts.min_dp_pruning_ratio
            );
            ablation_failures += 1;
        }
        (full_cells, ratio)
    });

    // Telemetry-overhead measurement: the identical sequential batch with
    // the ssr-obs kill switch thrown vs recording enabled. min-of-5 on both
    // sides absorbs scheduler noise; the outcomes (results AND stats) must
    // be bit-identical either way — telemetry is observation only.
    let mut obs_failures = 0usize;
    let obs_overhead = (opts.max_obs_overhead > 0.0).then(|| {
        let timed_run = || {
            let started = Instant::now();
            let batch = QueryEngine::new(&db).batch_type2(&queries, epsilon);
            (started.elapsed().as_nanos() as u64, batch)
        };
        let measure = |enabled: bool| {
            ssr_obs::set_enabled(enabled);
            let mut best_ns = u64::MAX;
            let mut last = None;
            for _ in 0..5 {
                let (ns, batch) = timed_run();
                best_ns = best_ns.min(ns);
                last = Some(batch);
            }
            (best_ns, last.expect("five runs happened"))
        };
        let (disabled_ns, disabled_batch) = measure(false);
        let (enabled_ns, enabled_batch) = measure(true);
        // Leave telemetry on for the rest of the run, whatever happens.
        ssr_obs::set_enabled(true);
        if disabled_batch.outcomes != enabled_batch.outcomes
            || disabled_batch.outcomes != sequential.outcomes
        {
            eprintln!("FAIL telemetry toggling changed batch outcomes or stats");
            obs_failures += 1;
        }
        let overhead = enabled_ns as f64 / disabled_ns.max(1) as f64 - 1.0;
        eprintln!(
            "# telemetry overhead: enabled {:.1} ms vs disabled {:.1} ms — {:+.2}% \
             (gate {:.2}%)",
            enabled_ns as f64 / 1e6,
            disabled_ns as f64 / 1e6,
            overhead * 100.0,
            opts.max_obs_overhead * 100.0
        );
        if overhead > opts.max_obs_overhead {
            eprintln!(
                "FAIL telemetry overhead {:.2}% exceeds the {:.2}% gate",
                overhead * 100.0,
                opts.max_obs_overhead * 100.0
            );
            obs_failures += 1;
        }
        JsonValue::object(vec![
            ("disabled_wall_ns", JsonValue::Number(disabled_ns as f64)),
            ("enabled_wall_ns", JsonValue::Number(enabled_ns as f64)),
            (
                "overhead_fraction",
                JsonValue::Number((overhead * 10_000.0).round() / 10_000.0),
            ),
            ("gate", JsonValue::Number(opts.max_obs_overhead)),
        ])
    });

    // Cold-start measurement: save → load → query parity → speedup gate.
    let mut snapshot_failures = 0usize;
    let snapshot_json = opts.snapshot.as_ref().map(|path| {
        let save_started = Instant::now();
        if let Err(e) = db.save_snapshot(path) {
            eprintln!("FAIL writing snapshot {path}: {e}");
            std::process::exit(1);
        }
        let save_wall_ns = save_started.elapsed().as_nanos() as u64;
        let load_started = Instant::now();
        let loaded: SubsequenceDatabase<Symbol, Levenshtein> =
            match SubsequenceDatabase::load_snapshot(path, Levenshtein::new()) {
                Ok(db) => db,
                Err(e) => {
                    eprintln!("FAIL loading snapshot {path}: {e}");
                    std::process::exit(1);
                }
            };
        let load_wall_ns = load_started.elapsed().as_nanos() as u64;
        let load_distance_calls = loaded.query_distance_counter().get();
        if load_distance_calls != 0 {
            eprintln!("FAIL snapshot load performed {load_distance_calls} distance calls");
            snapshot_failures += 1;
        }
        // The loaded database must answer the whole batch bit-identically to
        // the database it was saved from — results AND statistics.
        let reloaded = QueryEngine::new(&loaded).batch_type2(&queries, epsilon);
        for (i, (a, b)) in sequential
            .outcomes
            .iter()
            .zip(&reloaded.outcomes)
            .enumerate()
        {
            if a != b {
                eprintln!("SNAPSHOT PARITY FAILURE on query {i}: loaded != built outcome");
                snapshot_failures += 1;
            }
        }
        let cold_start_speedup = build_wall_ns as f64 / load_wall_ns.max(1) as f64;
        eprintln!(
            "# snapshot: save {:.1} ms, load {:.1} ms vs rebuild {:.1} ms — cold start {:.1}x \
             ({} distance calls loading, {} rebuilding)",
            save_wall_ns as f64 / 1e6,
            load_wall_ns as f64 / 1e6,
            build_wall_ns as f64 / 1e6,
            cold_start_speedup,
            load_distance_calls,
            db.build_distance_calls()
        );
        if opts.min_cold_start_speedup > 0.0 && cold_start_speedup < opts.min_cold_start_speedup {
            eprintln!(
                "FAIL cold-start speedup {cold_start_speedup:.2}x below required {:.2}x",
                opts.min_cold_start_speedup
            );
            snapshot_failures += 1;
        }
        let sections = match Snapshot::open(path) {
            Ok(snapshot) => JsonValue::Object(
                snapshot
                    .sections()
                    .iter()
                    .map(|s| (s.name.clone(), JsonValue::Number(s.len as f64)))
                    .collect(),
            ),
            Err(e) => {
                eprintln!("FAIL re-opening snapshot {path}: {e}");
                snapshot_failures += 1;
                JsonValue::Null
            }
        };
        let file_bytes = std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
        JsonValue::object(vec![
            ("file_bytes", JsonValue::Number(file_bytes as f64)),
            ("save_wall_ns", JsonValue::Number(save_wall_ns as f64)),
            ("load_wall_ns", JsonValue::Number(load_wall_ns as f64)),
            ("rebuild_wall_ns", JsonValue::Number(build_wall_ns as f64)),
            (
                "cold_start_speedup",
                JsonValue::Number((cold_start_speedup * 100.0).round() / 100.0),
            ),
            (
                "load_distance_calls",
                JsonValue::Number(load_distance_calls as f64),
            ),
            ("sections", sections),
        ])
    });

    // Memory layout accounting: all deterministic (lengths × size_of, never
    // allocator capacities), so CI can gate them like the call counters.
    let index_space = db.index_space_stats();
    let view_bytes = db.windows().view_bytes();
    let resident_window_bytes = db.resident_window_bytes();
    let bytes_per_window = resident_window_bytes as f64 / db.window_count().max(1) as f64;
    let owned_bytes = owned_layout_bytes(
        db.window_count(),
        db.windows().window_len(),
        std::mem::size_of::<Symbol>(),
    );
    let bytes_reduction = owned_bytes as f64 / resident_window_bytes.max(1) as f64;
    eprintln!(
        "# memory: arena {} B + views {} B + index handles {} B = {} B resident \
         ({:.1} B/window) vs {} B owned layout — {:.2}x smaller",
        index_space.arena_bytes,
        view_bytes,
        index_space.item_bytes,
        resident_window_bytes,
        bytes_per_window,
        owned_bytes,
        bytes_reduction
    );
    let mut bytes_failures = 0usize;
    if opts.min_bytes_reduction > 0.0 && bytes_reduction < opts.min_bytes_reduction {
        eprintln!(
            "FAIL resident-bytes reduction {bytes_reduction:.2}x below required {:.2}x",
            opts.min_bytes_reduction
        );
        bytes_failures += 1;
    }
    let report = JsonValue::object(vec![
        (
            "schema",
            JsonValue::String("ssr-bench-engine/1".to_string()),
        ),
        ("date", JsonValue::String(today())),
        ("scale", JsonValue::String(opts.scale.to_string())),
        ("threads", JsonValue::Number(parallel.threads as f64)),
        (
            // Speedup is bounded by the machine: reading an artifact produced
            // on a 1-core runner should not look like an engine regression.
            "available_parallelism",
            JsonValue::Number(ssr_core::resolve_threads(0) as f64),
        ),
        ("queries", JsonValue::Number(queries.len() as f64)),
        (
            "unique_queries",
            JsonValue::Number(parallel.unique_queries as f64),
        ),
        ("queries_matched", JsonValue::Number(found as f64)),
        ("windows", JsonValue::Number(db.window_count() as f64)),
        ("build_wall_ns", JsonValue::Number(build_wall_ns as f64)),
        (
            "build_distance_calls",
            JsonValue::Number(db.build_distance_calls() as f64),
        ),
        (
            "index_distance_calls",
            JsonValue::Number(stats.index_distance_calls as f64),
        ),
        (
            "verification_calls",
            JsonValue::Number(stats.verification_calls as f64),
        ),
        (
            "segment_matches",
            JsonValue::Number(stats.segment_matches as f64),
        ),
        ("candidates", JsonValue::Number(stats.candidates as f64)),
        (
            "dp_cells_evaluated",
            JsonValue::Number(stats.dp_cells_evaluated as f64),
        ),
        (
            "pruned_by_lower_bound",
            JsonValue::Number(stats.pruned_by_lower_bound as f64),
        ),
        ("pruning_enabled", JsonValue::Bool(!opts.no_pruning)),
        (
            "arena_bytes",
            JsonValue::Number(index_space.arena_bytes as f64),
        ),
        (
            "bytes_per_window",
            JsonValue::Number((bytes_per_window * 100.0).round() / 100.0),
        ),
        (
            "resident_window_bytes",
            JsonValue::Number(resident_window_bytes as f64),
        ),
        ("owned_layout_bytes", JsonValue::Number(owned_bytes as f64)),
        (
            "bytes_reduction",
            JsonValue::Number((bytes_reduction * 100.0).round() / 100.0),
        ),
        ("sequential", stage_object(&sequential)),
        ("parallel", stage_object(&parallel)),
        (
            "speedup",
            JsonValue::Number((speedup * 100.0).round() / 100.0),
        ),
        (
            "index_space",
            JsonValue::object(vec![
                ("items", JsonValue::Number(index_space.items as f64)),
                ("entries", JsonValue::Number(index_space.entries as f64)),
                ("levels", JsonValue::Number(index_space.levels as f64)),
                (
                    "avg_parents",
                    JsonValue::Number((index_space.avg_parents * 100.0).round() / 100.0),
                ),
                (
                    "estimated_bytes",
                    JsonValue::Number(index_space.estimated_bytes as f64),
                ),
                (
                    "serialized_bytes",
                    JsonValue::Number(index_space.serialized_bytes as f64),
                ),
                (
                    "item_bytes",
                    JsonValue::Number(index_space.item_bytes as f64),
                ),
                ("view_bytes", JsonValue::Number(view_bytes as f64)),
            ]),
        ),
    ]);
    let report = match (report, snapshot_json) {
        (JsonValue::Object(mut members), Some(snapshot)) => {
            members.push(("snapshot".to_string(), snapshot));
            JsonValue::Object(members)
        }
        (report, _) => report,
    };
    let report = match (report, ablation) {
        (JsonValue::Object(mut members), Some((full_cells, ratio))) => {
            members.push((
                "dp_cells_no_pruning".to_string(),
                JsonValue::Number(full_cells as f64),
            ));
            members.push((
                "dp_pruning_ratio".to_string(),
                JsonValue::Number((ratio * 100.0).round() / 100.0),
            ));
            JsonValue::Object(members)
        }
        (report, _) => report,
    };
    let report = match (report, obs_overhead) {
        (JsonValue::Object(mut members), Some(obs)) => {
            members.push(("obs_overhead".to_string(), obs));
            JsonValue::Object(members)
        }
        (report, _) => report,
    };

    let out_path = opts
        .out
        .clone()
        .unwrap_or_else(|| format!("BENCH_{}.json", today()));
    std::fs::write(&out_path, report.render()).unwrap_or_else(|e| {
        eprintln!("failed to write {out_path}: {e}");
        std::process::exit(1);
    });
    eprintln!("# wrote {out_path}");

    let mut failures =
        parity_failures + snapshot_failures + ablation_failures + bytes_failures + obs_failures;
    if let Some(baseline_path) = &opts.baseline {
        failures += check_baseline(baseline_path, &report);
    }
    if let Some(min) = opts.min_speedup {
        if speedup < min {
            eprintln!("FAIL speedup {speedup:.2}x below required {min:.2}x");
            failures += 1;
        }
    }
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `--chaos` mode: the seeded fault schedules of [`ssr_bench::chaos`], with
/// a one-line verdict per schedule, an optional JSON artifact, and a nonzero
/// exit if any invariant broke.
fn chaos_mode(opts: &Options) {
    eprintln!("# chaos: base seed {}", opts.chaos_seed);
    let outcomes = ssr_bench::run_chaos(opts.chaos_seed);
    let mut failures = 0usize;
    for outcome in &outcomes {
        match &outcome.failure {
            None => eprintln!(
                "# chaos: PASS {} (seed {}, {} ops, {} acked, {} injected, {} retries)",
                outcome.name,
                outcome.seed,
                outcome.operations,
                outcome.acked,
                outcome.injected,
                outcome.retries
            ),
            Some(msg) => {
                failures += 1;
                eprintln!(
                    "# chaos: FAIL {} (seed {}): {msg}",
                    outcome.name, outcome.seed
                );
            }
        }
    }
    if let Some(out) = &opts.out {
        let report = JsonValue::object(vec![
            ("kind", JsonValue::String("chaos".to_string())),
            ("date", JsonValue::String(today())),
            ("base_seed", JsonValue::Number(opts.chaos_seed as f64)),
            (
                "schedules",
                JsonValue::Array(outcomes.iter().map(|o| o.to_json()).collect()),
            ),
        ]);
        std::fs::write(out, report.render()).unwrap_or_else(|e| {
            eprintln!("FAIL writing chaos report {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("# chaos: report written to {out}");
    }
    eprintln!(
        "# chaos: {} of {} schedules passed",
        outcomes.len() - failures,
        outcomes.len()
    );
    if failures > 0 {
        std::process::exit(1);
    }
}

/// `--cluster` mode: the seeded node-kill chaos harness of
/// [`ssr_bench::cluster`] — three in-process nodes, two identical scripted
/// passes whose failover/hedge/breaker-trip counters must replay exactly,
/// and a live recovery phase. Nonzero exit on any broken invariant.
fn cluster_mode(opts: &Options) {
    eprintln!("# cluster: seed {}", opts.cluster_seed);
    let outcome = ssr_bench::run_cluster_chaos(opts.cluster_seed, opts.snapshot.as_deref());
    match &outcome.failure {
        None => eprintln!(
            "# cluster: PASS (seed {}, {} requests, {} failovers, {} hedges, {} trips)",
            outcome.seed,
            outcome.requests,
            outcome.counters.failovers,
            outcome.counters.hedges,
            outcome.counters.breaker_trips
        ),
        Some(msg) => eprintln!("# cluster: FAIL (seed {}): {msg}", outcome.seed),
    }
    if let Some(out) = &opts.out {
        let report = JsonValue::object(vec![
            ("kind", JsonValue::String("cluster-chaos".to_string())),
            ("date", JsonValue::String(today())),
            ("run", outcome.to_json()),
        ]);
        std::fs::write(out, report.render()).unwrap_or_else(|e| {
            eprintln!("FAIL writing cluster report {out}: {e}");
            std::process::exit(1);
        });
        eprintln!("# cluster: report written to {out}");
    }
    if outcome.failure.is_some() {
        std::process::exit(1);
    }
}

/// `--serve` mode: closed-loop load against a running `ssr serve`, with a
/// served-vs-in-process parity check, latency/cache-hit gates and a JSON
/// artifact. Exits nonzero on any gate or parity failure.
fn serve_mode(opts: &Options) {
    let addr = opts.serve.as_deref().expect("serve_mode requires --serve");
    let Some(snapshot_path) = opts.snapshot.as_deref() else {
        eprintln!("bench --serve requires --snapshot PATH (the snapshot the server loaded)");
        std::process::exit(2);
    };

    // The in-process reference database: the same snapshot + pending WAL the
    // server opened. Symbol/Levenshtein only — the synthetic bench workloads
    // are protein-shaped, and the parity engine must match the server's
    // element type exactly.
    let (db, replayed): (SubsequenceDatabase<Symbol, Levenshtein>, usize) =
        match ssr_core::load_with_wal(snapshot_path, Levenshtein::new()) {
            Ok(loaded) => loaded,
            Err(e) => {
                eprintln!("FAIL loading parity snapshot {snapshot_path}: {e}");
                std::process::exit(1);
            }
        };
    eprintln!(
        "# serve mode: addr={addr} snapshot={snapshot_path} ({} sequences, {} windows, \
         {replayed} WAL ops), {} connections x {} rounds, batch {}",
        db.dataset().len(),
        db.window_count(),
        opts.connections,
        opts.rounds,
        opts.batch
    );

    // Deterministic request shapes carved out of the served sequences
    // themselves: guaranteed in-vocabulary, and identical on every machine.
    let specs = [
        ssr_core::QuerySpec::Type1 { epsilon: 8.0 },
        ssr_core::QuerySpec::Type2 { epsilon: 8.0 },
        ssr_core::QuerySpec::Type3 {
            epsilon_max: 8.0,
            epsilon_increment: 2.0,
        },
    ];
    let sequences = db.dataset().sequences();
    let requests: Vec<ssr_core::Request<Symbol>> = specs
        .iter()
        .enumerate()
        .map(|(shape, spec)| {
            let queries = (0..opts.batch.max(1))
                .map(|slot| {
                    let seq = &sequences[(shape * opts.batch + slot) % sequences.len()];
                    let len = seq.len().clamp(1, 24);
                    let start = (seq.len() - len) / 2;
                    seq.elements()[start..start + len].to_vec()
                })
                .collect();
            ssr_core::Request::Query {
                spec: *spec,
                queries,
            }
        })
        .collect();

    if let Err(e) = ssr_bench::wait_until_ready::<Symbol>(addr, Duration::from_secs(30)) {
        eprintln!("FAIL server at {addr} never became ready: {e}");
        std::process::exit(1);
    }

    let config = ssr_bench::LoadConfig {
        addr: addr.to_string(),
        connections: opts.connections,
        rounds: opts.rounds,
        connect_timeout: Duration::from_secs(30),
    };
    let report = match ssr_bench::run_load(&config, &requests) {
        Ok(report) => report,
        Err(e) => {
            eprintln!("FAIL load run against {addr}: {e}");
            std::process::exit(1);
        }
    };
    eprintln!(
        "# load: {} completed, {} overloaded, {} failed in {:.1} ms ({:.0} req/s)",
        report.completed,
        report.overloaded,
        report.failed,
        report.wall_ns as f64 / 1e6,
        report.qps
    );
    eprintln!(
        "# latency: p50 {:.2} ms, p95 {:.2} ms, p99 {:.2} ms, max {:.2} ms",
        report.latency.p50_ns as f64 / 1e6,
        report.latency.p95_ns as f64 / 1e6,
        report.latency.p99_ns as f64 / 1e6,
        report.latency.max_ns as f64 / 1e6
    );
    eprintln!(
        "# cache: {} hits / {} misses ({:.0}% hit rate), {} entries",
        report.server_stats.cache_hits,
        report.server_stats.cache_misses,
        report.cache_hit_rate * 100.0,
        report.server_stats.cache_entries
    );

    let mut failures = 0usize;

    // Parity: the served outcomes of request shape 0 (a Type I batch) must
    // be bit-identical — matches AND stats — to the in-process engine.
    let ssr_core::Request::Query { spec, queries } = &requests[0] else {
        unreachable!("request shapes are queries");
    };
    let ssr_core::QuerySpec::Type1 { epsilon } = spec else {
        unreachable!("shape 0 is Type I");
    };
    let local: Vec<Sequence<Symbol>> = queries.iter().cloned().map(Sequence::new).collect();
    let expected = QueryEngine::new(&db).batch_type1(&local, *epsilon);
    if report.sample_outcomes.is_empty() {
        eprintln!("FAIL no served sample outcomes captured for the parity check");
        failures += 1;
    } else if report.sample_outcomes.len() != expected.outcomes.len() {
        eprintln!(
            "FAIL parity: served {} outcomes, in-process produced {}",
            report.sample_outcomes.len(),
            expected.outcomes.len()
        );
        failures += 1;
    } else {
        for (i, (wire, local)) in report
            .sample_outcomes
            .iter()
            .zip(&expected.outcomes)
            .enumerate()
        {
            if wire.matches != local.result || wire.stats != local.stats {
                eprintln!("FAIL parity: served outcome {i} differs from in-process outcome");
                failures += 1;
            }
        }
        if failures == 0 {
            eprintln!(
                "# parity: {} served outcomes bit-identical to in-process engine",
                expected.outcomes.len()
            );
        }
    }

    if report.failed > 0 {
        eprintln!("FAIL {} requests failed outright", report.failed);
        failures += 1;
    }
    if opts.max_p99_ms > 0.0 {
        let p99_ms = report.latency.p99_ns as f64 / 1e6;
        if p99_ms > opts.max_p99_ms {
            eprintln!(
                "FAIL p99 latency {:.2} ms exceeds the {:.2} ms gate",
                p99_ms, opts.max_p99_ms
            );
            failures += 1;
        } else {
            eprintln!(
                "OK   p99 {:.2} ms within the {:.2} ms gate",
                p99_ms, opts.max_p99_ms
            );
        }
    }
    if opts.min_cache_hit_rate > 0.0 {
        if report.cache_hit_rate < opts.min_cache_hit_rate {
            eprintln!(
                "FAIL cache hit rate {:.2} below the {:.2} gate",
                report.cache_hit_rate, opts.min_cache_hit_rate
            );
            failures += 1;
        } else {
            eprintln!(
                "OK   cache hit rate {:.2} meets the {:.2} gate",
                report.cache_hit_rate, opts.min_cache_hit_rate
            );
        }
    }

    // Telemetry cross-check: scrape the Metrics endpoint and hold the
    // server's own counters against what the load generator measured from
    // the outside.
    let mut server_metrics = JsonValue::Null;
    match scrape_metrics(addr) {
        Err(e) => {
            eprintln!("FAIL scraping the Metrics endpoint at {addr}: {e}");
            failures += 1;
        }
        Ok(text) => match ssr_bench::promcheck::parse(&text) {
            Err(e) => {
                eprintln!("FAIL exposition from {addr} does not validate: {e}");
                failures += 1;
            }
            Ok(exposition) => {
                // Every completed request carried `batch` queries and every
                // overloaded one was rejected before execution, so the
                // server's answered-query counter must equal the load
                // generator's completed-requests tally exactly — a drift
                // means a request was double-counted or silently dropped.
                let expected_answered = (report.completed * opts.batch.max(1) as u64) as f64;
                let answered = exposition.scalar("ssr_queries_answered_total");
                if answered != Some(expected_answered) {
                    eprintln!(
                        "FAIL scraped ssr_queries_answered_total {answered:?} != \
                         completed x batch = {expected_answered}"
                    );
                    failures += 1;
                } else {
                    eprintln!(
                        "# scrape: exposition valid, {expected_answered} answered queries \
                         match the load generator's count"
                    );
                }
                // Server-side p99 (wall clock inside the server, admission
                // queue included) can never exceed the client-observed p99,
                // which additionally pays the wire round trip. The scraped
                // value is a bucket lower edge, so the comparison is safe
                // against bucketing error in the server's favor only.
                let client_p99_us = report.latency.p99_ns / 1_000;
                let server_p99_lower_us = exposition
                    .histogram_snapshot("ssr_request_duration_us")
                    .and_then(|snapshot| snapshot.percentile_lower_edge(0.99));
                match server_p99_lower_us {
                    Some(server_us) if server_us > client_p99_us => {
                        eprintln!(
                            "FAIL server-side p99 >= {server_us} us exceeds the \
                             client-side p99 of {client_p99_us} us"
                        );
                        failures += 1;
                    }
                    Some(server_us) => {
                        eprintln!(
                            "# latency cross-check: server-side p99 in ({server_us}, \
                             {}] us, client-side p99 {client_p99_us} us",
                            server_us.saturating_mul(2)
                        );
                    }
                    None => {
                        eprintln!(
                            "FAIL exposition has no populated ssr_request_duration_us \
                             histogram"
                        );
                        failures += 1;
                    }
                }
                let scraped = |name: &str| {
                    exposition
                        .scalar(name)
                        .map(JsonValue::Number)
                        .unwrap_or(JsonValue::Null)
                };
                server_metrics = JsonValue::object(vec![
                    ("queries_answered", scraped("ssr_queries_answered_total")),
                    ("queries_executed", scraped("ssr_queries_executed_total")),
                    ("cache_hits", scraped("ssr_cache_hits_total")),
                    ("cache_misses", scraped("ssr_cache_misses_total")),
                    (
                        "overload_rejections",
                        scraped("ssr_overload_rejections_total"),
                    ),
                    ("queue_depth", scraped("ssr_queue_depth")),
                    ("uptime_ms", scraped("ssr_uptime_ms")),
                    ("cache_bytes_estimate", scraped("ssr_cache_bytes_estimate")),
                    (
                        "request_p99_lower_us",
                        server_p99_lower_us
                            .map(|us| JsonValue::Number(us as f64))
                            .unwrap_or(JsonValue::Null),
                    ),
                    ("client_p99_us", JsonValue::Number(client_p99_us as f64)),
                    (
                        "cache_shard_evictions",
                        JsonValue::Number(exposition.sum("ssr_cache_shard_evictions_total")),
                    ),
                ]);
            }
        },
    }

    let json = JsonValue::object(vec![
        ("schema_version", JsonValue::Number(1.0)),
        ("date", JsonValue::String(today())),
        ("mode", JsonValue::String("serve".to_string())),
        ("addr", JsonValue::String(addr.to_string())),
        ("snapshot", JsonValue::String(snapshot_path.to_string())),
        ("connections", JsonValue::Number(opts.connections as f64)),
        ("rounds", JsonValue::Number(opts.rounds as f64)),
        ("batch", JsonValue::Number(opts.batch as f64)),
        ("wal_ops_replayed", JsonValue::Number(replayed as f64)),
        ("load", report.to_json()),
        ("server_metrics", server_metrics),
        ("parity_ok", JsonValue::Bool(failures == 0)),
    ]);
    if let Some(out) = &opts.out {
        if let Err(e) = std::fs::write(out, json.render()) {
            eprintln!("failed to write {out}: {e}");
            std::process::exit(1);
        }
        eprintln!("# wrote {out}");
    }

    if opts.serve_shutdown {
        ssr_bench::request_shutdown::<Symbol>(addr);
        // The listener should be gone within a few beats of the drain.
        let deadline = Instant::now() + Duration::from_secs(10);
        while ssr_bench::is_listening(addr) && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(100));
        }
        if ssr_bench::is_listening(addr) {
            eprintln!("FAIL server at {addr} still listening after shutdown request");
            failures += 1;
        } else {
            eprintln!("# server at {addr} shut down cleanly");
        }
    }

    if failures > 0 {
        std::process::exit(1);
    }
}

/// Fetches the server's Prometheus exposition over the wire.
fn scrape_metrics(addr: &str) -> Result<String, String> {
    let mut client = ssr_bench::connect_with_retry::<Symbol>(addr, Duration::from_secs(10))
        .map_err(|e| e.to_string())?;
    match client.request(&ssr_core::Request::Metrics) {
        Ok(ssr_core::Response::Metrics(text)) => Ok(text),
        Ok(other) => Err(format!("metrics answered with {other:?}")),
        Err(e) => Err(e.to_string()),
    }
}

/// Compares the deterministic counters of `report` against the committed
/// baseline, returning the number of failed gates.
fn check_baseline(path: &str, report: &JsonValue) -> usize {
    let text = match std::fs::read_to_string(path) {
        Ok(text) => text,
        Err(e) => {
            eprintln!("FAIL cannot read baseline {path}: {e}");
            return 1;
        }
    };
    let baseline = match JsonValue::parse(&text) {
        Ok(value) => value,
        Err(e) => {
            eprintln!("FAIL cannot parse baseline {path}: {e}");
            return 1;
        }
    };
    let mut failures = 0usize;
    for metric in GATED_METRICS {
        let Some(expected) = baseline.get(metric).and_then(JsonValue::as_f64) else {
            continue;
        };
        let Some(actual) = report.get(metric).and_then(JsonValue::as_f64) else {
            eprintln!("FAIL metric {metric} missing from the report");
            failures += 1;
            continue;
        };
        let limit = expected * (1.0 + GATE_TOLERANCE);
        if actual > limit {
            eprintln!(
                "FAIL {metric}: {actual} exceeds baseline {expected} by more than {:.0}%",
                GATE_TOLERANCE * 100.0
            );
            failures += 1;
        } else if actual < expected * (1.0 - GATE_TOLERANCE) {
            eprintln!(
                "NOTE {metric}: {actual} improved more than {:.0}% over baseline {expected}; \
                 consider refreshing bench/baseline.json",
                GATE_TOLERANCE * 100.0
            );
        } else {
            eprintln!(
                "OK   {metric}: {actual} within {:.0}% of {expected}",
                GATE_TOLERANCE * 100.0
            );
        }
    }
    failures
}
