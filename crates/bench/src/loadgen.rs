//! Closed-loop load generator for `ssr serve` — the client side of the CI
//! `serve-smoke` job.
//!
//! Each of `connections` worker threads opens one TCP connection and drives
//! it closed-loop for `rounds` requests: send a query batch, block for the
//! response, record the request's wall-clock, repeat. Closed-loop load keeps
//! the offered concurrency exactly at `connections`, so the measured
//! latencies are queueing-honest — no coordinated-omission correction
//! needed.
//!
//! Every connection cycles through the same deterministic request set, which
//! doubles as the parity fixture: the caller compares served outcomes
//! against an in-process [`ssr_core::QueryEngine`] over the same snapshot.
//! Latencies are aggregated into exact percentiles (the full sample vector
//! is kept — smoke-scale request counts make that free) plus a log₂
//! histogram for the bench JSON artifact.

use std::net::TcpStream;
use std::sync::Mutex;
use std::time::{Duration, Instant};

use ssr_core::serve::Client;
use ssr_core::wire::{Request, Response, ServerStatsSnapshot, WireError};
use ssr_storage::{StorableElement, StorageError};

use crate::json::JsonValue;

/// Load-generator knobs.
#[derive(Clone, Debug)]
pub struct LoadConfig {
    /// Server address, `host:port`.
    pub addr: String,
    /// Concurrent closed-loop connections.
    pub connections: usize,
    /// Requests each connection issues.
    pub rounds: usize,
    /// How long to keep retrying the initial connect (the server may still
    /// be loading its snapshot when the load generator starts).
    pub connect_timeout: Duration,
}

impl Default for LoadConfig {
    fn default() -> Self {
        LoadConfig {
            addr: "127.0.0.1:7878".to_string(),
            connections: 4,
            rounds: 25,
            connect_timeout: Duration::from_secs(30),
        }
    }
}

/// Exact latency percentiles plus a log₂ histogram of request wall-clocks.
#[derive(Clone, Debug, Default)]
pub struct LatencySummary {
    /// Number of samples.
    pub count: usize,
    /// 50th/95th/99th percentile and maximum, in nanoseconds.
    pub p50_ns: u64,
    /// 95th percentile in nanoseconds.
    pub p95_ns: u64,
    /// 99th percentile in nanoseconds.
    pub p99_ns: u64,
    /// Slowest request in nanoseconds.
    pub max_ns: u64,
    /// `histogram[i]` counts samples in `[2^i, 2^(i+1))` microseconds,
    /// with bucket 0 also absorbing sub-microsecond samples.
    pub histogram: Vec<u64>,
}

impl LatencySummary {
    /// Summarises a sample set. Percentiles are exact (nearest-rank over the
    /// sorted samples), not interpolated.
    pub fn from_samples(mut samples: Vec<u64>) -> LatencySummary {
        if samples.is_empty() {
            return LatencySummary::default();
        }
        samples.sort_unstable();
        let rank = |p: f64| -> u64 {
            let idx = ((p * samples.len() as f64).ceil() as usize).clamp(1, samples.len());
            samples[idx - 1]
        };
        // The shared ssr-obs histogram is the one source of truth for log2
        // bucketing — the server's request-duration histogram bins the same
        // way, so client and server distributions are directly comparable.
        let histogram = ssr_obs::Histogram::standalone();
        for &ns in &samples {
            histogram.observe(ns / 1_000);
        }
        LatencySummary {
            count: samples.len(),
            p50_ns: rank(0.50),
            p95_ns: rank(0.95),
            p99_ns: rank(0.99),
            max_ns: *samples.last().unwrap(),
            histogram: histogram.snapshot().trimmed_counts(),
        }
    }

    /// The summary as a JSON object for the bench report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("count", JsonValue::Number(self.count as f64)),
            ("p50_ms", JsonValue::Number(self.p50_ns as f64 / 1e6)),
            ("p95_ms", JsonValue::Number(self.p95_ns as f64 / 1e6)),
            ("p99_ms", JsonValue::Number(self.p99_ns as f64 / 1e6)),
            ("max_ms", JsonValue::Number(self.max_ns as f64 / 1e6)),
            (
                "histogram_us_log2",
                JsonValue::Array(
                    self.histogram
                        .iter()
                        .map(|&c| JsonValue::Number(c as f64))
                        .collect(),
                ),
            ),
        ])
    }
}

/// What one load run measured.
#[derive(Clone, Debug)]
pub struct LoadReport {
    /// Requests that completed with `Outcomes`.
    pub completed: u64,
    /// Requests rejected with [`WireError::Overloaded`].
    pub overloaded: u64,
    /// Requests that failed any other way (transport or protocol).
    pub failed: u64,
    /// End-to-end wall-clock of the whole run.
    pub wall_ns: u64,
    /// Completed requests per second.
    pub qps: f64,
    /// Latency summary over completed *and* overloaded requests (a fast
    /// typed rejection is still a served request).
    pub latency: LatencySummary,
    /// The server's counters after the run.
    pub server_stats: ServerStatsSnapshot,
    /// Cache hit rate after the run: hits / (hits + misses), 0 when idle.
    pub cache_hit_rate: f64,
    /// Served outcomes of the *last* completed round of request index 0, for
    /// parity checking against an in-process engine.
    pub sample_outcomes: Vec<ssr_core::WireOutcome>,
}

impl LoadReport {
    /// The report as a JSON object for the bench report.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("completed", JsonValue::Number(self.completed as f64)),
            ("overloaded", JsonValue::Number(self.overloaded as f64)),
            ("failed", JsonValue::Number(self.failed as f64)),
            ("wall_ms", JsonValue::Number(self.wall_ns as f64 / 1e6)),
            ("qps", JsonValue::Number(self.qps)),
            ("latency", self.latency.to_json()),
            ("cache_hit_rate", JsonValue::Number(self.cache_hit_rate)),
            (
                "server",
                JsonValue::object(vec![
                    (
                        "queries_executed",
                        JsonValue::Number(self.server_stats.queries_executed as f64),
                    ),
                    (
                        "cache_hits",
                        JsonValue::Number(self.server_stats.cache_hits as f64),
                    ),
                    (
                        "cache_misses",
                        JsonValue::Number(self.server_stats.cache_misses as f64),
                    ),
                    (
                        "cache_entries",
                        JsonValue::Number(self.server_stats.cache_entries as f64),
                    ),
                    (
                        "rejected_overload",
                        JsonValue::Number(self.server_stats.rejected_overload as f64),
                    ),
                    (
                        "workers",
                        JsonValue::Number(self.server_stats.workers as f64),
                    ),
                    (
                        "replicas",
                        JsonValue::Number(self.server_stats.replicas as f64),
                    ),
                    (
                        "arena_bytes",
                        JsonValue::Number(self.server_stats.arena_bytes as f64),
                    ),
                ]),
            ),
        ])
    }
}

/// Connects with retry until `timeout` — the server races the load generator
/// out of the same CI step and may still be loading its snapshot.
pub fn connect_with_retry<E: StorableElement>(
    addr: &str,
    timeout: Duration,
) -> Result<Client<E>, StorageError> {
    let deadline = Instant::now() + timeout;
    loop {
        match Client::connect(addr) {
            Ok(client) => return Ok(client),
            Err(err) => {
                if Instant::now() >= deadline {
                    return Err(StorageError::Io(err));
                }
                std::thread::sleep(Duration::from_millis(100));
            }
        }
    }
}

/// Waits until the server answers `Ping` (or the timeout lapses).
pub fn wait_until_ready<E: StorableElement>(
    addr: &str,
    timeout: Duration,
) -> Result<(), StorageError> {
    let deadline = Instant::now() + timeout;
    loop {
        match connect_with_retry::<E>(addr, deadline.saturating_duration_since(Instant::now())) {
            Ok(mut client) => match client.request(&Request::Ping) {
                Ok(Response::Pong) => return Ok(()),
                Ok(other) => {
                    return Err(StorageError::Malformed(format!(
                        "ping answered with {other:?}"
                    )))
                }
                Err(_) if Instant::now() < deadline => {
                    std::thread::sleep(Duration::from_millis(100));
                }
                Err(err) => return Err(err),
            },
            Err(err) => return Err(err),
        }
    }
}

/// Runs the closed-loop load: `config.connections` threads, each issuing
/// `config.rounds` requests cycling through `requests`. Returns the merged
/// measurement; any transport-level failure is counted, not fatal, so an
/// overloaded server yields a report rather than a crash.
pub fn run_load<E: StorableElement + Clone + Send + Sync>(
    config: &LoadConfig,
    requests: &[Request<E>],
) -> Result<LoadReport, StorageError> {
    assert!(!requests.is_empty(), "need at least one request shape");
    let started = Instant::now();
    let samples: Mutex<Vec<u64>> = Mutex::new(Vec::new());
    let counts: Mutex<(u64, u64, u64)> = Mutex::new((0, 0, 0)); // completed, overloaded, failed
    let sample_outcomes: Mutex<Vec<ssr_core::WireOutcome>> = Mutex::new(Vec::new());

    std::thread::scope(|scope| {
        for conn in 0..config.connections.max(1) {
            let samples = &samples;
            let counts = &counts;
            let sample_outcomes = &sample_outcomes;
            scope.spawn(move || {
                let Ok(mut client) = connect_with_retry::<E>(&config.addr, config.connect_timeout)
                else {
                    counts.lock().unwrap().2 += config.rounds as u64;
                    return;
                };
                let mut local_samples = Vec::with_capacity(config.rounds);
                for round in 0..config.rounds {
                    // Stagger request shapes across connections so every
                    // shape sees concurrent traffic from round one.
                    let request = &requests[(conn + round) % requests.len()];
                    let sent = Instant::now();
                    match client.request(request) {
                        Ok(Response::Outcomes(outcomes)) => {
                            local_samples.push(sent.elapsed().as_nanos() as u64);
                            counts.lock().unwrap().0 += 1;
                            if (conn + round) % requests.len() == 0 {
                                *sample_outcomes.lock().unwrap() = outcomes;
                            }
                        }
                        Ok(Response::Error(WireError::Overloaded)) => {
                            local_samples.push(sent.elapsed().as_nanos() as u64);
                            counts.lock().unwrap().1 += 1;
                        }
                        Ok(_) | Err(_) => {
                            counts.lock().unwrap().2 += 1;
                            // The connection may be dead; reconnect for the
                            // remaining rounds.
                            match connect_with_retry::<E>(&config.addr, Duration::from_secs(5)) {
                                Ok(fresh) => client = fresh,
                                Err(_) => {
                                    counts.lock().unwrap().2 += (config.rounds - round - 1) as u64;
                                    break;
                                }
                            }
                        }
                    }
                }
                samples.lock().unwrap().extend(local_samples);
            });
        }
    });

    let wall_ns = started.elapsed().as_nanos() as u64;
    let (completed, overloaded, failed) = *counts.lock().unwrap();
    let latency = LatencySummary::from_samples(samples.into_inner().unwrap());

    // One more connection for the final counter snapshot.
    let mut client = connect_with_retry::<E>(&config.addr, config.connect_timeout)?;
    let server_stats = match client.request(&Request::Stats)? {
        Response::Stats(stats) => stats,
        other => {
            return Err(StorageError::Malformed(format!(
                "stats answered with {other:?}"
            )))
        }
    };
    let lookups = server_stats.cache_hits + server_stats.cache_misses;
    let cache_hit_rate = if lookups == 0 {
        0.0
    } else {
        server_stats.cache_hits as f64 / lookups as f64
    };

    Ok(LoadReport {
        completed,
        overloaded,
        failed,
        wall_ns,
        qps: if wall_ns == 0 {
            0.0
        } else {
            completed as f64 * 1e9 / wall_ns as f64
        },
        latency,
        server_stats,
        cache_hit_rate,
        sample_outcomes: sample_outcomes.into_inner().unwrap(),
    })
}

/// Asks the server to shut down; best-effort (the server may already be
/// gone, which is the desired end state anyway).
pub fn request_shutdown<E: StorableElement>(addr: &str) {
    if let Ok(mut client) = connect_with_retry::<E>(addr, Duration::from_secs(5)) {
        let _ = client.request(&Request::<E>::Shutdown);
    }
}

/// Probes whether anything still listens at `addr` (used by the CI smoke
/// script to assert the server exited after a wire shutdown).
pub fn is_listening(addr: &str) -> bool {
    TcpStream::connect(addr).is_ok()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The inline bucketing the load generator used before the histogram
    /// moved into `ssr-obs`, kept verbatim as the reference implementation.
    fn legacy_bucket(us: u64) -> usize {
        if us <= 1 {
            0
        } else {
            (u64::BITS - (us - 1).leading_zeros()) as usize
        }
    }

    #[test]
    fn shared_histogram_matches_legacy_bucketing() {
        // Exhaustive around every power-of-two edge plus the extremes: the
        // shared ssr-obs bucketing must be bit-identical to the formula the
        // loadgen previously inlined, or historical bench JSON artifacts
        // stop being comparable.
        let mut values = vec![0u64, 1, 2, 3, u64::MAX - 1, u64::MAX];
        for shift in 1..64u32 {
            let edge = 1u64 << shift;
            values.extend([edge - 1, edge, edge.saturating_add(1)]);
        }
        for v in values {
            assert_eq!(
                ssr_obs::log2_bucket(v),
                legacy_bucket(v),
                "bucket mismatch at {v}"
            );
        }
    }

    #[test]
    fn from_samples_bins_like_the_legacy_histogram() {
        let samples: Vec<u64> = vec![
            500,        // sub-microsecond -> bucket 0
            1_000,      // 1us -> bucket 0
            2_000,      // 2us -> bucket 1
            3_000,      // 3us -> bucket 2
            1_024_000,  // 1024us -> bucket 10
            1_025_000,  // 1025us -> bucket 11
            50_000_000, // 50ms
        ];
        let summary = LatencySummary::from_samples(samples.clone());
        let mut legacy = Vec::new();
        for &ns in &samples {
            let bucket = legacy_bucket(ns / 1_000);
            if legacy.len() <= bucket {
                legacy.resize(bucket + 1, 0u64);
            }
            legacy[bucket] += 1;
        }
        assert_eq!(summary.histogram, legacy);
        assert_eq!(summary.count, samples.len());
    }
}
