//! A small validating parser for Prometheus text exposition, used by
//! `bench --serve` and `ssr stats --check` to gate the telemetry endpoint
//! in CI without pulling in a real Prometheus client.
//!
//! The checker is deliberately stricter than Prometheus itself where the
//! strictness catches exporter bugs:
//!
//! * every sample must belong to a family announced by a `# TYPE` line,
//! * histogram `_bucket` series must be cumulative (monotone in `le`) and
//!   end with an `+Inf` bucket equal to the family's `_count`,
//! * values must parse as finite non-negative numbers (nothing in this
//!   workspace legitimately exports NaN or negative counters).

use std::collections::BTreeMap;
use std::fmt;

/// What a `# TYPE` line declared for a family.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum FamilyKind {
    /// `# TYPE name counter`
    Counter,
    /// `# TYPE name gauge`
    Gauge,
    /// `# TYPE name histogram`
    Histogram,
}

/// One sample line: `name{labels} value`.
#[derive(Clone, Debug)]
pub struct Sample {
    /// The full series name as written (`ssr_request_duration_us_bucket`,
    /// not the family name).
    pub name: String,
    /// Label pairs in written order.
    pub labels: Vec<(String, String)>,
    /// The sample value.
    pub value: f64,
}

impl Sample {
    /// The value of a label, if present.
    pub fn label(&self, key: &str) -> Option<&str> {
        self.labels
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| v.as_str())
    }
}

/// A parsed, validated exposition.
#[derive(Debug, Default)]
pub struct Exposition {
    /// Family name -> declared kind.
    pub families: BTreeMap<String, FamilyKind>,
    /// Every sample line, in document order.
    pub samples: Vec<Sample>,
}

/// Why an exposition failed validation, with the offending line.
#[derive(Debug)]
pub struct PromError {
    /// 1-based line number (0 for document-level failures).
    pub line: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for PromError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.line == 0 {
            write!(f, "exposition invalid: {}", self.message)
        } else {
            write!(f, "exposition line {}: {}", self.line, self.message)
        }
    }
}

impl std::error::Error for PromError {}

fn err(line: usize, message: impl Into<String>) -> PromError {
    PromError {
        line,
        message: message.into(),
    }
}

/// Splits a sample's label block `key="value",key="value"` into pairs.
fn parse_labels(line_no: usize, block: &str) -> Result<Vec<(String, String)>, PromError> {
    let mut labels = Vec::new();
    let mut rest = block;
    while !rest.is_empty() {
        let eq = rest
            .find('=')
            .ok_or_else(|| err(line_no, format!("label without '=': {rest:?}")))?;
        let key = rest[..eq].trim().to_string();
        let after = &rest[eq + 1..];
        if !after.starts_with('"') {
            return Err(err(line_no, format!("unquoted label value after {key}")));
        }
        let close = after[1..]
            .find('"')
            .ok_or_else(|| err(line_no, format!("unterminated label value for {key}")))?;
        let value = after[1..1 + close].to_string();
        labels.push((key, value));
        rest = after[close + 2..].trim_start_matches(',').trim_start();
    }
    Ok(labels)
}

/// The family a series name belongs to: `_bucket`/`_sum`/`_count` suffixes
/// fold into their histogram family when one is declared under that name.
fn family_of<'a>(name: &'a str, families: &BTreeMap<String, FamilyKind>) -> Option<&'a str> {
    if families.contains_key(name) {
        return Some(name);
    }
    for suffix in ["_bucket", "_sum", "_count"] {
        if let Some(stem) = name.strip_suffix(suffix) {
            if families.get(stem) == Some(&FamilyKind::Histogram) {
                return Some(stem);
            }
        }
    }
    None
}

/// Parses and validates a text exposition. Returns the parsed document or
/// the first validation failure.
pub fn parse(text: &str) -> Result<Exposition, PromError> {
    let mut doc = Exposition::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| err(line_no, "TYPE line without a name"))?;
            let kind = match parts.next() {
                Some("counter") => FamilyKind::Counter,
                Some("gauge") => FamilyKind::Gauge,
                Some("histogram") => FamilyKind::Histogram,
                other => return Err(err(line_no, format!("unsupported TYPE {other:?}"))),
            };
            if doc.families.insert(name.to_string(), kind).is_some() {
                return Err(err(line_no, format!("family {name} declared twice")));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP and other comments.
        }
        let (series, value_text) = match line.rfind(' ') {
            Some(space) => (&line[..space], line[space + 1..].trim()),
            None => return Err(err(line_no, "sample line without a value")),
        };
        let value: f64 = if value_text == "+Inf" {
            f64::INFINITY
        } else {
            value_text
                .parse()
                .map_err(|_| err(line_no, format!("unparsable value {value_text:?}")))?
        };
        if !value.is_finite() || value < 0.0 {
            return Err(err(
                line_no,
                format!("value {value} is not a finite non-negative number"),
            ));
        }
        let (name, labels) = match series.find('{') {
            Some(open) => {
                if !series.ends_with('}') {
                    return Err(err(line_no, "unterminated label block"));
                }
                (
                    series[..open].to_string(),
                    parse_labels(line_no, &series[open + 1..series.len() - 1])?,
                )
            }
            None => (series.to_string(), Vec::new()),
        };
        if name.is_empty() {
            return Err(err(line_no, "sample line without a name"));
        }
        if family_of(&name, &doc.families).is_none() {
            return Err(err(line_no, format!("sample {name} has no # TYPE line")));
        }
        doc.samples.push(Sample {
            name,
            labels,
            value,
        });
    }
    validate_histograms(&doc)?;
    Ok(doc)
}

/// Groups histogram samples by (family, non-`le` labels) and checks each
/// series: buckets cumulative, `+Inf` present and equal to `_count`.
fn validate_histograms(doc: &Exposition) -> Result<(), PromError> {
    #[derive(Default)]
    struct SeriesCheck {
        buckets: Vec<(f64, f64)>, // (le, cumulative count); le = inf for +Inf
        count: Option<f64>,
    }
    let mut series: BTreeMap<String, SeriesCheck> = BTreeMap::new();
    for family in doc
        .families
        .iter()
        .filter(|(_, &k)| k == FamilyKind::Histogram)
        .map(|(name, _)| name)
    {
        for sample in &doc.samples {
            let own_labels: Vec<&(String, String)> =
                sample.labels.iter().filter(|(k, _)| k != "le").collect();
            let key = format!("{family}{own_labels:?}");
            if sample.name == format!("{family}_bucket") {
                let le = match sample.label("le") {
                    Some("+Inf") => f64::INFINITY,
                    Some(text) => text
                        .parse()
                        .map_err(|_| err(0, format!("{family}: bad le {text:?}")))?,
                    None => return Err(err(0, format!("{family}: bucket without le"))),
                };
                series
                    .entry(key)
                    .or_default()
                    .buckets
                    .push((le, sample.value));
            } else if sample.name == format!("{family}_count") {
                series.entry(key).or_default().count = Some(sample.value);
            }
        }
    }
    for (key, check) in &series {
        let count = check
            .count
            .ok_or_else(|| err(0, format!("{key}: histogram without _count")))?;
        let mut prev_le = f64::NEG_INFINITY;
        let mut prev_cum = 0.0;
        for &(le, cum) in &check.buckets {
            if le <= prev_le {
                return Err(err(0, format!("{key}: le not increasing at {le}")));
            }
            if cum < prev_cum {
                return Err(err(0, format!("{key}: buckets not cumulative at le={le}")));
            }
            prev_le = le;
            prev_cum = cum;
        }
        match check.buckets.last() {
            Some(&(le, cum)) if le == f64::INFINITY => {
                if cum != count {
                    return Err(err(
                        0,
                        format!("{key}: +Inf bucket {cum} != _count {count}"),
                    ));
                }
            }
            _ => return Err(err(0, format!("{key}: histogram missing +Inf bucket"))),
        }
    }
    Ok(())
}

impl Exposition {
    /// The value of the single series `name` with exactly the given labels
    /// (order-insensitive), or `None`.
    pub fn value(&self, name: &str, labels: &[(&str, &str)]) -> Option<f64> {
        self.samples
            .iter()
            .find(|s| {
                s.name == name
                    && s.labels.len() == labels.len()
                    && labels.iter().all(|(k, v)| s.label(k) == Some(v))
            })
            .map(|s| s.value)
    }

    /// The value of the unlabeled series `name`.
    pub fn scalar(&self, name: &str) -> Option<f64> {
        self.value(name, &[])
    }

    /// Sums every series of `name`, whatever its labels (for per-shard and
    /// per-replica counter families).
    pub fn sum(&self, name: &str) -> f64 {
        self.samples
            .iter()
            .filter(|s| s.name == name)
            .map(|s| s.value)
            .sum()
    }

    /// Reconstructs an [`ssr_obs::HistogramSnapshot`] from the unlabeled
    /// histogram family `name`, so the scraped distribution answers
    /// percentile queries with the same code the server used to bin it.
    /// Returns `None` when the family is absent or an edge is not a power
    /// of two of the ssr-obs bucketing.
    pub fn histogram_snapshot(&self, name: &str) -> Option<ssr_obs::HistogramSnapshot> {
        if self.families.get(name) != Some(&FamilyKind::Histogram) {
            return None;
        }
        let bucket_name = format!("{name}_bucket");
        let mut counts = vec![0u64; ssr_obs::HISTOGRAM_BUCKETS];
        let mut prev_cum = 0u64;
        let mut saw_inf = false;
        for sample in self.samples.iter().filter(|s| s.name == bucket_name) {
            let cum = sample.value as u64;
            let bucket = match sample.label("le")? {
                "+Inf" => {
                    saw_inf = true;
                    // Everything past the last explicit edge lands in the
                    // top bucket; for ssr-obs expositions the fold target
                    // is whichever bucket follows the last rendered edge,
                    // but placing the remainder in the final bucket keeps
                    // every percentile query conservative.
                    ssr_obs::HISTOGRAM_BUCKETS - 1
                }
                text => {
                    let le: u64 = text.parse().ok()?;
                    let bucket = ssr_obs::log2_bucket(le);
                    if ssr_obs::bucket_upper_edge(bucket) != le {
                        return None;
                    }
                    bucket
                }
            };
            counts[bucket] += cum.saturating_sub(prev_cum);
            prev_cum = cum;
        }
        if !saw_inf {
            return None;
        }
        let sum = self.scalar(&format!("{name}_sum"))? as u64;
        Some(ssr_obs::HistogramSnapshot { counts, sum })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_real_registry_render() {
        let registry = ssr_obs::Registry::new();
        registry.counter("ssr_t_total", "a counter").add(3);
        registry.gauge("ssr_t_depth", "a gauge").set(7);
        let h = registry.histogram("ssr_t_us", "a histogram");
        for v in [1u64, 3, 3, 100] {
            h.observe(v);
        }
        let doc = parse(&registry.render()).expect("own render must validate");
        assert_eq!(doc.scalar("ssr_t_total"), Some(3.0));
        assert_eq!(doc.scalar("ssr_t_depth"), Some(7.0));
        assert_eq!(doc.scalar("ssr_t_us_count"), Some(4.0));
        let snapshot = doc.histogram_snapshot("ssr_t_us").expect("histogram");
        assert_eq!(snapshot.count(), 4);
        assert_eq!(snapshot.sum, 107);
        // p50 of [1,3,3,100] is 3 -> bucket 2, lower edge 2.
        assert_eq!(snapshot.percentile_lower_edge(0.5), Some(2));
    }

    #[test]
    fn rejects_samples_without_a_type_line() {
        let text = "ssr_orphan_total 1\n";
        assert!(parse(text).is_err());
    }

    #[test]
    fn rejects_non_cumulative_buckets() {
        let text = "\
# TYPE ssr_h histogram
ssr_h_bucket{le=\"1\"} 5
ssr_h_bucket{le=\"2\"} 3
ssr_h_bucket{le=\"+Inf\"} 5
ssr_h_sum 9
ssr_h_count 5
";
        let error = parse(text).expect_err("buckets decrease");
        assert!(error.message.contains("cumulative"), "{error}");
    }

    #[test]
    fn rejects_inf_bucket_count_mismatch() {
        let text = "\
# TYPE ssr_h histogram
ssr_h_bucket{le=\"1\"} 5
ssr_h_bucket{le=\"+Inf\"} 5
ssr_h_sum 9
ssr_h_count 6
";
        let error = parse(text).expect_err("+Inf != count");
        assert!(error.message.contains("_count"), "{error}");
    }

    #[test]
    fn rejects_negative_and_nan_values() {
        assert!(parse("# TYPE ssr_g gauge\nssr_g -1\n").is_err());
        assert!(parse("# TYPE ssr_g gauge\nssr_g NaN\n").is_err());
    }

    #[test]
    fn labeled_lookup_and_sum() {
        let text = "\
# TYPE ssr_shard_total counter
ssr_shard_total{shard=\"0\"} 2
ssr_shard_total{shard=\"1\"} 3
";
        let doc = parse(text).expect("valid");
        assert_eq!(doc.value("ssr_shard_total", &[("shard", "1")]), Some(3.0));
        assert_eq!(doc.sum("ssr_shard_total"), 5.0);
    }
}
