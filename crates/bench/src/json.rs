//! Minimal JSON emission and parsing for the bench harness.
//!
//! The workspace has no crates.io access (no `serde`), and the CI
//! perf-regression gate only needs to write `BENCH_<date>.json` reports and
//! read back the flat numeric baseline in `bench/baseline.json`, so this
//! module implements exactly that: a [`JsonValue`] tree with a pretty
//! renderer and a strict recursive-descent parser for the standard JSON
//! grammar (`\u` escapes are parsed for Basic-Multilingual-Plane code
//! points, which covers everything the renderer emits; surrogate pairs are
//! rejected).

use std::fmt::Write as _;

/// A JSON value.
#[derive(Clone, Debug, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any number (rendered without a fraction when integral).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<JsonValue>),
    /// An object; insertion order is preserved.
    Object(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Convenience constructor for object members.
    pub fn object(members: Vec<(&str, JsonValue)>) -> JsonValue {
        JsonValue::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    }

    /// Looks up a member of an object.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The numeric value, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            JsonValue::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The string value, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::String(s) => Some(s),
            _ => None,
        }
    }

    /// The members, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, JsonValue)]> {
        match self {
            JsonValue::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Renders the value as pretty-printed JSON (two-space indent, trailing
    /// newline), suitable for committing as a baseline and diffing.
    pub fn render(&self) -> String {
        let mut out = String::new();
        self.render_into(&mut out, 0);
        out.push('\n');
        out
    }

    fn render_into(&self, out: &mut String, indent: usize) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            JsonValue::Number(n) => {
                if n.fract() == 0.0 && n.abs() < 9e15 {
                    let _ = write!(out, "{}", *n as i64);
                } else {
                    let _ = write!(out, "{n}");
                }
            }
            JsonValue::String(s) => render_string(out, s),
            JsonValue::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    item.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push(']');
            }
            JsonValue::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    out.push_str(&"  ".repeat(indent + 1));
                    render_string(out, key);
                    out.push_str(": ");
                    value.render_into(out, indent + 1);
                }
                out.push('\n');
                out.push_str(&"  ".repeat(indent));
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (a single value with nothing but whitespace
    /// around it).
    pub fn parse(text: &str) -> Result<JsonValue, String> {
        let bytes = text.as_bytes();
        let mut pos = 0usize;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(format!("trailing content at byte {pos}"));
        }
        Ok(value)
    }
}

fn render_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\t' => out.push_str("\\t"),
            '\r' => out.push_str("\\r"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, byte: u8) -> Result<(), String> {
    if bytes.get(*pos) == Some(&byte) {
        *pos += 1;
        Ok(())
    } else {
        Err(format!(
            "expected '{}' at byte {}, found {:?}",
            byte as char,
            *pos,
            bytes.get(*pos).map(|&b| b as char)
        ))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".to_string()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(JsonValue::String(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {}", *pos))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    std::str::from_utf8(&bytes[start..*pos])
        .ok()
        .and_then(|s| s.parse::<f64>().ok())
        .map(JsonValue::Number)
        .ok_or_else(|| format!("invalid number at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    expect(bytes, pos, b'"')?;
    let mut out = Vec::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".to_string()),
            Some(b'"') => {
                *pos += 1;
                return String::from_utf8(out).map_err(|e| e.to_string());
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push(b'"'),
                    Some(b'\\') => out.push(b'\\'),
                    Some(b'/') => out.push(b'/'),
                    Some(b'n') => out.push(b'\n'),
                    Some(b't') => out.push(b'\t'),
                    Some(b'r') => out.push(b'\r'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| format!("invalid \\u escape at byte {}", *pos))?;
                        let c = char::from_u32(hex).ok_or_else(|| {
                            format!("\\u escape at byte {} is not a scalar value", *pos)
                        })?;
                        let mut buf = [0u8; 4];
                        out.extend_from_slice(c.encode_utf8(&mut buf).as_bytes());
                        *pos += 4;
                    }
                    other => {
                        return Err(format!(
                            "unsupported escape {:?} at byte {}",
                            other.map(|&b| b as char),
                            *pos
                        ))
                    }
                }
                *pos += 1;
            }
            Some(&b) => {
                out.push(b);
                *pos += 1;
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'[')?;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Array(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Array(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {}", *pos)),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    expect(bytes, pos, b'{')?;
    let mut members = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Object(members));
    }
    loop {
        skip_ws(bytes, pos);
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        expect(bytes, pos, b':')?;
        let value = parse_value(bytes, pos)?;
        members.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Object(members));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {}", *pos)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_and_reparse_roundtrips() {
        let doc = JsonValue::object(vec![
            ("name", JsonValue::String("bench \"smoke\"".to_string())),
            ("count", JsonValue::Number(42.0)),
            ("ratio", JsonValue::Number(2.5)),
            ("ok", JsonValue::Bool(true)),
            ("missing", JsonValue::Null),
            (
                "stages",
                JsonValue::Array(vec![JsonValue::Number(1.0), JsonValue::Number(2.0)]),
            ),
            ("empty", JsonValue::Object(Vec::new())),
        ]);
        let text = doc.render();
        let parsed = JsonValue::parse(&text).unwrap();
        assert_eq!(parsed, doc);
        assert_eq!(parsed.get("count").and_then(JsonValue::as_f64), Some(42.0));
        assert_eq!(
            parsed.get("name").and_then(JsonValue::as_str),
            Some("bench \"smoke\"")
        );
    }

    #[test]
    fn integers_render_without_fraction() {
        assert_eq!(JsonValue::Number(120000.0).render(), "120000\n");
        assert_eq!(JsonValue::Number(0.5).render(), "0.5\n");
    }

    #[test]
    fn parses_nested_documents() {
        let parsed =
            JsonValue::parse(r#"{"a": {"b": [1, 2.5, "x", false, null]}, "c": -3e2}"#).unwrap();
        let inner = parsed.get("a").and_then(|a| a.get("b")).unwrap();
        match inner {
            JsonValue::Array(items) => assert_eq!(items.len(), 5),
            _ => panic!("expected array"),
        }
        assert_eq!(parsed.get("c").and_then(JsonValue::as_f64), Some(-300.0));
    }

    #[test]
    fn control_characters_roundtrip_through_unicode_escapes() {
        let doc = JsonValue::String("bell\u{7} tab\t".to_string());
        let text = doc.render();
        assert!(text.contains("\\u0007"));
        assert_eq!(JsonValue::parse(&text).unwrap(), doc);
        assert!(JsonValue::parse("\"\\uD800\"").is_err(), "lone surrogate");
        assert!(JsonValue::parse("\"\\uZZZZ\"").is_err());
    }

    #[test]
    fn rejects_malformed_documents() {
        assert!(JsonValue::parse("{").is_err());
        assert!(JsonValue::parse("[1, 2,]").is_err());
        assert!(JsonValue::parse("{\"a\": 1} trailing").is_err());
        assert!(JsonValue::parse("\"unterminated").is_err());
    }
}
