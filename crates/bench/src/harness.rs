//! Index construction, query workloads and pruning-ratio measurement.

use ssr_distance::{CallCounter, SequenceDistance};
use ssr_index::{
    CountingMetric, CoverTree, LinearScan, MvReferenceIndex, RangeIndex, ReferenceNet,
    ReferenceNetConfig, SequenceMetricAdapter, SpaceStats,
};
use ssr_sequence::Element;

/// Which index an experiment exercises, in the paper's nomenclature.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum IndexChoice {
    /// Reference Net with unconstrained parents ("RN").
    ReferenceNet,
    /// Reference Net with `nummax` parents ("RN-nummax", e.g. RN-5 / DFD-5).
    ReferenceNetCapped(usize),
    /// Cover Tree ("CT").
    CoverTree,
    /// Maximum-Variance reference-based indexing with `k` pivots ("MV-k").
    MaxVariance(usize),
    /// Naive linear scan.
    Linear,
}

impl IndexChoice {
    /// Label used in the printed tables.
    pub fn label(&self) -> String {
        match self {
            IndexChoice::ReferenceNet => "RN".to_string(),
            IndexChoice::ReferenceNetCapped(n) => format!("RN-{n}"),
            IndexChoice::CoverTree => "CT".to_string(),
            IndexChoice::MaxVariance(k) => format!("MV-{k}"),
            IndexChoice::Linear => "naive".to_string(),
        }
    }
}

type Metric<D> = CountingMetric<SequenceMetricAdapter<D>>;

/// A built index together with the counter observing its metric, hiding the
/// concrete index type behind one enum so experiments can sweep choices.
pub enum IndexHandle<E: Element + Send + Sync, D: SequenceDistance<E>> {
    /// Reference Net variant.
    ReferenceNet(ReferenceNet<Vec<E>, Metric<D>>, CallCounter),
    /// Cover Tree variant.
    CoverTree(CoverTree<Vec<E>, Metric<D>>, CallCounter),
    /// MV-k variant.
    MaxVariance(MvReferenceIndex<Vec<E>, Metric<D>>, CallCounter),
    /// Linear scan variant.
    Linear(LinearScan<Vec<E>, Metric<D>>, CallCounter),
}

impl<E: Element + Send + Sync, D: SequenceDistance<E>> IndexHandle<E, D> {
    /// Counter observing every distance evaluation of the index's metric.
    pub fn counter(&self) -> &CallCounter {
        match self {
            IndexHandle::ReferenceNet(_, c)
            | IndexHandle::CoverTree(_, c)
            | IndexHandle::MaxVariance(_, c)
            | IndexHandle::Linear(_, c) => c,
        }
    }

    /// Number of indexed windows.
    pub fn len(&self) -> usize {
        match self {
            IndexHandle::ReferenceNet(idx, _) => idx.len(),
            IndexHandle::CoverTree(idx, _) => idx.len(),
            IndexHandle::MaxVariance(idx, _) => idx.len(),
            IndexHandle::Linear(idx, _) => idx.len(),
        }
    }

    /// Whether the index holds no windows.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Space statistics of the index.
    pub fn space_stats(&self) -> SpaceStats {
        match self {
            IndexHandle::ReferenceNet(idx, _) => idx.space_stats(),
            IndexHandle::CoverTree(idx, _) => idx.space_stats(),
            IndexHandle::MaxVariance(idx, _) => idx.space_stats(),
            IndexHandle::Linear(idx, _) => idx.space_stats(),
        }
    }

    /// Runs a range query, returning the number of results found.
    pub fn range_query_count(&self, query: &Vec<E>, radius: f64) -> usize {
        match self {
            IndexHandle::ReferenceNet(idx, _) => idx.range_query(query, radius).len(),
            IndexHandle::CoverTree(idx, _) => idx.range_query(query, radius).len(),
            IndexHandle::MaxVariance(idx, _) => idx.range_query(query, radius).len(),
            IndexHandle::Linear(idx, _) => idx.range_query(query, radius).len(),
        }
    }
}

/// Builds the chosen index over `windows` under `distance` (with `ǫ' = 1`, as
/// in all the paper's experiments).
pub fn build_index<E, D>(choice: IndexChoice, windows: &[Vec<E>], distance: D) -> IndexHandle<E, D>
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    let counter = CallCounter::new();
    let metric = CountingMetric::new(SequenceMetricAdapter::new(distance), counter.clone());
    match choice {
        IndexChoice::ReferenceNet => {
            let mut idx = ReferenceNet::new(metric);
            idx.extend(windows.iter().cloned());
            IndexHandle::ReferenceNet(idx, counter)
        }
        IndexChoice::ReferenceNetCapped(nummax) => {
            let config = ReferenceNetConfig::with_epsilon_prime(1.0).with_max_parents(nummax);
            let mut idx = ReferenceNet::with_config(metric, config);
            idx.extend(windows.iter().cloned());
            IndexHandle::ReferenceNet(idx, counter)
        }
        IndexChoice::CoverTree => {
            let mut idx = CoverTree::new(metric);
            idx.extend(windows.iter().cloned());
            IndexHandle::CoverTree(idx, counter)
        }
        IndexChoice::MaxVariance(k) => {
            let mut idx = MvReferenceIndex::new(metric, k);
            idx.extend(windows.iter().cloned());
            IndexHandle::MaxVariance(idx, counter)
        }
        IndexChoice::Linear => {
            let mut idx = LinearScan::new(metric);
            idx.extend(windows.iter().cloned());
            IndexHandle::Linear(idx, counter)
        }
    }
}

/// A set of query windows used for the range-query experiments of
/// Figures 8–11: windows drawn from an independently generated dataset of the
/// same kind, so they resemble the database without being stored in it.
pub struct QuerySet<E> {
    /// The query windows.
    pub queries: Vec<Vec<E>>,
}

impl<E: Clone> QuerySet<E> {
    /// Takes every `stride`-th window of an independently generated pool,
    /// up to `count` queries.
    pub fn from_pool(pool: &[Vec<E>], count: usize) -> Self {
        let stride = (pool.len() / count.max(1)).max(1);
        QuerySet {
            queries: pool.iter().step_by(stride).take(count).cloned().collect(),
        }
    }
}

/// Measures the fraction of distance computations an index performs, relative
/// to a naive scan, averaged over the query set at the given radius. Also
/// returns the average number of results per query so that experiments can
/// correlate pruning with selectivity (as Figure 10 does).
pub fn pruning_ratio<E, D>(
    handle: &IndexHandle<E, D>,
    queries: &QuerySet<E>,
    radius: f64,
) -> (f64, f64)
where
    E: Element + Send + Sync,
    D: SequenceDistance<E>,
{
    let n = handle.len() as f64;
    if n == 0.0 || queries.queries.is_empty() {
        return (0.0, 0.0);
    }
    let counter = handle.counter().clone();
    counter.reset();
    let mut total_results = 0usize;
    for q in &queries.queries {
        total_results += handle.range_query_count(q, radius);
    }
    let calls = counter.reset() as f64;
    let per_query = calls / queries.queries.len() as f64;
    (
        per_query / n,
        total_results as f64 / queries.queries.len() as f64,
    )
}

/// Samples the pairwise distance distribution of `windows` (up to
/// `max_pairs` pairs, deterministically strided) and returns a histogram with
/// `buckets` equal-width buckets over `[0, max_value]` as fractions of the
/// sampled pairs.
pub fn distance_histogram<E, D>(
    windows: &[Vec<E>],
    distance: &D,
    max_value: f64,
    buckets: usize,
    max_pairs: usize,
) -> Vec<f64>
where
    E: Element,
    D: SequenceDistance<E>,
{
    assert!(buckets > 0 && max_value > 0.0);
    let n = windows.len();
    let mut counts = vec![0usize; buckets];
    let mut total = 0usize;
    if n < 2 {
        return vec![0.0; buckets];
    }
    // Deterministic pair sampling: stride through the strict upper triangle.
    let total_pairs = n * (n - 1) / 2;
    let stride = (total_pairs / max_pairs.max(1)).max(1);
    let mut pair_index = 0usize;
    'outer: for i in 0..n {
        for j in (i + 1)..n {
            if pair_index.is_multiple_of(stride) {
                let d = distance.distance(&windows[i], &windows[j]);
                let bucket = ((d / max_value) * buckets as f64).floor() as usize;
                counts[bucket.min(buckets - 1)] += 1;
                total += 1;
                if total >= max_pairs {
                    break 'outer;
                }
            }
            pair_index += 1;
        }
    }
    counts
        .into_iter()
        .map(|c| c as f64 / total.max(1) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::datasets::protein_windows;
    use ssr_distance::Levenshtein;

    #[test]
    fn all_index_choices_build_and_answer() {
        let windows = protein_windows(200, 1);
        let pool = protein_windows(50, 99);
        let queries = QuerySet::from_pool(&pool, 5);
        for choice in [
            IndexChoice::ReferenceNet,
            IndexChoice::ReferenceNetCapped(3),
            IndexChoice::CoverTree,
            IndexChoice::MaxVariance(5),
            IndexChoice::Linear,
        ] {
            let handle = build_index(choice, &windows, Levenshtein::new());
            assert_eq!(handle.len(), windows.len(), "{}", choice.label());
            let (ratio, _) = pruning_ratio(&handle, &queries, 4.0);
            assert!(
                (0.0..=1.01).contains(&ratio),
                "{} ratio {ratio}",
                choice.label()
            );
        }
    }

    #[test]
    fn linear_scan_ratio_is_one() {
        let windows = protein_windows(100, 2);
        let queries = QuerySet::from_pool(&windows, 3);
        let handle = build_index(IndexChoice::Linear, &windows, Levenshtein::new());
        let (ratio, _) = pruning_ratio(&handle, &queries, 2.0);
        assert!((ratio - 1.0).abs() < 1e-9);
    }

    #[test]
    fn indexes_agree_on_result_counts() {
        let windows = protein_windows(300, 3);
        let pool = protein_windows(40, 77);
        let queries = QuerySet::from_pool(&pool, 4);
        let rn = build_index(IndexChoice::ReferenceNet, &windows, Levenshtein::new());
        let ct = build_index(IndexChoice::CoverTree, &windows, Levenshtein::new());
        let naive = build_index(IndexChoice::Linear, &windows, Levenshtein::new());
        for q in &queries.queries {
            for radius in [1.0, 4.0, 10.0] {
                let expected = naive.range_query_count(q, radius);
                assert_eq!(rn.range_query_count(q, radius), expected);
                assert_eq!(ct.range_query_count(q, radius), expected);
            }
        }
    }

    #[test]
    fn histogram_sums_to_one_and_respects_bounds() {
        let windows = protein_windows(100, 4);
        let hist = distance_histogram(&windows, &Levenshtein::new(), 20.0, 10, 500);
        let sum: f64 = hist.iter().sum();
        assert!((sum - 1.0).abs() < 1e-9);
        assert_eq!(hist.len(), 10);
    }

    #[test]
    fn query_set_from_pool_limits_count() {
        let pool = protein_windows(60, 5);
        let qs = QuerySet::from_pool(&pool, 10);
        assert!(qs.queries.len() <= 10);
        assert!(!qs.queries.is_empty());
    }
}
