//! The seeded chaos harness behind `bench --chaos`: runs a fixed set of
//! fault schedules — torn WAL writes, a compaction-window crash, a worker
//! panic, a dropped accept ridden out by the retrying client, and a graceful
//! drain — against real on-disk state and a real server, in-process, and
//! verifies the recovery invariants after each one:
//!
//! * **zero acked loss** — every operation that returned `Ok` survives the
//!   simulated crash;
//! * **bit-identical recovery** — the reopened database equals an
//!   uninterrupted reference byte-for-byte via `snapshot_bytes()`;
//! * **counter consistency** — `ssr_faults_injected_total` and the client's
//!   retry tally match what the schedule actually fired.
//!
//! Every schedule is deterministic in `--chaos-seed`: the `prob-P-SEED`
//! trigger hashes a per-site hit counter, so CI replays byte-identical
//! fault sequences. The harness exits through [`run_chaos`]'s report; the
//! binary turns any failed schedule into a nonzero exit.

use std::path::PathBuf;
use std::time::Duration;

use ssr_core::serve::{Client, ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response, WireError};
use ssr_core::{ClientConfig, LiveDatabase, SubsequenceDatabase, WireClient};
use ssr_datagen::{generate_proteins, ProteinConfig};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

use crate::json::JsonValue;

/// One schedule's verdict, for the text log and the JSON artifact.
pub struct ChaosOutcome {
    /// Schedule name (stable, used by CI greps).
    pub name: &'static str,
    /// The seed this schedule derived from `--chaos-seed`.
    pub seed: u64,
    /// Operations attempted (appends, requests — schedule-specific).
    pub operations: usize,
    /// Operations the system acked.
    pub acked: usize,
    /// Faults the failpoint registry injected during the schedule.
    pub injected: u64,
    /// Client retries spent (0 for storage-only schedules).
    pub retries: u64,
    /// `None` when the invariants held; the violation otherwise.
    pub failure: Option<String>,
}

impl ChaosOutcome {
    /// JSON object for the `--out` artifact.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("name", JsonValue::String(self.name.to_string())),
            ("seed", JsonValue::Number(self.seed as f64)),
            ("operations", JsonValue::Number(self.operations as f64)),
            ("acked", JsonValue::Number(self.acked as f64)),
            ("injected", JsonValue::Number(self.injected as f64)),
            ("retries", JsonValue::Number(self.retries as f64)),
            ("ok", JsonValue::Bool(self.failure.is_none())),
            (
                "failure",
                match &self.failure {
                    Some(msg) => JsonValue::String(msg.clone()),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

fn scratch_path(name: &str, seed: u64) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("ssr-bench-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("scratch dir is creatable");
    dir.join(format!("{name}-{seed}.ssr"))
}

/// A small, seeded protein database plus a pool of append candidates carved
/// from the same generator — everything downstream is deterministic in
/// `seed`.
fn seeded_fixture(
    seed: u64,
) -> (
    SubsequenceDatabase<Symbol, Levenshtein>,
    Vec<Sequence<Symbol>>,
) {
    let dataset = generate_proteins(&ProteinConfig::sized_for_windows(240, 20, seed));
    let sequences = dataset.sequences();
    let split = (sequences.len() / 3).max(1);
    let config = ssr_core::FrameworkConfig::new(16).with_max_shift(2);
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for seq in &sequences[..split] {
        builder = builder.add_sequence(seq.clone());
    }
    let db = builder.build().expect("chaos fixture builds");
    (db, sequences[split..].to_vec())
}

fn cleanup(path: &PathBuf) {
    let _ = std::fs::remove_file(path);
    let _ = std::fs::remove_file(ssr_core::wal_path_for(path));
}

/// Schedule 1: probabilistic injected `wal.append` failures over a seeded
/// append workload, a torn final frame, a crash, and a reopen that must hold
/// both invariants.
fn torn_wal_schedule(seed: u64) -> ChaosOutcome {
    let name = "torn-wal-write";
    let (db, appends) = seeded_fixture(seed);
    let path = scratch_path(name, seed);
    cleanup(&path);
    let injected_before = ssr_fault::injected_total();
    let mut failure = None;
    let mut acked = 0usize;

    let mut live = LiveDatabase::create(&path, db).expect("chaos fixture creates");
    let mut reference = SubsequenceDatabase::from_snapshot_bytes(
        std::fs::read(&path).expect("snapshot readable"),
        Levenshtein::new(),
    )
    .expect("snapshot loads");

    ssr_fault::configure_str(&format!("wal.append=prob-350-{seed}:error")).expect("spec parses");
    for seq in &appends {
        if live.append_sequence(seq.clone()).is_ok() {
            reference.append_sequence(seq.clone());
            acked += 1;
        }
    }
    // Tear the final frame mid-write, then "crash".
    ssr_fault::configure_str("wal.append=nth-1:partial-7").expect("spec parses");
    if live.append_sequence(appends[0].clone()).is_ok() {
        failure = Some("the torn append must not ack".to_string());
    }
    ssr_fault::clear();
    drop(live);

    match LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()) {
        Ok(reopened) => {
            if reopened.pending_ops() != acked {
                failure.get_or_insert(format!(
                    "acked-append loss: {} replayed of {acked} acked",
                    reopened.pending_ops()
                ));
            }
            if reopened.database().snapshot_bytes() != reference.snapshot_bytes() {
                failure.get_or_insert("recovered state diverged from the reference".to_string());
            }
        }
        Err(e) => {
            failure.get_or_insert(format!("reopen failed: {e}"));
        }
    }
    let injected = ssr_fault::injected_total() - injected_before;
    let expected = (appends.len() - acked) as u64 + 1;
    if injected != expected {
        failure.get_or_insert(format!(
            "fault counter drift: {injected} injected, schedule fired {expected}"
        ));
    }
    cleanup(&path);
    ChaosOutcome {
        name,
        seed,
        operations: appends.len() + 1,
        acked,
        injected,
        retries: 0,
        failure,
    }
}

/// Schedule 2: a crash in the compaction window (snapshot renamed, WAL not
/// yet rebound). Reopen must discard the stale log, never double-apply.
fn compact_window_schedule(seed: u64) -> ChaosOutcome {
    let name = "compact-window-crash";
    let (db, appends) = seeded_fixture(seed);
    let path = scratch_path(name, seed);
    cleanup(&path);
    let injected_before = ssr_fault::injected_total();
    let mut failure = None;

    let mut live = LiveDatabase::create(&path, db).expect("chaos fixture creates");
    let mut acked = 0usize;
    for seq in appends.iter().take(4) {
        live.append_sequence(seq.clone()).expect("append acks");
        acked += 1;
    }
    let folded = live.database().snapshot_bytes();
    ssr_fault::configure_str("live.compact=nth-1:error").expect("spec parses");
    if live.compact().is_ok() {
        failure = Some("the window failpoint must fire".to_string());
    }
    ssr_fault::clear();
    drop(live); // crash with the stale WAL on disk

    match LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()) {
        Ok(reopened) => {
            if reopened.pending_ops() != 0 {
                failure.get_or_insert(format!(
                    "stale log replayed: {} pending ops after the fold",
                    reopened.pending_ops()
                ));
            }
            if reopened.database().snapshot_bytes() != folded {
                failure.get_or_insert("post-fold state diverged".to_string());
            }
        }
        Err(e) => {
            failure.get_or_insert(format!("reopen failed: {e}"));
        }
    }
    cleanup(&path);
    ChaosOutcome {
        name,
        seed,
        operations: acked + 1,
        acked,
        injected: ssr_fault::injected_total() - injected_before,
        retries: 0,
        failure,
    }
}

fn probe_request(db: &SubsequenceDatabase<Symbol, Levenshtein>) -> Request<Symbol> {
    let seq = &db.dataset().sequences()[0];
    let len = seq.len().clamp(1, 24);
    Request::Query {
        spec: QuerySpec::Type1 { epsilon: 4.0 },
        queries: vec![seq.elements()[..len].to_vec()],
    }
}

/// Schedule 3: a worker panic mid-query. The connection gets a typed error,
/// the pool survives, and the panic is counted.
fn worker_panic_schedule(seed: u64) -> ChaosOutcome {
    let name = "worker-panic";
    let (db, _) = seeded_fixture(seed);
    let request = probe_request(&db);
    let injected_before = ssr_fault::injected_total();
    let mut failure = None;

    let server = Server::bind(
        db,
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("chaos server binds");
    let mut client = Client::<Symbol>::connect(server.local_addr()).expect("connect");

    ssr_fault::configure_str("serve.worker=nth-1:error").expect("spec parses");
    match client.request(&request) {
        Ok(Response::Error(WireError::Internal(_))) => {}
        other => {
            failure = Some(format!(
                "expected Internal for the panicked job, got {other:?}"
            ));
        }
    }
    ssr_fault::clear();
    match client.request(&request) {
        Ok(Response::Outcomes(_)) => {}
        other => {
            failure.get_or_insert(format!("pool did not survive the panic: {other:?}"));
        }
    }
    server.shutdown();
    ChaosOutcome {
        name,
        seed,
        operations: 2,
        acked: 1,
        injected: ssr_fault::injected_total() - injected_before,
        retries: 0,
        failure,
    }
}

/// Schedule 4: the server drops the client's first connection at accept; the
/// retrying client must ride it out, deterministically in its jitter seed.
fn accept_fault_schedule(seed: u64) -> ChaosOutcome {
    let name = "accept-fault-retry";
    let (db, _) = seeded_fixture(seed);
    let injected_before = ssr_fault::injected_total();
    let mut failure = None;

    let server =
        Server::bind(db, "127.0.0.1:0", ServeConfig::default()).expect("chaos server binds");
    let mut client = WireClient::<Symbol>::new(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_millis(500),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(40),
            jitter_seed: seed,
            ..ClientConfig::default()
        },
    )
    .expect("client builds");

    ssr_fault::configure_str("serve.accept=nth-1:error").expect("spec parses");
    match client.request(&Request::Ping) {
        Ok(Response::Pong) => {}
        other => {
            failure = Some(format!("retries did not recover the ping: {other:?}"));
        }
    }
    ssr_fault::clear();
    let retries = client.retries();
    if retries == 0 {
        failure.get_or_insert("the dropped accept cost no retry".to_string());
    }
    server.shutdown();
    ChaosOutcome {
        name,
        seed,
        operations: 1,
        acked: 1,
        injected: ssr_fault::injected_total() - injected_before,
        retries,
        failure,
    }
}

/// Schedule 5: graceful drain — in-flight probes keep answering, new query
/// batches are refused typed, and every server thread exits.
fn drain_schedule(seed: u64) -> ChaosOutcome {
    let name = "graceful-drain";
    let (db, _) = seeded_fixture(seed);
    let request = probe_request(&db);
    let mut failure = None;

    let server = Server::bind(db, "127.0.0.1:0", ServeConfig::default()).expect("binds");
    let addr = server.local_addr();
    let mut surviving = Client::<Symbol>::connect(addr).expect("connect");
    match surviving.request(&request) {
        Ok(Response::Outcomes(_)) => {}
        other => failure = Some(format!("pre-drain query failed: {other:?}")),
    }

    let mut trigger = WireClient::<Symbol>::connect(addr).expect("trigger client");
    match trigger.request(&Request::Shutdown) {
        Ok(Response::ShuttingDown) => {}
        other => {
            failure.get_or_insert(format!("shutdown not acked: {other:?}"));
        }
    }
    // The ack precedes the drain flag; poll until the refusal is typed.
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    let mut acked = 0usize;
    loop {
        match surviving.request(&request) {
            Ok(Response::Error(WireError::Draining)) => {
                acked += 1;
                break;
            }
            Ok(Response::Outcomes(_)) if std::time::Instant::now() < deadline => {
                std::thread::sleep(Duration::from_millis(5));
            }
            other => {
                failure.get_or_insert(format!("expected the draining refusal, got {other:?}"));
                break;
            }
        }
    }
    // wait() returning is the bounded-exit assertion; the CI job's timeout
    // is the backstop if the drain wedges.
    server.wait();
    ChaosOutcome {
        name,
        seed,
        operations: 1,
        acked,
        injected: 0,
        retries: trigger.retries(),
        failure,
    }
}

/// Runs every schedule under seeds derived from `base_seed` and returns the
/// outcomes. Storage schedules run under three derived seeds each to cover
/// distinct fault placements; server schedules once.
pub fn run_chaos(base_seed: u64) -> Vec<ChaosOutcome> {
    ssr_fault::clear();
    let mut outcomes = Vec::new();
    for offset in 0..3 {
        outcomes.push(torn_wal_schedule(base_seed.wrapping_add(offset)));
    }
    outcomes.push(compact_window_schedule(base_seed));
    outcomes.push(worker_panic_schedule(base_seed));
    outcomes.push(accept_fault_schedule(base_seed));
    outcomes.push(drain_schedule(base_seed));
    ssr_fault::clear();
    outcomes
}
