//! # ssr-bench
//!
//! Shared harness code for the benchmark suite and the `figures` binary that
//! regenerates every figure of the paper's evaluation (Section 8).
//!
//! The binary is driven entirely by synthetic stand-ins for the paper's
//! PROTEINS / SONGS / TRAJ datasets (see `ssr-datagen` and DESIGN.md for the
//! substitution rationale); absolute numbers therefore differ from the paper,
//! but the quantities reported — index node counts, parents per window,
//! estimated megabytes, and the percentage of distance computations relative
//! to a naive linear scan — are machine-independent and directly comparable
//! in *shape*.

pub mod chaos;
pub mod cluster;
pub mod datasets;
pub mod harness;
pub mod json;
pub mod loadgen;
pub mod promcheck;
pub mod report;

pub use chaos::{run_chaos, ChaosOutcome};
pub use cluster::{run_cluster_chaos, ClusterChaosOutcome};
pub use datasets::{protein_windows, song_windows, traj_windows, Scale};
pub use harness::{
    build_index, distance_histogram, pruning_ratio, IndexChoice, IndexHandle, QuerySet,
};
pub use loadgen::{
    connect_with_retry, is_listening, request_shutdown, run_load, wait_until_ready, LatencySummary,
    LoadConfig, LoadReport,
};
pub use report::{format_row, print_header, print_table, Table};
