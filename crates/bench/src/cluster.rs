//! The seeded node-kill chaos harness behind `bench --cluster`: three real
//! `ssr serve` nodes (in-process, same snapshot), one [`ClusterClient`], and
//! a kill/revive schedule that is a **pure function of the seed** — nodes
//! die and come back at fixed *request indices*, never at wall-clock times.
//!
//! The invariants it proves:
//!
//! * **zero failed idempotent queries** — every query batch is answered even
//!   while a node is down, because failover covers the outage;
//! * **bit-identical results** — whatever node answers (primary, failover
//!   hop or hedge winner), matches and work stats equal the in-process
//!   [`QueryEngine`] on the same data, byte for byte;
//! * **schedule-exact counters** — the same seed replays the same
//!   failover/hedge/breaker-trip counts: the whole pass runs **twice**
//!   against fresh clients and the two [`ClusterCounters`] must agree
//!   exactly (`hedge_wins` excluded — a win is a race by definition).
//!
//! Determinism rests on four choices: a closed single-threaded request loop
//! (in-flight counts are zero at every routing decision), breaker threshold
//! 1 with a quarantine far longer than the run (a killed node trips exactly
//! once, at the first request routed to it, and is never gambled on again),
//! probing disabled (no wall-clock-driven readmission), and a
//! [`ClusterClient::quiesce`] after every hedged request (the losing copy's
//! breaker bookkeeping lands before the next routing decision). A final
//! non-scripted phase revives everything and checks recovery the live way:
//! a probing client with a short cooldown must readmit all three nodes.

use std::time::Duration;

use ssr_cluster::{BreakerConfig, BreakerState, ClusterClient, ClusterConfig, ClusterCounters};
use ssr_core::serve::{ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response};
use ssr_core::{ClientConfig, QueryEngine, SubsequenceDatabase};
use ssr_datagen::{generate_proteins, ProteinConfig};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

use crate::json::JsonValue;

/// Nodes in the self-hosted cluster.
const NODES: usize = 3;
/// Scripted requests per pass.
const REQUESTS: usize = 48;
/// Queries per request batch.
const BATCH: usize = 3;

/// The verdict of one `--cluster` run, for the log and the JSON artifact.
pub struct ClusterChaosOutcome {
    /// The base seed the schedule derived from.
    pub seed: u64,
    /// Scripted requests sent per pass.
    pub requests: usize,
    /// Counter snapshot of the first pass (the second must equal it).
    pub counters: ClusterCounters,
    /// `None` when every invariant held; the first violation otherwise.
    pub failure: Option<String>,
}

impl ClusterChaosOutcome {
    /// JSON object for the `--out` artifact.
    pub fn to_json(&self) -> JsonValue {
        JsonValue::object(vec![
            ("seed", JsonValue::Number(self.seed as f64)),
            ("requests", JsonValue::Number(self.requests as f64)),
            (
                "failovers",
                JsonValue::Number(self.counters.failovers as f64),
            ),
            ("hedges", JsonValue::Number(self.counters.hedges as f64)),
            (
                "breaker_trips",
                JsonValue::Number(self.counters.breaker_trips as f64),
            ),
            (
                "node_failures",
                JsonValue::Number(self.counters.node_failures as f64),
            ),
            ("ok", JsonValue::Bool(self.failure.is_none())),
            (
                "failure",
                match &self.failure {
                    Some(msg) => JsonValue::String(msg.clone()),
                    None => JsonValue::Null,
                },
            ),
        ])
    }
}

/// The kill/revive script: `(request_index, node, kill?)` events, derived
/// purely from the seed. Two episodes, each killing a *different* node for a
/// ten-request window — at most one node is ever down, so a three-node
/// cluster always has a healthy majority and zero lost queries is a fair
/// demand. A quarantined node stays quarantined for the rest of the pass
/// (cooldown >> run), which is exactly what makes the trip count exact.
fn kill_schedule(seed: u64) -> Vec<(usize, usize, bool)> {
    let first_node = (ssr_fault::mix64(seed) % NODES as u64) as usize;
    let second_node = (first_node + 1 + (ssr_fault::mix64(seed ^ 1) % 2) as usize) % NODES;
    let first_at = 6 + (ssr_fault::mix64(seed ^ 2) % 4) as usize;
    let second_at = 26 + (ssr_fault::mix64(seed ^ 3) % 4) as usize;
    vec![
        (first_at, first_node, true),
        (first_at + 10, first_node, false),
        (second_at, second_node, true),
        (second_at + 10, second_node, false),
    ]
}

/// Whether request `r` is hedged: roughly one request in six, seeded — but
/// never inside a kill window. A hedge that collides with an undiscovered
/// dead node gets covered by the hedge race instead of the failover path
/// (the primary's failure becomes a hedge win, not a failover), and the
/// harness wants both counters provably nonzero. Keeping hedges to healthy
/// stretches routes every kill discovery through a plain primary send.
fn hedged(seed: u64, r: usize) -> bool {
    if killed_during(seed, r) {
        return false;
    }
    ssr_fault::mix64(seed ^ 0x9E37_79B9_7F4A_7C15 ^ (r as u64)).is_multiple_of(6)
}

/// Whether any node is down at request `r` under the seed's schedule.
fn killed_during(seed: u64, r: usize) -> bool {
    let mut down = [false; NODES];
    for (at, node, kill) in kill_schedule(seed) {
        if at <= r {
            down[node] = kill;
        }
    }
    down.iter().any(|&d| d)
}

fn node_name(i: usize) -> String {
    format!("cluster-bench-node-{i}")
}

/// Deterministic request shapes carved from the served sequences, exactly
/// like `bench --serve` builds its load.
fn request_shapes(db: &SubsequenceDatabase<Symbol, Levenshtein>) -> Vec<Request<Symbol>> {
    let specs = [
        QuerySpec::Type1 { epsilon: 8.0 },
        QuerySpec::Type2 { epsilon: 8.0 },
        QuerySpec::Type3 {
            epsilon_max: 8.0,
            epsilon_increment: 2.0,
        },
    ];
    let sequences = db.dataset().sequences();
    specs
        .iter()
        .enumerate()
        .map(|(shape, spec)| {
            let queries = (0..BATCH)
                .map(|slot| {
                    let seq = &sequences[(shape * BATCH + slot) % sequences.len()];
                    let len = seq.len().clamp(1, 24);
                    let start = (seq.len() - len) / 2;
                    seq.elements()[start..start + len].to_vec()
                })
                .collect();
            Request::Query {
                spec: *spec,
                queries,
            }
        })
        .collect()
}

/// The in-process reference answers for each request shape — matches and
/// work stats the served outcomes must reproduce bit-identically.
fn reference_answers(
    db: &SubsequenceDatabase<Symbol, Levenshtein>,
    shapes: &[Request<Symbol>],
) -> Vec<Vec<(Vec<ssr_core::SubsequenceMatch>, ssr_core::QueryStats)>> {
    let engine = QueryEngine::new(db);
    shapes
        .iter()
        .map(|request| {
            let Request::Query { spec, queries } = request else {
                unreachable!("request shapes are queries");
            };
            let local: Vec<Sequence<Symbol>> = queries.iter().cloned().map(Sequence::new).collect();
            match spec {
                QuerySpec::Type1 { epsilon } => engine
                    .batch_type1(&local, *epsilon)
                    .outcomes
                    .into_iter()
                    .map(|o| (o.result, o.stats))
                    .collect(),
                QuerySpec::Type2 { epsilon } => engine
                    .batch_type2(&local, *epsilon)
                    .outcomes
                    .into_iter()
                    .map(|o| (o.result.into_iter().collect(), o.stats))
                    .collect(),
                QuerySpec::Type3 {
                    epsilon_max,
                    epsilon_increment,
                } => engine
                    .batch_type3(&local, *epsilon_max, *epsilon_increment)
                    .outcomes
                    .into_iter()
                    .map(|o| (o.result.into_iter().collect(), o.stats))
                    .collect(),
            }
        })
        .collect()
}

/// Cluster policy for the scripted pass: one wire attempt per node, breaker
/// threshold 1 with an hour-long quarantine, no prober, hedging only where
/// the schedule says so (via the per-request override).
fn scripted_config(seed: u64) -> ClusterConfig {
    ClusterConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_attempts: 1,
            op_deadline: Some(Duration::from_secs(30)),
            ..ClientConfig::default()
        },
        breaker: BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_secs(3600),
            jitter_seed: seed,
        },
        hedge_after: None,
        route_seed: seed,
        probe_interval: None,
    }
}

struct PassResult {
    counters: ClusterCounters,
    failed_queries: usize,
    parity_failures: usize,
}

/// One scripted pass: fresh client, same servers, same schedule.
fn run_pass(
    seed: u64,
    addrs: &[String],
    shapes: &[Request<Symbol>],
    expected: &[Vec<(Vec<ssr_core::SubsequenceMatch>, ssr_core::QueryStats)>],
) -> Result<PassResult, String> {
    ssr_fault::revive_all_nodes();
    let cluster = ClusterClient::<Symbol>::new(addrs.to_vec(), scripted_config(seed))
        .map_err(|e| format!("cluster client: {e}"))?;
    let schedule = kill_schedule(seed);
    let mut failed_queries = 0usize;
    let mut parity_failures = 0usize;
    for r in 0..REQUESTS {
        for &(at, node, kill) in &schedule {
            if at == r {
                if kill {
                    ssr_fault::kill_node(&node_name(node));
                } else {
                    ssr_fault::revive_node(&node_name(node));
                }
            }
        }
        let shape = r % shapes.len();
        let hedge = hedged(seed, r).then_some(Duration::ZERO);
        let response = cluster.request_with_hedge(&shapes[shape], hedge);
        if hedge.is_some() {
            // The losing copy must finish its breaker bookkeeping before
            // the next routing decision reads the breakers.
            cluster.quiesce();
        }
        match response {
            Ok(Response::Outcomes(served)) => {
                let want = &expected[shape];
                if served.len() != want.len() {
                    parity_failures += 1;
                    continue;
                }
                for (wire, (matches, stats)) in served.iter().zip(want) {
                    // `cached` is the server's business (the second pass
                    // replays from warm caches); matches and work stats must
                    // be the same bits regardless of which node answered.
                    if &wire.matches != matches || &wire.stats != stats {
                        parity_failures += 1;
                    }
                }
            }
            Ok(other) => {
                return Err(format!("request {r}: unexpected response {other:?}"));
            }
            Err(err) => {
                failed_queries += 1;
                eprintln!("# cluster: request {r} FAILED: {err}");
            }
        }
    }
    let counters = cluster.counters();
    ssr_fault::revive_all_nodes();
    Ok(PassResult {
        counters,
        failed_queries,
        parity_failures,
    })
}

/// After the scripted passes: every node revived, a *probing* client with a
/// short cooldown must walk all three breakers back to closed and answer
/// queries again — the live (wall-clock) half of the restart story, kept out
/// of the deterministic counters on purpose.
fn recovery_phase(addrs: &[String], shape: &Request<Symbol>) -> Result<(), String> {
    let config = ClusterConfig {
        client: ClientConfig {
            connect_timeout: Duration::from_secs(2),
            read_timeout: Duration::from_secs(10),
            write_timeout: Duration::from_secs(10),
            max_attempts: 1,
            op_deadline: None,
            ..ClientConfig::default()
        },
        breaker: BreakerConfig {
            threshold: 1,
            cooldown: Duration::from_millis(50),
            jitter_seed: 7,
        },
        hedge_after: None,
        route_seed: 7,
        probe_interval: Some(Duration::from_millis(20)),
    };
    let cluster = ClusterClient::<Symbol>::new(addrs.to_vec(), config)
        .map_err(|e| format!("recovery client: {e}"))?;
    let deadline = std::time::Instant::now() + Duration::from_secs(30);
    loop {
        let health = cluster.node_health();
        if health.iter().all(|h| h.state == BreakerState::Closed) {
            break;
        }
        if std::time::Instant::now() >= deadline {
            return Err(format!(
                "revived nodes never all closed: {:?}",
                health.iter().map(|h| h.state).collect::<Vec<_>>()
            ));
        }
        std::thread::sleep(Duration::from_millis(10));
    }
    for _ in 0..NODES {
        match cluster.request(shape) {
            Ok(Response::Outcomes(_)) => {}
            other => return Err(format!("post-recovery query failed: {other:?}")),
        }
    }
    Ok(())
}

/// Runs the whole `--cluster` chaos story: boot three nodes from one
/// database (the `--snapshot` file when given, a seeded synthetic fixture
/// otherwise), run the scripted pass twice, demand equal counters, then run
/// the recovery phase.
pub fn run_cluster_chaos(seed: u64, snapshot: Option<&str>) -> ClusterChaosOutcome {
    let fail = |failure: String| ClusterChaosOutcome {
        seed,
        requests: REQUESTS,
        counters: ClusterCounters::default(),
        failure: Some(failure),
    };

    // One logical database, four materializations: one per node plus the
    // in-process reference — all byte-identical by construction.
    let bytes = match snapshot {
        Some(path) => match std::fs::read(path) {
            Ok(bytes) => bytes,
            Err(e) => return fail(format!("reading snapshot {path}: {e}")),
        },
        None => {
            let dataset = generate_proteins(&ProteinConfig::sized_for_windows(240, 20, seed));
            let config = ssr_core::FrameworkConfig::new(16).with_max_shift(2);
            let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
            for seq in dataset.sequences() {
                builder = builder.add_sequence(seq.clone());
            }
            match builder.build() {
                Ok(db) => db.snapshot_bytes(),
                Err(e) => return fail(format!("building fixture: {e}")),
            }
        }
    };
    let open = || {
        SubsequenceDatabase::<Symbol, Levenshtein>::from_snapshot_bytes(
            bytes.clone(),
            Levenshtein::new(),
        )
    };
    let reference = match open() {
        Ok(db) => db,
        Err(e) => return fail(format!("opening fixture: {e}")),
    };
    let shapes = request_shapes(&reference);
    let expected = reference_answers(&reference, &shapes);

    let mut servers = Vec::new();
    let mut addrs = Vec::new();
    for i in 0..NODES {
        let db = match open() {
            Ok(db) => db,
            Err(e) => return fail(format!("opening node {i} database: {e}")),
        };
        let server = match Server::bind(
            db,
            "127.0.0.1:0",
            ServeConfig {
                workers: 2,
                node_name: Some(node_name(i)),
                ..ServeConfig::default()
            },
        ) {
            Ok(server) => server,
            Err(e) => return fail(format!("binding node {i}: {e}")),
        };
        addrs.push(server.local_addr().to_string());
        servers.push(server);
    }
    eprintln!(
        "# cluster: 3 nodes up at {}, seed {seed}, {REQUESTS} scripted requests x 2 passes",
        addrs.join(" ")
    );

    let outcome = (|| {
        let first = run_pass(seed, &addrs, &shapes, &expected)?;
        let second = run_pass(seed, &addrs, &shapes, &expected)?;
        let mut failure = None;
        if first.failed_queries > 0 || second.failed_queries > 0 {
            failure = Some(format!(
                "lost idempotent queries: {} in pass 1, {} in pass 2 (must be 0)",
                first.failed_queries, second.failed_queries
            ));
        }
        if first.parity_failures > 0 || second.parity_failures > 0 {
            failure.get_or_insert(format!(
                "served results diverged from the in-process engine: {} + {} outcomes",
                first.parity_failures, second.parity_failures
            ));
        }
        // hedge_wins is a race by definition; everything else must replay.
        let comparable = |c: &ClusterCounters| {
            (
                c.requests,
                c.failovers,
                c.hedges,
                c.breaker_trips,
                c.node_failures,
                c.deadline_exceeded,
            )
        };
        if comparable(&first.counters) != comparable(&second.counters) {
            failure.get_or_insert(format!(
                "counters did not replay: pass 1 {:?}, pass 2 {:?}",
                comparable(&first.counters),
                comparable(&second.counters)
            ));
        }
        if first.counters.breaker_trips != 2 {
            // Two kill episodes, threshold 1, quarantine >> run: exactly one
            // trip per episode, however routing lands.
            failure.get_or_insert(format!(
                "expected exactly 2 breaker trips (one per kill episode), saw {}",
                first.counters.breaker_trips
            ));
        }
        if first.counters.failovers == 0 {
            failure.get_or_insert(
                "the schedule produced no failover — the harness proved nothing".to_string(),
            );
        }
        if first.counters.hedges == 0 {
            failure.get_or_insert("the schedule fired no hedge".to_string());
        }
        recovery_phase(&addrs, &shapes[0])?;
        eprintln!(
            "# cluster: pass counters — {} requests, {} failovers, {} hedges ({} won), \
             {} breaker trips, {} node failures; both passes identical",
            first.counters.requests,
            first.counters.failovers,
            first.counters.hedges,
            first.counters.hedge_wins,
            first.counters.breaker_trips,
            first.counters.node_failures
        );
        Ok((first.counters, failure))
    })();

    ssr_fault::revive_all_nodes();
    for server in servers {
        server.shutdown();
    }
    match outcome {
        Ok((counters, failure)) => ClusterChaosOutcome {
            seed,
            requests: REQUESTS,
            counters,
            failure,
        },
        Err(e) => fail(e),
    }
}
