//! Dataset preparation for the experiment harness: windowed views of the
//! synthetic PROTEINS / SONGS / TRAJ datasets at several scales.

use ssr_datagen::{
    generate_proteins, generate_songs, generate_trajectories, ProteinConfig, SongsConfig,
    TrajConfig,
};
use ssr_sequence::{partition_windows_dataset, Pitch, Point2D, Symbol};

/// Window length used throughout the evaluation (the paper uses `l = 20` for
/// all three datasets).
pub const WINDOW_LEN: usize = 20;

/// Experiment scale. The paper's full sizes (100K windows for PROTEINS and
/// TRAJ, 20K for SONGS) are reachable with [`Scale::Full`] but take a long
/// time to index on a laptop; the default [`Scale::Small`] keeps every figure
/// under a few minutes while preserving the qualitative behaviour.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Scale {
    /// ~2K windows per dataset; minutes for the whole figure suite.
    Small,
    /// ~6K windows per dataset.
    Medium,
    /// Paper-scale window counts (100K / 20K / 100K); expect long runtimes.
    Full,
}

impl Scale {
    /// Parses a `--scale` argument.
    pub fn parse(s: &str) -> Option<Scale> {
        match s {
            "small" => Some(Scale::Small),
            "medium" => Some(Scale::Medium),
            "full" => Some(Scale::Full),
            _ => None,
        }
    }

    /// Target number of PROTEINS windows.
    pub fn protein_windows(self) -> usize {
        match self {
            Scale::Small => 2_000,
            Scale::Medium => 6_000,
            Scale::Full => 100_000,
        }
    }

    /// Target number of SONGS windows.
    pub fn song_windows(self) -> usize {
        match self {
            Scale::Small => 2_000,
            Scale::Medium => 6_000,
            Scale::Full => 20_000,
        }
    }

    /// Target number of TRAJ windows.
    pub fn traj_windows(self) -> usize {
        match self {
            Scale::Small => 2_000,
            Scale::Medium => 6_000,
            Scale::Full => 100_000,
        }
    }
}

/// Generates approximately `target` PROTEINS windows of length
/// [`WINDOW_LEN`]. `seed` controls the generator so that query workloads can
/// be drawn from an independent generation.
pub fn protein_windows(target: usize, seed: u64) -> Vec<Vec<Symbol>> {
    let config = ProteinConfig::sized_for_windows(target, WINDOW_LEN, seed);
    let dataset = generate_proteins(&config);
    let store = partition_windows_dataset(&dataset, WINDOW_LEN);
    store
        .iter()
        .take(target)
        .map(|(id, _)| store.slice(id).expect("store views resolve").to_vec())
        .collect()
}

/// Generates approximately `target` SONGS windows.
pub fn song_windows(target: usize, seed: u64) -> Vec<Vec<Pitch>> {
    let config = SongsConfig::sized_for_windows(target, WINDOW_LEN, seed);
    let dataset = generate_songs(&config);
    let store = partition_windows_dataset(&dataset, WINDOW_LEN);
    store
        .iter()
        .take(target)
        .map(|(id, _)| store.slice(id).expect("store views resolve").to_vec())
        .collect()
}

/// Generates approximately `target` TRAJ windows.
pub fn traj_windows(target: usize, seed: u64) -> Vec<Vec<Point2D>> {
    let config = TrajConfig::sized_for_windows(target, WINDOW_LEN, seed);
    let dataset = generate_trajectories(&config);
    let store = partition_windows_dataset(&dataset, WINDOW_LEN);
    store
        .iter()
        .take(target)
        .map(|(id, _)| store.slice(id).expect("store views resolve").to_vec())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_parsing() {
        assert_eq!(Scale::parse("small"), Some(Scale::Small));
        assert_eq!(Scale::parse("medium"), Some(Scale::Medium));
        assert_eq!(Scale::parse("full"), Some(Scale::Full));
        assert_eq!(Scale::parse("huge"), None);
    }

    #[test]
    fn window_targets_are_monotone_in_scale() {
        assert!(Scale::Small.protein_windows() < Scale::Medium.protein_windows());
        assert!(Scale::Medium.protein_windows() < Scale::Full.protein_windows());
        assert!(Scale::Small.song_windows() < Scale::Full.song_windows());
    }

    #[test]
    fn generators_produce_windows_of_the_right_length() {
        for w in protein_windows(50, 1) {
            assert_eq!(w.len(), WINDOW_LEN);
        }
        for w in song_windows(50, 2) {
            assert_eq!(w.len(), WINDOW_LEN);
        }
        for w in traj_windows(50, 3) {
            assert_eq!(w.len(), WINDOW_LEN);
        }
        assert!(!protein_windows(50, 1).is_empty());
    }

    #[test]
    fn different_seeds_give_different_windows() {
        let a = protein_windows(20, 1);
        let b = protein_windows(20, 2);
        assert_ne!(a, b);
    }
}
