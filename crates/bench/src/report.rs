//! Plain-text table output for the figure harness.
//!
//! The harness prints every figure as an aligned text table so results can be
//! diffed, grepped and pasted into EXPERIMENTS.md without extra dependencies.

/// A simple column-aligned table.
#[derive(Clone, Debug, Default)]
pub struct Table {
    title: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    /// Creates a table with a title and column headers.
    pub fn new(title: impl Into<String>, header: &[&str]) -> Self {
        Table {
            title: title.into(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (must have the same arity as the header).
    pub fn push_row(&mut self, row: Vec<String>) {
        assert_eq!(
            row.len(),
            self.header.len(),
            "row arity {} does not match header arity {}",
            row.len(),
            self.header.len()
        );
        self.rows.push(row);
    }

    /// Number of data rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the table has no data rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Renders the table to a string.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (i, cell) in row.iter().enumerate() {
                widths[i] = widths[i].max(cell.len());
            }
        }
        let mut out = String::new();
        out.push_str(&format!("== {} ==\n", self.title));
        out.push_str(&format_row(&self.header, &widths));
        out.push('\n');
        out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&format_row(row, &widths));
            out.push('\n');
        }
        out
    }
}

/// Formats one row with two-space separated, right-padded columns.
pub fn format_row(cells: &[String], widths: &[usize]) -> String {
    cells
        .iter()
        .zip(widths.iter())
        .map(|(c, w)| format!("{c:<w$}"))
        .collect::<Vec<_>>()
        .join("  ")
}

/// Prints a section header for a figure.
pub fn print_header(figure: &str, description: &str) {
    println!();
    println!("################################################################");
    println!("# {figure}: {description}");
    println!("################################################################");
}

/// Renders and prints a table.
pub fn print_table(table: &Table) {
    println!("{}", table.render());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_columns() {
        let mut t = Table::new("demo", &["name", "value"]);
        t.push_row(vec!["alpha".into(), "1".into()]);
        t.push_row(vec!["b".into(), "12345".into()]);
        let rendered = t.render();
        assert!(rendered.contains("== demo =="));
        assert!(rendered.contains("alpha  1"));
        assert!(rendered.contains("b      12345"));
        assert_eq!(t.len(), 2);
        assert!(!t.is_empty());
    }

    #[test]
    #[should_panic(expected = "row arity")]
    fn mismatched_row_arity_panics() {
        let mut t = Table::new("demo", &["a", "b"]);
        t.push_row(vec!["only-one".into()]);
    }
}
