//! Property-based tests for the distance library.
//!
//! These check, on randomly generated inputs, the two properties the paper's
//! framework relies on — metricity (Section 3.3) and consistency
//! (Definition 1) — as well as structural validity of the optimal alignments.

use proptest::prelude::*;

use ssr_distance::{
    erp_lower_bound, length_difference_lower_bound, AlignmentDistance, DiscreteFrechet, Dtw, Erp,
    Euclidean, Hamming, Levenshtein, SequenceDistance,
};
use ssr_sequence::{Pitch, Point2D, Symbol};

const TOL: f64 = 1e-9;

fn symbol_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        0..max_len,
    )
}

fn pitch_seq(max_len: usize) -> impl Strategy<Value = Vec<Pitch>> {
    prop::collection::vec((0i16..=11).prop_map(Pitch), 0..max_len)
}

fn point_seq(max_len: usize) -> impl Strategy<Value = Vec<Point2D>> {
    prop::collection::vec(
        (-10.0f64..10.0, -10.0f64..10.0).prop_map(|(x, y)| Point2D::new(x, y)),
        0..max_len,
    )
}

/// Checks the metric axioms on a triple of sequences.
fn assert_metric_axioms<E, D>(d: &D, x: &[E], y: &[E], z: &[E])
where
    E: ssr_sequence::Element,
    D: SequenceDistance<E>,
{
    let dxy = d.distance(x, y);
    let dyx = d.distance(y, x);
    let dxz = d.distance(x, z);
    let dyz = d.distance(y, z);
    // Non-negativity and identity of indiscernibles (same input).
    assert!(dxy >= 0.0);
    assert_eq!(d.distance(x, x), 0.0);
    // Symmetry.
    if dxy.is_finite() || dyx.is_finite() {
        assert!(
            (dxy - dyx).abs() <= TOL,
            "symmetry violated: {dxy} vs {dyx}"
        );
    }
    // Triangle inequality (skip when any leg is infinite, e.g. unequal-length
    // inputs under Euclidean / Hamming).
    if dxy.is_finite() && dyz.is_finite() && dxz.is_finite() {
        assert!(
            dxz <= dxy + dyz + TOL,
            "triangle violated: d(x,z)={dxz} > d(x,y)+d(y,z)={}",
            dxy + dyz
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn levenshtein_is_a_metric(x in symbol_seq(12), y in symbol_seq(12), z in symbol_seq(12)) {
        assert_metric_axioms(&Levenshtein::new(), &x, &y, &z);
    }

    #[test]
    fn erp_is_a_metric_on_pitches(x in pitch_seq(10), y in pitch_seq(10), z in pitch_seq(10)) {
        assert_metric_axioms(&Erp::new(), &x, &y, &z);
    }

    #[test]
    fn erp_is_a_metric_on_trajectories(x in point_seq(8), y in point_seq(8), z in point_seq(8)) {
        assert_metric_axioms(&Erp::new(), &x, &y, &z);
    }

    #[test]
    fn frechet_is_a_metric_on_pitches(x in pitch_seq(10), y in pitch_seq(10), z in pitch_seq(10)) {
        assert_metric_axioms(&DiscreteFrechet::new(), &x, &y, &z);
    }

    #[test]
    fn frechet_is_a_metric_on_trajectories(x in point_seq(8), y in point_seq(8), z in point_seq(8)) {
        assert_metric_axioms(&DiscreteFrechet::new(), &x, &y, &z);
    }

    #[test]
    fn hamming_and_euclidean_are_metrics(x in pitch_seq(8), y in pitch_seq(8), z in pitch_seq(8)) {
        assert_metric_axioms(&Hamming::new(), &x, &y, &z);
        assert_metric_axioms(&Euclidean::new(), &x, &y, &z);
    }

    #[test]
    fn levenshtein_identity_of_indiscernibles(x in symbol_seq(12), y in symbol_seq(12)) {
        let d = Levenshtein::new();
        if d.distance(&x, &y) == 0.0 {
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn alignment_costs_match_distances(x in pitch_seq(10), y in pitch_seq(10)) {
        prop_assume!(!x.is_empty() && !y.is_empty());
        let dtw = Dtw::new();
        let erp = Erp::new();
        let dfd = DiscreteFrechet::new();
        for (cost, dist, name) in [
            (dtw.alignment(&x, &y).cost, dtw.distance(&x, &y), "DTW"),
            (erp.alignment(&x, &y).cost, erp.distance(&x, &y), "ERP"),
            (dfd.alignment(&x, &y).cost, dfd.distance(&x, &y), "DFD"),
        ] {
            prop_assert!((cost - dist).abs() <= TOL, "{} alignment cost {} != distance {}", name, cost, dist);
        }
    }

    #[test]
    fn alignments_are_structurally_valid(x in pitch_seq(10), y in pitch_seq(10)) {
        prop_assume!(!x.is_empty() && !y.is_empty());
        let dtw = Dtw::new();
        let erp = Erp::new();
        let dfd = DiscreteFrechet::new();
        let lev = Levenshtein::new();
        prop_assert!(dtw.alignment(&x, &y).is_valid(x.len(), y.len()));
        prop_assert!(erp.alignment(&x, &y).is_valid(x.len(), y.len()));
        prop_assert!(dfd.alignment(&x, &y).is_valid(x.len(), y.len()));
        prop_assert!(lev.alignment(&x, &y).is_valid(x.len(), y.len()));
    }

    #[test]
    fn consistency_of_levenshtein_dtw_and_frechet(x in symbol_seq(10), y in symbol_seq(10)) {
        prop_assume!(x.len() >= 2 && y.len() >= 2);
        // Definition 1, checked via the alignment-projection construction of
        // the paper's proof (sum / max over a subset of couplings).
        check_consistency_via_projection(&Levenshtein::new(), &x, &y);
        check_consistency_via_projection(&Dtw::new(), &x, &y);
        check_consistency_via_projection(&DiscreteFrechet::new(), &x, &y);
    }

    #[test]
    fn consistency_of_erp_with_exhaustive_fallback(x in pitch_seq(8), y in pitch_seq(8)) {
        prop_assume!(x.len() >= 2 && y.len() >= 2);
        let d = Erp::new();
        let full = d.distance(&x, &y);
        let al = d.alignment(&x, &y);
        for start in 0..y.len() {
            for end in (start + 1)..=y.len() {
                let sx = &y[start..end];
                let mut best = match al.a_range_for_b_range(start..end) {
                    Some(r) => d.distance(&x[r], sx),
                    None => f64::INFINITY,
                };
                if best > full + TOL {
                    // Definition 1 only requires existence of *some*
                    // subsequence of x (including the empty one for ERP).
                    best = best.min(d.distance(&[], sx));
                    for s in 0..x.len() {
                        for e in (s + 1)..=x.len() {
                            best = best.min(d.distance(&x[s..e], sx));
                        }
                    }
                }
                prop_assert!(best <= full + TOL,
                    "ERP consistency violated for y[{}..{}]: best {} > full {}", start, end, best, full);
            }
        }
    }

    #[test]
    fn lower_bounds_never_exceed_true_distances(x in pitch_seq(10), y in pitch_seq(10)) {
        let lev = Levenshtein::new();
        let erp = Erp::new();
        prop_assert!(length_difference_lower_bound(x.len(), y.len()) <= lev.distance(&x, &y) + TOL);
        prop_assert!(erp_lower_bound(&x, &y) <= erp.distance(&x, &y) + TOL);
    }

    #[test]
    fn max_distance_bounds_hold(x in symbol_seq(12), y in symbol_seq(12)) {
        let lev = Levenshtein::new();
        let len = x.len().max(y.len());
        if let Some(bound) = SequenceDistance::<Symbol>::max_distance(&lev, len) {
            prop_assert!(lev.distance(&x, &y) <= bound + TOL);
        }
        let dfd = DiscreteFrechet::new();
        if !x.is_empty() && !y.is_empty() {
            if let Some(bound) = SequenceDistance::<Symbol>::max_distance(&dfd, len) {
                prop_assert!(dfd.distance(&x, &y) <= bound + TOL);
            }
        }
    }
}

/// Shared helper: consistency via the alignment-projection construction.
fn check_consistency_via_projection<E, D>(d: &D, x: &[E], y: &[E])
where
    E: ssr_sequence::Element,
    D: AlignmentDistance<E>,
{
    let full = d.distance(x, y);
    if !full.is_finite() {
        return;
    }
    let al = d.alignment(x, y);
    for start in 0..y.len() {
        for end in (start + 1)..=y.len() {
            let a_range = al
                .a_range_for_b_range(start..end)
                .expect("projection exists for non-empty range");
            let sub = d.distance(&x[a_range], &y[start..end]);
            assert!(
                sub <= full + TOL,
                "{} consistency violated for y[{start}..{end}]: {sub} > {full}",
                d.name()
            );
        }
    }
}
