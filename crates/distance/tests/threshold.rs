//! Property coverage for the threshold-aware kernels: for every distance and
//! every element type, `distance_within(a, b, τ)` must return `Some(d)` with
//! `d` **bit-identical** to `distance(a, b)` whenever the distance is within
//! `τ`, and `None` must imply the distance exceeds `τ` — including at the
//! adversarial band boundary `|len(a) − len(b)| ≈ τ` where an off-by-one in
//! the Ukkonen band would first show.

use proptest::prelude::*;

use ssr_distance::{DiscreteFrechet, Dtw, Erp, Euclidean, Hamming, Levenshtein, SequenceDistance};
use ssr_sequence::{Element, Pitch, Point2D, Symbol};

/// Thresholds worth probing for a pair whose true distance is `d`: below,
/// exactly at, and above the distance, plus degenerate values.
fn probe_taus(d: f64) -> Vec<f64> {
    let mut taus = vec![0.0, f64::INFINITY, -1.0, f64::NAN];
    if d.is_finite() {
        taus.extend([d, d / 2.0, d - 0.5, d - 1e-9, d + 1e-9, d + 0.5, d * 2.0]);
    }
    taus
}

/// The exact contract: `Some(d)` (bitwise equal to the full distance) iff
/// `distance(a, b) ≤ τ`, `None` iff not.
fn assert_threshold_contract<E, D>(dist: &D, a: &[E], b: &[E])
where
    E: Element,
    D: SequenceDistance<E>,
{
    let full = dist.distance(a, b);
    for tau in probe_taus(full) {
        match dist.distance_within(a, b, tau) {
            Some(d) => {
                assert!(
                    full <= tau,
                    "{}: Some({d}) returned although full {full} > tau {tau}",
                    dist.name()
                );
                assert!(
                    d == full || (d.is_nan() && full.is_nan()),
                    "{}: thresholded value {d} differs from full {full} (tau {tau})",
                    dist.name()
                );
            }
            None => {
                // `None` must mean "not within": full > tau, or tau is NaN
                // (in which case `d ≤ tau` can never hold).
                let within = matches!(
                    full.partial_cmp(&tau),
                    Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
                );
                assert!(
                    !within,
                    "{}: None returned although full {full} <= tau {tau}",
                    dist.name()
                );
            }
        }
    }
}

fn check_all_distances<E: Element>(a: &[E], b: &[E]) {
    assert_threshold_contract(&Levenshtein::new(), a, b);
    assert_threshold_contract(&Erp::new(), a, b);
    assert_threshold_contract(&Dtw::new(), a, b);
    assert_threshold_contract(&DiscreteFrechet::new(), a, b);
    assert_threshold_contract(&Euclidean::new(), a, b);
    assert_threshold_contract(&Hamming::new(), a, b);
}

fn symbol_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..6).prop_map(|i| Symbol::from_char(b"ACGTWY"[i as usize] as char)),
        0..max_len,
    )
}

fn pitch_seq(max_len: usize) -> impl Strategy<Value = Vec<Pitch>> {
    prop::collection::vec((0i16..=11).prop_map(Pitch), 0..max_len)
}

fn scalar_seq(max_len: usize) -> impl Strategy<Value = Vec<f64>> {
    prop::collection::vec(-8.0f64..8.0, 0..max_len)
}

fn point_seq(max_len: usize) -> impl Strategy<Value = Vec<Point2D>> {
    prop::collection::vec(
        (-5.0f64..5.0, -5.0f64..5.0).prop_map(|(x, y)| Point2D::new(x, y)),
        0..max_len,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn threshold_contract_on_symbols(a in symbol_seq(14), b in symbol_seq(14)) {
        check_all_distances(&a, &b);
    }

    #[test]
    fn threshold_contract_on_pitches(a in pitch_seq(12), b in pitch_seq(12)) {
        check_all_distances(&a, &b);
    }

    #[test]
    fn threshold_contract_on_scalars(a in scalar_seq(10), b in scalar_seq(10)) {
        check_all_distances(&a, &b);
    }

    #[test]
    fn threshold_contract_on_trajectories(a in point_seq(10), b in point_seq(10)) {
        check_all_distances(&a, &b);
    }

    #[test]
    fn band_boundary_length_differences(base in symbol_seq(10), extra in 0usize..6) {
        // |len(a) − len(b)| = extra, probed with taus straddling it: the
        // length-difference lower bound and the band edge coincide here.
        let mut b: Vec<Symbol> = base.clone();
        b.extend(std::iter::repeat_n(Symbol::from_char('A'), extra));
        for tau in [
            extra as f64 - 1.0,
            extra as f64 - 1e-9,
            extra as f64,
            extra as f64 + 1e-9,
            extra as f64 + 1.0,
        ] {
            let lev = Levenshtein::new();
            let erp = Erp::new();
            let full_lev = lev.distance(&base, &b);
            let full_erp = erp.distance(&base, &b);
            prop_assert_eq!(lev.distance_within(&base, &b, tau), (full_lev <= tau).then_some(full_lev));
            prop_assert_eq!(erp.distance_within(&base, &b, tau), (full_erp <= tau).then_some(full_erp));
        }
    }
}

#[test]
fn fixed_band_boundary_cases() {
    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }
    let lev = Levenshtein::new();
    // d = 3 (three appended characters): the band of width ⌊τ⌋ must still
    // reach the corner cell exactly at τ = 3.
    let a = sym("AAAA");
    let b = sym("AAAAAAA");
    assert_eq!(lev.distance_within(&a, &b, 3.0), Some(3.0));
    assert_eq!(lev.distance_within(&a, &b, 2.999), None);
    assert_eq!(lev.distance_within(&a, &b, 2.0), None);
    // Substitutions only: band 0 suffices for equal-length inputs at τ < 1.
    let c = sym("ACGT");
    let d = sym("ACGA");
    assert_eq!(lev.distance_within(&c, &d, 1.0), Some(1.0));
    assert_eq!(lev.distance_within(&c, &d, 0.5), None);
    assert_eq!(lev.distance_within(&c, &c, 0.0), Some(0.0));
    // ERP on symbols: unit gap costs make the band exact at τ = |Δlen|.
    let erp = Erp::new();
    assert_eq!(erp.distance_within(&a, &b, 3.0), Some(3.0));
    assert_eq!(erp.distance_within(&a, &b, 2.5), None);
    // Empty inputs.
    let empty: Vec<Symbol> = Vec::new();
    assert_eq!(lev.distance_within(&empty, &b, 7.0), Some(7.0));
    assert_eq!(lev.distance_within(&empty, &b, 6.0), None);
    assert_eq!(lev.distance_within(&empty, &empty, 0.0), Some(0.0));
}

#[test]
fn dp_cell_tallies_shrink_under_tight_thresholds() {
    use ssr_distance::dp_cells_thread_total;
    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }
    let lev = Levenshtein::new();
    let a = sym("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY");
    let b = sym("WYACMMMMGHIKLMNPQRSTVWYACDEFGHIMMMMQRSTV");
    let before = dp_cells_thread_total();
    let full = lev.distance(&a, &b);
    let full_cells = dp_cells_thread_total() - before;
    assert_eq!(full_cells, (a.len() * b.len()) as u64);
    assert!(full > 2.0, "workload must not be trivially similar");
    let before = dp_cells_thread_total();
    assert_eq!(lev.distance_within(&a, &b, 2.0), None);
    let banded_cells = dp_cells_thread_total() - before;
    assert!(
        banded_cells * 3 <= full_cells,
        "banded + abandoned run used {banded_cells} of {full_cells} cells"
    );
}
