//! The `--no-pruning` ablation knob: disabling pruning must change **only**
//! the amount of DP work, never a result. Lives in its own test binary (own
//! process) because the knob is process-global.

use ssr_distance::{
    dp_cells_thread_total, lower_bound_prunes_thread_total, set_pruning_enabled, Dtw, Erp,
    Levenshtein, SequenceDistance,
};
use ssr_sequence::Symbol;

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

#[test]
fn disabling_pruning_changes_work_but_never_results() {
    let a = sym("ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY");
    let b = sym("WYACMMMMGHIKLMNPQRSTVWYACDEFGHIMMMMQRSTV");
    let lev = Levenshtein::new();
    let erp = Erp::new();
    let dtw = Dtw::new();
    let taus = [0.0, 1.0, 4.0, 10.0, 40.0, f64::INFINITY];

    let pruned: Vec<_> = taus
        .iter()
        .map(|&tau| {
            (
                lev.distance_within(&a, &b, tau),
                erp.distance_within(&a, &b, tau),
                dtw.distance_within(&a, &b, tau),
            )
        })
        .collect();
    let cells_pruned_before = dp_cells_thread_total();
    let _ = lev.distance_within(&a, &b, 2.0);
    let cells_pruned = dp_cells_thread_total() - cells_pruned_before;

    set_pruning_enabled(false);
    let unpruned: Vec<_> = taus
        .iter()
        .map(|&tau| {
            (
                lev.distance_within(&a, &b, tau),
                erp.distance_within(&a, &b, tau),
                dtw.distance_within(&a, &b, tau),
            )
        })
        .collect();
    let prunes_before = lower_bound_prunes_thread_total();
    let cells_before = dp_cells_thread_total();
    let _ = lev.distance_within(&a, &b, 2.0);
    let cells_unpruned = dp_cells_thread_total() - cells_before;
    set_pruning_enabled(true);

    assert_eq!(pruned, unpruned, "pruning changed a result");
    assert_eq!(
        lower_bound_prunes_thread_total() - prunes_before,
        0,
        "disabled pruning must not record lower-bound prunes"
    );
    assert_eq!(cells_unpruned, (a.len() * b.len()) as u64);
    assert!(
        cells_pruned * 3 <= cells_unpruned,
        "ablation shows no saving: {cells_pruned} vs {cells_unpruned} cells"
    );
}
