//! Deterministic edge cases for `distance_within`, complementing the
//! property suite in `threshold.rs`: τ = 0, bit-identical inputs,
//! single-element windows (the smallest slices the framework ever compares)
//! and τ **exactly at** the true distance — the boundary where the contract
//! demands `Some(d)`, while any value strictly below it (one ULP suffices)
//! must give `None`. Exercised across all six measures and every element
//! type they serve.

use ssr_distance::{DiscreteFrechet, Dtw, Erp, Euclidean, Hamming, Levenshtein, SequenceDistance};
use ssr_sequence::{Element, Pitch, Point2D, Symbol};

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

/// The full edge contract for one (measure, pair):
/// * τ = 0 admits the pair exactly when the distance is zero;
/// * τ = d returns `Some(d)`, bit-identical to the unthresholded distance;
/// * τ one ULP below d returns `None` for any positive distance;
/// * an infinite distance (length-mismatch measures) is never within any
///   finite τ, however large.
fn assert_edge_contract<E, D>(dist: &D, a: &[E], b: &[E])
where
    E: Element,
    D: SequenceDistance<E>,
{
    let full = dist.distance(a, b);
    assert!(full >= 0.0, "{}: negative distance {full}", dist.name());

    if full == 0.0 {
        assert_eq!(
            dist.distance_within(a, b, 0.0),
            Some(0.0),
            "{}: zero distance must be within tau = 0",
            dist.name()
        );
    } else {
        assert_eq!(
            dist.distance_within(a, b, 0.0),
            None,
            "{}: positive distance {full} admitted at tau = 0",
            dist.name()
        );
    }

    if full.is_finite() {
        let at = dist.distance_within(a, b, full);
        assert!(
            at == Some(full),
            "{}: tau exactly at the distance gave {at:?}, want Some({full})",
            dist.name()
        );
        if full > 0.0 {
            assert_eq!(
                dist.distance_within(a, b, full.next_down()),
                None,
                "{}: tau one ULP below {full} still admitted the pair",
                dist.name()
            );
        }
        assert_eq!(
            dist.distance_within(a, b, full + 1.0),
            Some(full),
            "{}: a slack threshold must return the exact distance",
            dist.name()
        );
    } else {
        assert_eq!(
            dist.distance_within(a, b, f64::MAX),
            None,
            "{}: an infinite distance can never be within a finite tau",
            dist.name()
        );
    }
}

fn check_all<E: Element>(a: &[E], b: &[E]) {
    assert_edge_contract(&Levenshtein::new(), a, b);
    assert_edge_contract(&Erp::new(), a, b);
    assert_edge_contract(&Dtw::new(), a, b);
    assert_edge_contract(&DiscreteFrechet::new(), a, b);
    assert_edge_contract(&Euclidean::new(), a, b);
    assert_edge_contract(&Hamming::new(), a, b);
}

#[test]
fn identical_inputs_are_within_tau_zero_for_every_measure() {
    check_all(&sym("ACGTACGT"), &sym("ACGTACGT"));
    let pitches: Vec<Pitch> = [0, 3, 7, 3, 0].map(Pitch).to_vec();
    check_all(&pitches, &pitches.clone());
    let scalars = [0.5f64, -1.25, 3.0, 0.0];
    check_all(&scalars, &scalars.clone());
    let points: Vec<Point2D> = vec![Point2D::new(0.0, 0.0), Point2D::new(1.5, -2.0)];
    check_all(&points, &points.clone());
    // The empty pair: every measure must call it distance 0, within τ = 0.
    let empty: Vec<Symbol> = Vec::new();
    check_all(&empty, &empty.clone());
}

#[test]
fn single_element_windows_hit_the_exact_boundary() {
    // Equal singletons: distance 0, admitted at τ = 0.
    check_all(&sym("A"), &sym("A"));
    check_all(&[Pitch(5)], &[Pitch(5)]);
    check_all(&[2.5f64], &[2.5f64]);
    check_all(&[Point2D::new(1.0, 1.0)], &[Point2D::new(1.0, 1.0)]);

    // Distinct singletons: the distance is one ground-level step, and the
    // contract must be exact at that boundary for every measure.
    check_all(&sym("A"), &sym("C"));
    check_all(&[Pitch(0)], &[Pitch(7)]);
    check_all(&[0.0f64], &[3.25f64]);
    check_all(&[Point2D::new(0.0, 0.0)], &[Point2D::new(3.0, 4.0)]);

    // Known values for the discrete measures: one substitution.
    let lev = Levenshtein::new();
    assert_eq!(lev.distance_within(&sym("A"), &sym("C"), 1.0), Some(1.0));
    assert_eq!(
        lev.distance_within(&sym("A"), &sym("C"), 1.0_f64.next_down()),
        None
    );
    let ham = Hamming::new();
    assert_eq!(ham.distance_within(&sym("A"), &sym("C"), 1.0), Some(1.0));
    assert_eq!(ham.distance_within(&sym("A"), &sym("C"), 0.0), None);
    // A 3-4-5 triangle: the planar measures agree on the exact boundary.
    let a = [Point2D::new(0.0, 0.0)];
    let b = [Point2D::new(3.0, 4.0)];
    assert_eq!(
        DiscreteFrechet::new().distance_within(&a, &b, 5.0),
        Some(5.0)
    );
    assert_eq!(
        DiscreteFrechet::new().distance_within(&a, &b, 5.0_f64.next_down()),
        None
    );
    assert_eq!(Euclidean::new().distance_within(&a, &b, 5.0), Some(5.0));
    assert_eq!(Euclidean::new().distance_within(&a, &b, 4.999), None);
}

#[test]
fn tau_exactly_at_the_true_distance_across_longer_inputs() {
    // Multi-edit symbol pairs (substitution + indel mixes).
    check_all(&sym("ACGTACGT"), &sym("ACCTACG"));
    check_all(&sym("AAAA"), &sym("AAAAAAA"));
    check_all(&sym("ACGT"), &sym("TGCA"));
    // Numeric and planar pairs where warping and coupling genuinely differ.
    check_all(
        &[0, 2, 4, 2, 0].map(Pitch),
        &[0, 0, 2, 4, 4, 2, 0].map(Pitch),
    );
    check_all(&[0.0f64, 1.0, 0.0, -1.0], &[0.0f64, 0.5, 0.0, -1.5]);
    check_all(
        &[
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 0.0),
            Point2D::new(2.0, 0.0),
        ],
        &[Point2D::new(0.0, 0.5), Point2D::new(2.0, 0.5)],
    );
    // One side empty: pure-gap alignments for the elastic measures.
    check_all(&sym(""), &sym("ACGT"));
}

#[test]
fn length_mismatch_measures_are_never_within_any_finite_tau() {
    let a = sym("ACGT");
    let b = sym("ACGTA");
    for tau in [0.0, 1.0, 1e18, f64::MAX] {
        assert_eq!(Euclidean::new().distance_within(&a, &b, tau), None);
        assert_eq!(Hamming::new().distance_within(&a, &b, tau), None);
    }
    assert_eq!(Euclidean::new().distance(&a, &b), f64::INFINITY);
    assert_eq!(Hamming::new().distance(&a, &b), f64::INFINITY);
    // The elastic measures handle the same pair finitely — and exactly.
    check_all(&a, &b);
}

#[test]
fn tau_zero_discriminates_identical_from_minimally_perturbed() {
    let base = sym("ACGTACGTACGT");
    let mut perturbed = base.clone();
    perturbed[6] = Symbol::from_char('T');
    for (a, b, expect_zero) in [(&base, &base.clone(), true), (&base, &perturbed, false)] {
        let lev = Levenshtein::new();
        let within = lev.distance_within(a, b, 0.0);
        if expect_zero {
            assert_eq!(within, Some(0.0));
        } else {
            assert_eq!(within, None);
            // ...but it reappears, exact, the moment tau reaches it.
            let full = lev.distance(a, b);
            assert_eq!(lev.distance_within(a, b, full), Some(full));
        }
    }
}
