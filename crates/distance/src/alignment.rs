//! Alignments (coupling sequences) produced by warping / edit distances.
//!
//! Section 4 of the paper expresses DTW, ERP, the Levenshtein distance and the
//! discrete Fréchet distance as optimisation problems over alignments
//! `C = (ω_1, …, ω_K)`, where each coupling `ω_k = (i, j)` matches element
//! `x_i` of `X` with element `q_j` of `Q`, subject to boundary, monotonicity
//! and continuity constraints. The consistency proof restricts the optimal
//! alignment to the couplings that touch a subsequence `SX`, obtaining an
//! alignment of `SX` against some subsequence `SQ` of no larger cost.
//!
//! [`Alignment`] records such a coupling sequence plus its cost, and
//! [`Alignment::a_range_for_b_range`] performs the restriction used both in
//! the consistency property tests and in result explanation tooling.

use std::ops::Range;

/// A single coupling between element `a_index` of the first sequence and
/// element `b_index` of the second sequence.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct Coupling {
    /// Index into the first (`a`) sequence.
    pub a_index: usize,
    /// Index into the second (`b`) sequence.
    pub b_index: usize,
}

/// An alignment between two sequences: an ordered list of couplings and the
/// aggregate cost of the alignment under the distance that produced it.
#[derive(Clone, PartialEq, Debug, Default)]
pub struct Alignment {
    /// Couplings in order; both index components are non-decreasing
    /// (monotonicity) and advance by at most one per step (continuity).
    pub couplings: Vec<Coupling>,
    /// Aggregate cost (sum or max of coupling costs depending on the distance).
    pub cost: f64,
}

impl Alignment {
    /// Creates an alignment from couplings and a cost.
    pub fn new(couplings: Vec<Coupling>, cost: f64) -> Self {
        Alignment { couplings, cost }
    }

    /// Number of couplings `K`.
    pub fn len(&self) -> usize {
        self.couplings.len()
    }

    /// Whether the alignment has no couplings (both inputs empty).
    pub fn is_empty(&self) -> bool {
        self.couplings.is_empty()
    }

    /// Checks the structural constraints the paper requires of an alignment
    /// between sequences of lengths `a_len` and `b_len`: boundary conditions,
    /// monotonicity and continuity. Returns `true` when all hold.
    pub fn is_valid(&self, a_len: usize, b_len: usize) -> bool {
        if a_len == 0 || b_len == 0 {
            return self.couplings.is_empty();
        }
        let first = match self.couplings.first() {
            Some(c) => c,
            None => return false,
        };
        let last = self.couplings.last().expect("non-empty");
        if first.a_index != 0 || first.b_index != 0 {
            return false;
        }
        if last.a_index != a_len - 1 || last.b_index != b_len - 1 {
            return false;
        }
        for w in self.couplings.windows(2) {
            let (p, q) = (w[0], w[1]);
            let da = q.a_index as i64 - p.a_index as i64;
            let db = q.b_index as i64 - p.b_index as i64;
            // Monotone, advances by at most one on each side, and advances on
            // at least one side.
            if !(0..=1).contains(&da) || !(0..=1).contains(&db) || (da == 0 && db == 0) {
                return false;
            }
        }
        true
    }

    /// Every element of `a` that is coupled to an element of `b` inside
    /// `b_range`, expressed as the half-open range from the earliest to the
    /// latest such element (the `SQ_{c,d}` of the consistency proof).
    ///
    /// Returns `None` if no coupling touches `b_range`.
    pub fn a_range_for_b_range(&self, b_range: Range<usize>) -> Option<Range<usize>> {
        let mut min_a = usize::MAX;
        let mut max_a = 0usize;
        let mut found = false;
        for c in &self.couplings {
            if b_range.contains(&c.b_index) {
                found = true;
                min_a = min_a.min(c.a_index);
                max_a = max_a.max(c.a_index);
            }
        }
        if found {
            Some(min_a..max_a + 1)
        } else {
            None
        }
    }

    /// Couplings restricted to those whose `b` side lies in `b_range`.
    pub fn restrict_to_b_range(&self, b_range: Range<usize>) -> Vec<Coupling> {
        self.couplings
            .iter()
            .copied()
            .filter(|c| b_range.contains(&c.b_index))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(a: usize, b: usize) -> Coupling {
        Coupling {
            a_index: a,
            b_index: b,
        }
    }

    #[test]
    fn valid_alignment_passes_structural_checks() {
        let al = Alignment::new(vec![c(0, 0), c(1, 0), c(2, 1), c(3, 2)], 1.5);
        assert!(al.is_valid(4, 3));
        assert_eq!(al.len(), 4);
        assert!(!al.is_empty());
    }

    #[test]
    fn empty_alignment_only_valid_for_empty_inputs() {
        let al = Alignment::default();
        assert!(al.is_valid(0, 0));
        assert!(al.is_valid(0, 3));
        assert!(!al.is_valid(2, 3));
    }

    #[test]
    fn boundary_violations_are_detected() {
        let al = Alignment::new(vec![c(1, 0), c(2, 1)], 0.0);
        assert!(!al.is_valid(3, 2), "must start at (0,0)");
        let al = Alignment::new(vec![c(0, 0), c(1, 1)], 0.0);
        assert!(!al.is_valid(3, 2), "must end at (a_len-1, b_len-1)");
    }

    #[test]
    fn monotonicity_and_continuity_violations_are_detected() {
        let jump = Alignment::new(vec![c(0, 0), c(2, 1)], 0.0);
        assert!(!jump.is_valid(3, 2), "a jumps by 2");
        let backwards = Alignment::new(vec![c(0, 0), c(1, 1), c(0, 1)], 0.0);
        assert!(!backwards.is_valid(2, 2), "a goes backwards");
        let stall = Alignment::new(vec![c(0, 0), c(0, 0), c(1, 1)], 0.0);
        assert!(!stall.is_valid(2, 2), "repeated coupling");
    }

    #[test]
    fn restriction_projects_onto_a() {
        // a: 0 1 2 3 4 ; b: 0 1 2
        let al = Alignment::new(vec![c(0, 0), c(1, 0), c(2, 1), c(3, 2), c(4, 2)], 0.0);
        assert_eq!(al.a_range_for_b_range(1..2), Some(2..3));
        assert_eq!(al.a_range_for_b_range(0..1), Some(0..2));
        assert_eq!(al.a_range_for_b_range(1..3), Some(2..5));
        assert_eq!(al.a_range_for_b_range(3..4), None);
        assert_eq!(al.restrict_to_b_range(1..3).len(), 3);
    }
}
