//! Hamming distance between equal-length sequences.

use ssr_sequence::Element;

use crate::counting::{pruning_enabled, record_dp_cells, record_lower_bound_prune};
use crate::traits::{DistanceProperties, SequenceDistance};

/// The Hamming distance: the number of positions at which two equal-length
/// sequences differ.
///
/// Pairs of different lengths are reported as `f64::INFINITY`. Hamming
/// distance is metric and consistent but, like the Euclidean distance, cannot
/// tolerate shifts or gaps (Section 5 of the paper).
///
/// [`SequenceDistance::distance_within`] abandons the scan as soon as the
/// running mismatch count exceeds `τ` — exact, since the count only grows.
#[derive(Clone, Copy, Debug, Default)]
pub struct Hamming;

impl Hamming {
    /// Creates the Hamming distance.
    pub fn new() -> Self {
        Hamming
    }
}

impl<E: Element> SequenceDistance<E> for Hamming {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        let prune = pruning_enabled();
        if a.len() != b.len() {
            let d = f64::INFINITY;
            if d <= tau {
                return Some(d);
            }
            if prune {
                record_lower_bound_prune();
            }
            return None;
        }
        let mut mismatches = 0u64;
        let mut cells = 0u64;
        for (x, y) in a.iter().zip(b.iter()) {
            mismatches += u64::from(x != y);
            cells += 1;
            if prune && crate::counting::exceeds(mismatches as f64, tau) {
                record_dp_cells(cells);
                return None;
            }
        }
        record_dp_cells(cells);
        let d = mismatches as f64;
        if d <= tau {
            Some(d)
        } else {
            None
        }
    }

    fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
        if a_len != b_len {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "Hamming"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: false,
            requires_equal_lengths: true,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        Some(len as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{Pitch, Symbol};

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn counts_mismatching_positions() {
        let d = Hamming::new();
        assert_eq!(d.distance(&sym("GATTACA"), &sym("GACTATA")), 2.0);
        assert_eq!(d.distance(&sym("AAAA"), &sym("CCCC")), 4.0);
        assert_eq!(d.distance(&sym("ACGT"), &sym("ACGT")), 0.0);
    }

    #[test]
    fn unequal_lengths_are_infinitely_far() {
        let d = Hamming::new();
        assert!(d.distance(&sym("AC"), &sym("ACG")).is_infinite());
    }

    #[test]
    fn empty_sequences_are_identical() {
        let d = Hamming::new();
        let empty: Vec<Symbol> = vec![];
        assert_eq!(d.distance(&empty, &empty), 0.0);
    }

    #[test]
    fn works_for_numeric_elements_via_equality() {
        let d = Hamming::new();
        let a = [Pitch(0), Pitch(5), Pitch(11)];
        let b = [Pitch(0), Pitch(6), Pitch(11)];
        assert_eq!(d.distance(&a, &b), 1.0);
    }

    #[test]
    fn triangle_inequality_spot_check() {
        let d = Hamming::new();
        let a = sym("ACGTAC");
        let b = sym("ACCTAC");
        let c = sym("TCCTAG");
        assert!(d.distance(&a, &c) <= d.distance(&a, &b) + d.distance(&b, &c));
    }

    #[test]
    fn max_distance_equals_length() {
        let d = Hamming::new();
        assert_eq!(SequenceDistance::<Symbol>::max_distance(&d, 20), Some(20.0));
    }

    #[test]
    fn consistency_for_corresponding_subranges() {
        let d = Hamming::new();
        let a = sym("ACGTACGTAC");
        let b = sym("ACGAACGTTT");
        let full = d.distance(&a, &b);
        for start in 0..a.len() {
            for end in (start + 1)..=a.len() {
                assert!(d.distance(&a[start..end], &b[start..end]) <= full);
            }
        }
    }
}
