//! Distance-call accounting.
//!
//! The paper's query-performance figures (8–11) report the **percentage of
//! distance computations** an index performs relative to the naive linear
//! scan. [`CallCounter`] is a cheap, cloneable counter shared between the
//! benchmark harness and whatever component evaluates distances, and
//! [`CountingDistance`] wraps any [`SequenceDistance`] so every evaluation is
//! counted transparently.

use std::cell::Cell;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use ssr_sequence::Element;

use crate::traits::{DistanceProperties, SequenceDistance};

thread_local! {
    /// Monotone per-thread tally of distance evaluations recorded by *any*
    /// [`CallCounter`] on the current thread (see [`CallCounter::thread_total`]).
    static THREAD_CALLS: Cell<u64> = const { Cell::new(0) };

    /// Monotone per-thread tally of dynamic-program cells evaluated by the
    /// distance kernels (see [`dp_cells_thread_total`]).
    static THREAD_DP_CELLS: Cell<u64> = const { Cell::new(0) };

    /// Monotone per-thread tally of distance evaluations resolved by a cheap
    /// lower bound alone (see [`lower_bound_prunes_thread_total`]).
    static THREAD_LB_PRUNES: Cell<u64> = const { Cell::new(0) };
}

/// Process-global switch for the threshold-aware pruning machinery (lower
/// bounds, banded DP, early abandoning). Enabled by default; the bench
/// harness's `--no-pruning` ablation disables it to measure the saving
/// in-repo. Disabling never changes results — kernels fall back to the full
/// dynamic program and apply the threshold to the finished value — it only
/// changes how many DP cells they evaluate.
static PRUNING_ENABLED: AtomicBool = AtomicBool::new(true);

/// Enables or disables threshold-aware pruning process-wide (ablation knob).
///
/// Results are identical either way; only [`dp_cells_thread_total`] and
/// [`lower_bound_prunes_thread_total`] are affected. Intended for benchmarks
/// and dedicated ablation tests — flipping it while other threads measure
/// pruning ratios makes those measurements meaningless (but never wrong).
pub fn set_pruning_enabled(enabled: bool) {
    PRUNING_ENABLED.store(enabled, Ordering::Relaxed);
}

/// Whether threshold-aware pruning is currently enabled (see
/// [`set_pruning_enabled`]).
pub fn pruning_enabled() -> bool {
    PRUNING_ENABLED.load(Ordering::Relaxed)
}

/// `true` when `value` does **not** satisfy `value ≤ tau`: either it exceeds
/// the threshold or the comparison is undefined (NaN threshold). The kernels
/// prune on this predicate so that a NaN `tau` — for which `d ≤ tau` can
/// never hold — yields `None` rather than a bogus acceptance.
#[inline]
pub(crate) fn exceeds(value: f64, tau: f64) -> bool {
    !matches!(
        value.partial_cmp(&tau),
        Some(std::cmp::Ordering::Less | std::cmp::Ordering::Equal)
    )
}

/// Records `n` dynamic-program cell evaluations on the current thread's tally.
///
/// The distance kernels call this once per evaluation with the number of
/// recurrence cells they actually filled (elements processed, for the
/// lockstep distances), so `dp_cells_evaluated` statistics are deterministic
/// and bit-reproducible at every thread count when read as before/after
/// deltas of [`dp_cells_thread_total`] — the same attribution scheme as
/// [`CallCounter::thread_total`].
pub fn record_dp_cells(n: u64) {
    THREAD_DP_CELLS.with(|c| c.set(c.get().wrapping_add(n)));
}

/// Monotone tally of DP cells evaluated by distance kernels on the **current
/// thread**, ever. Read before/after a block of work to attribute cells to it
/// exactly (see [`record_dp_cells`]).
pub fn dp_cells_thread_total() -> u64 {
    THREAD_DP_CELLS.with(|c| c.get())
}

/// Records one distance evaluation that was resolved by a cheap lower bound
/// (or an equal-length requirement) without running the dynamic program.
pub fn record_lower_bound_prune() {
    THREAD_LB_PRUNES.with(|c| c.set(c.get().wrapping_add(1)));
}

/// Monotone per-thread tally of lower-bound prunes (see
/// [`record_lower_bound_prune`]).
pub fn lower_bound_prunes_thread_total() -> u64 {
    THREAD_LB_PRUNES.with(|c| c.get())
}

/// A shared counter of dynamic-program cells, mirroring [`CallCounter`] for
/// the cell tallies: cloning yields a handle to the same underlying count.
///
/// Unlike [`record_dp_cells`] it has no thread-local component — it is an
/// aggregate sink the index layer's `CountingMetric` feeds with per-call
/// deltas, so a database can report how many cells its index spent overall
/// (e.g. during the build) alongside its distance-call count.
#[derive(Clone, Debug, Default)]
pub struct CellCounter {
    count: Arc<AtomicU64>,
}

impl CellCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        CellCounter::default()
    }

    /// Adds `n` cells.
    pub fn add(&self, n: u64) {
        if n > 0 {
            self.count.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Current number of recorded cells.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// A shared counter of distance evaluations.
///
/// Cloning the counter yields a handle to the *same* underlying count, so the
/// harness can keep one handle while the index owns another.
#[derive(Clone, Debug, Default)]
pub struct CallCounter {
    count: Arc<AtomicU64>,
}

impl CallCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        CallCounter::default()
    }

    /// Records one distance evaluation.
    pub fn record(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
        THREAD_CALLS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    /// Records `n` distance evaluations at once.
    pub fn record_many(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
        THREAD_CALLS.with(|c| c.set(c.get().wrapping_add(n)));
    }

    /// Monotone tally of the distance evaluations recorded by *any* counter on
    /// the **current thread**, ever. Reading it before and after a block of
    /// work attributes distance calls to that block exactly, even while other
    /// threads drive the same shared counters concurrently — the shared
    /// [`CallCounter::get`] delta would interleave their work. The parallel
    /// batch engine relies on this for bit-identical per-query statistics at
    /// any thread count.
    pub fn thread_total() -> u64 {
        THREAD_CALLS.with(|c| c.get())
    }

    /// Current number of recorded evaluations.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// A [`SequenceDistance`] wrapper that counts every call through a shared
/// [`CallCounter`].
#[derive(Clone, Debug)]
pub struct CountingDistance<D> {
    inner: D,
    counter: CallCounter,
}

impl<D> CountingDistance<D> {
    /// Wraps `inner`, counting calls on `counter`.
    pub fn new(inner: D, counter: CallCounter) -> Self {
        CountingDistance { inner, counter }
    }

    /// The shared counter.
    pub fn counter(&self) -> &CallCounter {
        &self.counter
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<E: Element, D: SequenceDistance<E>> SequenceDistance<E> for CountingDistance<D> {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.counter.record();
        self.inner.distance(a, b)
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        self.counter.record();
        self.inner.distance_within(a, b, tau)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn properties(&self) -> DistanceProperties {
        self.inner.properties()
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        self.inner.max_distance(len)
    }

    fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
        self.inner.length_lower_bound(a_len, b_len)
    }

    fn uses_gap_sums(&self) -> bool {
        self.inner.uses_gap_sums()
    }

    fn gap_sum_lower_bound(&self, sum_a: f64, sum_b: f64) -> f64 {
        self.inner.gap_sum_lower_bound(sum_a, sum_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levenshtein;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn counter_is_shared_across_clones() {
        let c = CallCounter::new();
        let c2 = c.clone();
        c.record();
        c2.record_many(3);
        assert_eq!(c.get(), 4);
        assert_eq!(c2.get(), 4);
        assert_eq!(c.reset(), 4);
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn counting_distance_counts_and_delegates() {
        let counter = CallCounter::new();
        let d = CountingDistance::new(Levenshtein::new(), counter.clone());
        let a = sym("KITTEN");
        let b = sym("SITTING");
        assert_eq!(d.distance(&a, &b), 3.0);
        assert_eq!(d.distance(&a, &a), 0.0);
        assert_eq!(counter.get(), 2);
        assert_eq!(SequenceDistance::<Symbol>::name(&d), "Levenshtein");
        assert!(SequenceDistance::<Symbol>::is_metric(&d));
        assert_eq!(SequenceDistance::<Symbol>::max_distance(&d, 7), Some(7.0));
    }

    #[test]
    fn counter_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CallCounter>();
        assert_send_sync::<CountingDistance<Levenshtein>>();
    }
}
