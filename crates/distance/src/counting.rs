//! Distance-call accounting.
//!
//! The paper's query-performance figures (8–11) report the **percentage of
//! distance computations** an index performs relative to the naive linear
//! scan. [`CallCounter`] is a cheap, cloneable counter shared between the
//! benchmark harness and whatever component evaluates distances, and
//! [`CountingDistance`] wraps any [`SequenceDistance`] so every evaluation is
//! counted transparently.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use ssr_sequence::Element;

use crate::traits::{DistanceProperties, SequenceDistance};

thread_local! {
    /// Monotone per-thread tally of distance evaluations recorded by *any*
    /// [`CallCounter`] on the current thread (see [`CallCounter::thread_total`]).
    static THREAD_CALLS: Cell<u64> = const { Cell::new(0) };
}

/// A shared counter of distance evaluations.
///
/// Cloning the counter yields a handle to the *same* underlying count, so the
/// harness can keep one handle while the index owns another.
#[derive(Clone, Debug, Default)]
pub struct CallCounter {
    count: Arc<AtomicU64>,
}

impl CallCounter {
    /// Creates a counter starting at zero.
    pub fn new() -> Self {
        CallCounter::default()
    }

    /// Records one distance evaluation.
    pub fn record(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
        THREAD_CALLS.with(|c| c.set(c.get().wrapping_add(1)));
    }

    /// Records `n` distance evaluations at once.
    pub fn record_many(&self, n: u64) {
        self.count.fetch_add(n, Ordering::Relaxed);
        THREAD_CALLS.with(|c| c.set(c.get().wrapping_add(n)));
    }

    /// Monotone tally of the distance evaluations recorded by *any* counter on
    /// the **current thread**, ever. Reading it before and after a block of
    /// work attributes distance calls to that block exactly, even while other
    /// threads drive the same shared counters concurrently — the shared
    /// [`CallCounter::get`] delta would interleave their work. The parallel
    /// batch engine relies on this for bit-identical per-query statistics at
    /// any thread count.
    pub fn thread_total() -> u64 {
        THREAD_CALLS.with(|c| c.get())
    }

    /// Current number of recorded evaluations.
    pub fn get(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Resets the counter to zero and returns the previous value.
    pub fn reset(&self) -> u64 {
        self.count.swap(0, Ordering::Relaxed)
    }
}

/// A [`SequenceDistance`] wrapper that counts every call through a shared
/// [`CallCounter`].
#[derive(Clone, Debug)]
pub struct CountingDistance<D> {
    inner: D,
    counter: CallCounter,
}

impl<D> CountingDistance<D> {
    /// Wraps `inner`, counting calls on `counter`.
    pub fn new(inner: D, counter: CallCounter) -> Self {
        CountingDistance { inner, counter }
    }

    /// The shared counter.
    pub fn counter(&self) -> &CallCounter {
        &self.counter
    }

    /// The wrapped distance.
    pub fn inner(&self) -> &D {
        &self.inner
    }
}

impl<E: Element, D: SequenceDistance<E>> SequenceDistance<E> for CountingDistance<D> {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.counter.record();
        self.inner.distance(a, b)
    }

    fn name(&self) -> &'static str {
        self.inner.name()
    }

    fn properties(&self) -> DistanceProperties {
        self.inner.properties()
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        self.inner.max_distance(len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Levenshtein;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn counter_is_shared_across_clones() {
        let c = CallCounter::new();
        let c2 = c.clone();
        c.record();
        c2.record_many(3);
        assert_eq!(c.get(), 4);
        assert_eq!(c2.get(), 4);
        assert_eq!(c.reset(), 4);
        assert_eq!(c2.get(), 0);
    }

    #[test]
    fn counting_distance_counts_and_delegates() {
        let counter = CallCounter::new();
        let d = CountingDistance::new(Levenshtein::new(), counter.clone());
        let a = sym("KITTEN");
        let b = sym("SITTING");
        assert_eq!(d.distance(&a, &b), 3.0);
        assert_eq!(d.distance(&a, &a), 0.0);
        assert_eq!(counter.get(), 2);
        assert_eq!(SequenceDistance::<Symbol>::name(&d), "Levenshtein");
        assert!(SequenceDistance::<Symbol>::is_metric(&d));
        assert_eq!(SequenceDistance::<Symbol>::max_distance(&d, 7), Some(7.0));
    }

    #[test]
    fn counter_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<CallCounter>();
        assert_send_sync::<CountingDistance<Levenshtein>>();
    }
}
