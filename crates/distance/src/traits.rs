//! Core distance traits.

use ssr_sequence::Element;

use crate::alignment::Alignment;

/// Static properties of a distance measure relevant to the framework.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub struct DistanceProperties {
    /// Whether the distance is symmetric and satisfies the triangle
    /// inequality. Metric distances can be indexed by the Reference Net,
    /// Cover Tree and reference-based indexes (Section 3.3 and 6).
    pub metric: bool,
    /// Whether the distance satisfies the consistency property
    /// (Definition 1): for every subsequence of `X` there is a subsequence of
    /// `Q` at distance no larger than `δ(Q, X)`.
    pub consistent: bool,
    /// Whether the distance tolerates temporal misalignment / gaps. The paper
    /// points out that Euclidean and Hamming are metric and consistent but
    /// cannot tolerate even a single-element shift, which limits their use for
    /// subsequence matching (end of Section 5).
    pub allows_time_shift: bool,
    /// Whether the two inputs must have equal lengths.
    pub requires_equal_lengths: bool,
}

/// A dissimilarity measure between two element slices.
///
/// Implementations must be deterministic and non-negative; metric
/// implementations must additionally be symmetric and satisfy the triangle
/// inequality (verified by property tests in this crate).
pub trait SequenceDistance<E: Element>: Send + Sync {
    /// The distance between `a` and `b`.
    ///
    /// Distances that require equal lengths return `f64::INFINITY` when the
    /// lengths differ, so that such pairs are never reported as similar.
    fn distance(&self, a: &[E], b: &[E]) -> f64;

    /// Threshold-aware evaluation: returns `Some(d)` with
    /// `d == self.distance(a, b)` **exactly** when `distance(a, b) ≤ tau`,
    /// and `None` exactly when `distance(a, b) > tau`. Never approximate.
    ///
    /// Every caller in the framework already knows a threshold — the index
    /// range radius, or the verification `ε` — and a kernel that knows `tau`
    /// can skip most of its `O(n·m)` dynamic program: a cheap lower bound may
    /// already exceed `tau` ([`crate::lower_bounds`]), the DP can be
    /// restricted to a Ukkonen-style band around the diagonal, and a row
    /// whose minimum exceeds `tau` proves the final value will too (every
    /// monotone alignment path crosses every row, and path costs only grow).
    /// The default implementation runs the full distance and applies the
    /// threshold afterwards, so the method is always safe to call.
    ///
    /// The work performed is observable through
    /// [`crate::counting::dp_cells_thread_total`] and
    /// [`crate::counting::lower_bound_prunes_thread_total`]; pruning can be
    /// disabled globally for ablations via
    /// [`crate::counting::set_pruning_enabled`] without changing any result.
    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        let d = self.distance(a, b);
        if d <= tau {
            Some(d)
        } else {
            None
        }
    }

    /// An **exact** lower bound on `distance(a, b)` computable from the input
    /// lengths alone; `0.0` when the measure admits none. Used by the
    /// verification cascade to discard candidate pairs before touching their
    /// elements.
    fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
        let _ = (a_len, b_len);
        0.0
    }

    /// Whether [`Self::gap_sum_lower_bound`] can prune for this measure
    /// (ERP-style measures whose gap costs bound the distance from below).
    fn uses_gap_sums(&self) -> bool {
        false
    }

    /// A lower bound on `distance(a, b)` given the total ground distances of
    /// `a` and `b` to the gap element. Only meaningful when
    /// [`Self::uses_gap_sums`] returns `true`; callers must ensure the sums
    /// are exact (e.g. integral ground distances accumulated in `f64`) before
    /// pruning on the bound.
    fn gap_sum_lower_bound(&self, sum_a: f64, sum_b: f64) -> f64 {
        let _ = (sum_a, sum_b);
        0.0
    }

    /// A short human-readable name ("Levenshtein", "ERP", …).
    fn name(&self) -> &'static str;

    /// Static properties of the measure.
    fn properties(&self) -> DistanceProperties;

    /// Whether the measure is a metric.
    fn is_metric(&self) -> bool {
        self.properties().metric
    }

    /// Whether the measure satisfies the consistency property.
    fn is_consistent(&self) -> bool {
        self.properties().consistent
    }

    /// An upper bound on `distance(a, b)` for inputs of length at most `len`,
    /// if the measure admits one (used to express query ranges as a fraction
    /// of the maximum distance, as in Figures 8 and 12).
    fn max_distance(&self, len: usize) -> Option<f64> {
        let _ = len;
        None
    }
}

macro_rules! forward_sequence_distance {
    ($wrapper:ty) => {
        impl<E: Element, D: SequenceDistance<E> + ?Sized> SequenceDistance<E> for $wrapper {
            fn distance(&self, a: &[E], b: &[E]) -> f64 {
                (**self).distance(a, b)
            }

            fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
                (**self).distance_within(a, b, tau)
            }

            fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
                (**self).length_lower_bound(a_len, b_len)
            }

            fn uses_gap_sums(&self) -> bool {
                (**self).uses_gap_sums()
            }

            fn gap_sum_lower_bound(&self, sum_a: f64, sum_b: f64) -> f64 {
                (**self).gap_sum_lower_bound(sum_a, sum_b)
            }

            fn name(&self) -> &'static str {
                (**self).name()
            }

            fn properties(&self) -> DistanceProperties {
                (**self).properties()
            }

            fn max_distance(&self, len: usize) -> Option<f64> {
                (**self).max_distance(len)
            }
        }
    };
}

forward_sequence_distance!(std::sync::Arc<D>);
forward_sequence_distance!(Box<D>);
forward_sequence_distance!(&D);

/// Distances defined through an optimal alignment (sequence of couplings).
///
/// DTW, ERP and the Levenshtein distance minimise the *sum* of coupling costs;
/// the discrete Fréchet distance minimises the *maximum* coupling cost. The
/// consistency proof in Section 4 of the paper rests on restricting the optimal
/// alignment to a subsequence, which [`Alignment::restrict_to_b_range`]
/// implements; tests use it to validate consistency empirically.
pub trait AlignmentDistance<E: Element>: SequenceDistance<E> {
    /// Computes an optimal alignment between `a` and `b` together with its
    /// cost (which equals `distance(a, b)`).
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment;

    /// Whether the alignment cost aggregates couplings by summation (`true`)
    /// or by maximum (`false`, discrete Fréchet).
    fn aggregates_by_sum(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DiscreteFrechet, Dtw, Erp, Euclidean, Hamming, Levenshtein};
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    #[test]
    fn property_table_matches_the_paper() {
        // Table implied by Sections 3.3-5 of the paper.
        fn props<D: SequenceDistance<Symbol>>(d: &D) -> DistanceProperties {
            d.properties()
        }
        let lev = props(&Levenshtein::new());
        assert!(lev.metric && lev.consistent);
        let erp = props(&Erp::new());
        assert!(erp.metric && erp.consistent);
        let dfd = props(&DiscreteFrechet::new());
        assert!(dfd.metric && dfd.consistent);
        let dtw = props(&Dtw::new());
        assert!(!dtw.metric && dtw.consistent);
        let euc = props(&Euclidean::new());
        assert!(euc.metric && euc.consistent);
        assert!(euc.requires_equal_lengths);
        let ham = props(&Hamming::new());
        assert!(ham.metric && ham.consistent);
        assert!(!ham.allows_time_shift);
    }

    #[test]
    fn distance_objects_are_usable_behind_dyn_references() {
        let distances: Vec<Box<dyn SequenceDistance<Symbol>>> = vec![
            Box::new(Levenshtein::new()),
            Box::new(Hamming::new()),
            Box::new(Erp::new()),
            Box::new(DiscreteFrechet::new()),
            Box::new(Dtw::new()),
        ];
        let a = sym("ACGT");
        let b = sym("AGGT");
        for d in &distances {
            let v = d.distance(&a, &b);
            assert!(v.is_finite());
            assert!(v >= 0.0, "{} returned negative distance", d.name());
            assert_eq!(d.distance(&a, &a), 0.0, "{} not reflexive", d.name());
        }
    }
}
