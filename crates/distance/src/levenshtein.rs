//! Levenshtein (edit) distance with unit costs.

use ssr_sequence::Element;

use crate::alignment::{Alignment, Coupling};
use crate::counting::{pruning_enabled, record_dp_cells, record_lower_bound_prune};
use crate::lower_bounds::length_difference_lower_bound;
use crate::traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
use crate::workspace::DistanceWorkspace;

/// Sentinel for DP cells outside the Ukkonen band. Half of `u32::MAX` so that
/// `BAND_INF + 1` can never wrap.
const BAND_INF: u32 = u32::MAX / 2;

/// The Levenshtein distance: the minimum number of single-element insertions,
/// deletions and substitutions needed to transform one sequence into another.
///
/// This is the distance the paper uses for the PROTEINS experiments
/// (Figures 4, 5, 8 and 12). It is metric and consistent, and tolerates gaps,
/// which makes it suitable for the framework on string data (Section 5).
///
/// [`SequenceDistance::distance_within`] is the threshold-aware kernel: a
/// length-difference lower bound, then a Ukkonen-style banded dynamic program
/// (cells with `|i − j| > ⌊τ⌋` cost more than `τ` because every off-diagonal
/// step is an indel) with row-minimum early abandoning. All values are exact
/// integers, so the banded result equals the full DP bit-for-bit whenever the
/// distance is within the threshold. [`SequenceDistance::distance`] is the
/// same kernel with `τ = ∞` (full band, no abandoning);
/// [`AlignmentDistance::alignment`] keeps a full matrix with traceback.
#[derive(Clone, Copy, Debug, Default)]
pub struct Levenshtein;

impl Levenshtein {
    /// Creates the unit-cost Levenshtein distance.
    pub fn new() -> Self {
        Levenshtein
    }
}

impl<E: Element> SequenceDistance<E> for Levenshtein {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        let n = a.len();
        let m = b.len();
        if n == 0 || m == 0 {
            let d = n.max(m) as f64;
            return if d <= tau { Some(d) } else { None };
        }
        let prune = pruning_enabled();
        // Lower bound: every length difference needs at least one indel.
        if prune && crate::counting::exceeds(length_difference_lower_bound(n, m), tau) {
            record_lower_bound_prune();
            return None;
        }
        // Ukkonen band half-width: any cell with |i − j| > k has value > τ,
        // so an optimal path of cost ≤ τ never leaves the band. k ≥ |n − m|
        // holds because the lower bound above passed.
        let k = if prune && tau >= 0.0 && tau.is_finite() {
            (tau.floor() as usize).min(n.max(m))
        } else {
            n.max(m)
        };
        DistanceWorkspace::with(|ws| {
            let (prev, curr) = ws.u32_rows(m + 1, BAND_INF);
            // Row 0 of the (n+1) × (m+1) matrix, restricted to the band.
            for (j, cell) in prev.iter_mut().enumerate().take(m.min(k) + 1) {
                *cell = j as u32;
            }
            let mut cells = 0u64;
            for (i, ai) in a.iter().enumerate() {
                let i = i + 1;
                let lo = i.saturating_sub(k).max(1);
                let hi = m.min(i + k);
                curr[lo - 1] = if lo == 1 && i <= k {
                    i as u32
                } else {
                    BAND_INF
                };
                let mut row_min = BAND_INF;
                for j in lo..=hi {
                    let sub_cost = if *ai == b[j - 1] { 0 } else { 1 };
                    let value = (prev[j - 1] + sub_cost)
                        .min(prev[j] + 1)
                        .min(curr[j - 1] + 1);
                    curr[j] = value;
                    row_min = row_min.min(value);
                }
                cells += (hi + 1 - lo) as u64;
                if hi < m {
                    curr[hi + 1] = BAND_INF;
                }
                // Every alignment path crosses row i, and values only grow
                // along a path, so the final value is at least the row min.
                if prune && crate::counting::exceeds(f64::from(row_min), tau) {
                    record_dp_cells(cells);
                    return None;
                }
                std::mem::swap(prev, curr);
            }
            record_dp_cells(cells);
            let d = f64::from(prev[m]);
            if d <= tau {
                Some(d)
            } else {
                None
            }
        })
    }

    fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
        length_difference_lower_bound(a_len, b_len)
    }

    fn name(&self) -> &'static str {
        "Levenshtein"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: true,
            requires_equal_lengths: false,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        // At most max(|a|, |b|) edits are ever needed.
        Some(len as f64)
    }
}

impl<E: Element> AlignmentDistance<E> for Levenshtein {
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment {
        if a.is_empty() || b.is_empty() {
            return Alignment::new(Vec::new(), a.len().max(b.len()) as f64);
        }
        let n = a.len();
        let m = b.len();
        let mut dp = vec![0u32; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        for i in 0..=n {
            dp[idx(i, 0)] = i as u32;
        }
        for j in 0..=m {
            dp[idx(0, j)] = j as u32;
        }
        for i in 1..=n {
            for j in 1..=m {
                let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
                dp[idx(i, j)] = (dp[idx(i - 1, j - 1)] + sub_cost)
                    .min(dp[idx(i - 1, j)] + 1)
                    .min(dp[idx(i, j - 1)] + 1);
            }
        }
        // Traceback into a coupling sequence following the paper's model:
        // insertions / deletions repeat an element of the other sequence.
        let mut couplings = Vec::with_capacity(n + m);
        let mut i = n;
        let mut j = m;
        while i > 0 || j > 0 {
            if i > 0 && j > 0 {
                let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
                if dp[idx(i, j)] == dp[idx(i - 1, j - 1)] + sub_cost {
                    couplings.push(Coupling {
                        a_index: i - 1,
                        b_index: j - 1,
                    });
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 && dp[idx(i, j)] == dp[idx(i - 1, j)] + 1 {
                couplings.push(Coupling {
                    a_index: i - 1,
                    b_index: j.saturating_sub(1),
                });
                i -= 1;
            } else {
                couplings.push(Coupling {
                    a_index: i.saturating_sub(1),
                    b_index: j - 1,
                });
                j -= 1;
            }
        }
        couplings.reverse();
        Alignment::new(couplings, f64::from(dp[idx(n, m)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    fn lev(a: &str, b: &str) -> f64 {
        Levenshtein::new().distance(&sym(a), &sym(b))
    }

    #[test]
    fn classic_examples() {
        assert_eq!(lev("KITTEN", "SITTING"), 3.0);
        assert_eq!(lev("FLAW", "LAWN"), 2.0);
        assert_eq!(lev("GATTACA", "GATTACA"), 0.0);
        assert_eq!(lev("", "ACGT"), 4.0);
        assert_eq!(lev("ACGT", ""), 4.0);
        assert_eq!(lev("", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        assert_eq!(lev("ACGGT", "AGT"), lev("AGT", "ACGGT"));
    }

    #[test]
    fn single_edits() {
        assert_eq!(lev("ACGT", "ACCT"), 1.0); // substitution
        assert_eq!(lev("ACGT", "ACGTT"), 1.0); // insertion
        assert_eq!(lev("ACGT", "AGT"), 1.0); // deletion
    }

    #[test]
    fn bounded_by_max_length() {
        let d = Levenshtein::new();
        let a = sym("AAAAAAAAAA");
        let b = sym("CCCCC");
        assert!(d.distance(&a, &b) <= 10.0);
        assert_eq!(d.distance(&a, &b), 10.0); // 5 subs + 5 deletions
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let d = Levenshtein::new();
        let seqs = [sym("ACGT"), sym("AGT"), sym("TTTT"), sym(""), sym("ACG")];
        for x in &seqs {
            for y in &seqs {
                for z in &seqs {
                    assert!(d.distance(x, z) <= d.distance(x, y) + d.distance(y, z));
                }
            }
        }
    }

    #[test]
    fn alignment_cost_equals_distance() {
        let d = Levenshtein::new();
        let cases = [
            ("KITTEN", "SITTING"),
            ("ACGT", "TGCA"),
            ("AAAA", "AA"),
            ("A", "TTTTTT"),
        ];
        for (x, y) in cases {
            let a = sym(x);
            let b = sym(y);
            let al = d.alignment(&a, &b);
            assert_eq!(al.cost, d.distance(&a, &b), "{x} vs {y}");
            assert!(
                al.is_valid(a.len(), b.len()),
                "invalid alignment {x} vs {y}"
            );
        }
    }

    #[test]
    fn alignment_of_empty_inputs() {
        let d = Levenshtein::new();
        let empty: Vec<Symbol> = vec![];
        let al = d.alignment(&empty, &sym("ABC"));
        assert_eq!(al.cost, 3.0);
        assert!(al.couplings.is_empty());
    }

    #[test]
    fn consistency_every_b_subrange_has_a_cheap_a_subrange() {
        // Empirical check of Definition 1 using the optimal alignment's
        // projection, mirroring the proof of Section 4.
        let d = Levenshtein::new();
        let a = sym("ACGTTGCAACGGT");
        let b = sym("TACGTTCCAAGGTT");
        let full = d.distance(&a, &b);
        let al = d.alignment(&a, &b);
        for start in 0..b.len() {
            for end in (start + 1)..=b.len() {
                let a_range = al
                    .a_range_for_b_range(start..end)
                    .expect("every element of b is coupled");
                let sub = d.distance(&a[a_range], &b[start..end]);
                assert!(
                    sub <= full + 1e-9,
                    "consistency violated for b[{start}..{end}]: {sub} > {full}"
                );
            }
        }
    }
}
