//! Levenshtein (edit) distance with unit costs.

use ssr_sequence::Element;

use crate::alignment::{Alignment, Coupling};
use crate::traits::{AlignmentDistance, DistanceProperties, SequenceDistance};

/// The Levenshtein distance: the minimum number of single-element insertions,
/// deletions and substitutions needed to transform one sequence into another.
///
/// This is the distance the paper uses for the PROTEINS experiments
/// (Figures 4, 5, 8 and 12). It is metric and consistent, and tolerates gaps,
/// which makes it suitable for the framework on string data (Section 5).
///
/// The implementation is the standard `O(|a|·|b|)` dynamic program with two
/// rolling rows for [`SequenceDistance::distance`], and a full matrix with
/// traceback for [`AlignmentDistance::alignment`].
#[derive(Clone, Copy, Debug, Default)]
pub struct Levenshtein;

impl Levenshtein {
    /// Creates the unit-cost Levenshtein distance.
    pub fn new() -> Self {
        Levenshtein
    }
}

impl<E: Element> SequenceDistance<E> for Levenshtein {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        if a.is_empty() {
            return b.len() as f64;
        }
        if b.is_empty() {
            return a.len() as f64;
        }
        // Rolling single row of the (|a|+1) x (|b|+1) DP matrix.
        let mut prev: Vec<u32> = (0..=b.len() as u32).collect();
        let mut curr: Vec<u32> = vec![0; b.len() + 1];
        for (i, ai) in a.iter().enumerate() {
            curr[0] = (i + 1) as u32;
            for (j, bj) in b.iter().enumerate() {
                let sub_cost = if ai == bj { 0 } else { 1 };
                curr[j + 1] = (prev[j] + sub_cost).min(prev[j + 1] + 1).min(curr[j] + 1);
            }
            std::mem::swap(&mut prev, &mut curr);
        }
        f64::from(prev[b.len()])
    }

    fn name(&self) -> &'static str {
        "Levenshtein"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: true,
            requires_equal_lengths: false,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        // At most max(|a|, |b|) edits are ever needed.
        Some(len as f64)
    }
}

impl<E: Element> AlignmentDistance<E> for Levenshtein {
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment {
        if a.is_empty() || b.is_empty() {
            return Alignment::new(Vec::new(), a.len().max(b.len()) as f64);
        }
        let n = a.len();
        let m = b.len();
        let mut dp = vec![0u32; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        for i in 0..=n {
            dp[idx(i, 0)] = i as u32;
        }
        for j in 0..=m {
            dp[idx(0, j)] = j as u32;
        }
        for i in 1..=n {
            for j in 1..=m {
                let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
                dp[idx(i, j)] = (dp[idx(i - 1, j - 1)] + sub_cost)
                    .min(dp[idx(i - 1, j)] + 1)
                    .min(dp[idx(i, j - 1)] + 1);
            }
        }
        // Traceback into a coupling sequence following the paper's model:
        // insertions / deletions repeat an element of the other sequence.
        let mut couplings = Vec::with_capacity(n + m);
        let mut i = n;
        let mut j = m;
        while i > 0 || j > 0 {
            if i > 0 && j > 0 {
                let sub_cost = if a[i - 1] == b[j - 1] { 0 } else { 1 };
                if dp[idx(i, j)] == dp[idx(i - 1, j - 1)] + sub_cost {
                    couplings.push(Coupling {
                        a_index: i - 1,
                        b_index: j - 1,
                    });
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 && dp[idx(i, j)] == dp[idx(i - 1, j)] + 1 {
                couplings.push(Coupling {
                    a_index: i - 1,
                    b_index: j.saturating_sub(1),
                });
                i -= 1;
            } else {
                couplings.push(Coupling {
                    a_index: i.saturating_sub(1),
                    b_index: j - 1,
                });
                j -= 1;
            }
        }
        couplings.reverse();
        Alignment::new(couplings, f64::from(dp[idx(n, m)]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::Symbol;

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    fn lev(a: &str, b: &str) -> f64 {
        Levenshtein::new().distance(&sym(a), &sym(b))
    }

    #[test]
    fn classic_examples() {
        assert_eq!(lev("KITTEN", "SITTING"), 3.0);
        assert_eq!(lev("FLAW", "LAWN"), 2.0);
        assert_eq!(lev("GATTACA", "GATTACA"), 0.0);
        assert_eq!(lev("", "ACGT"), 4.0);
        assert_eq!(lev("ACGT", ""), 4.0);
        assert_eq!(lev("", ""), 0.0);
    }

    #[test]
    fn symmetry() {
        assert_eq!(lev("ACGGT", "AGT"), lev("AGT", "ACGGT"));
    }

    #[test]
    fn single_edits() {
        assert_eq!(lev("ACGT", "ACCT"), 1.0); // substitution
        assert_eq!(lev("ACGT", "ACGTT"), 1.0); // insertion
        assert_eq!(lev("ACGT", "AGT"), 1.0); // deletion
    }

    #[test]
    fn bounded_by_max_length() {
        let d = Levenshtein::new();
        let a = sym("AAAAAAAAAA");
        let b = sym("CCCCC");
        assert!(d.distance(&a, &b) <= 10.0);
        assert_eq!(d.distance(&a, &b), 10.0); // 5 subs + 5 deletions
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let d = Levenshtein::new();
        let seqs = [sym("ACGT"), sym("AGT"), sym("TTTT"), sym(""), sym("ACG")];
        for x in &seqs {
            for y in &seqs {
                for z in &seqs {
                    assert!(d.distance(x, z) <= d.distance(x, y) + d.distance(y, z));
                }
            }
        }
    }

    #[test]
    fn alignment_cost_equals_distance() {
        let d = Levenshtein::new();
        let cases = [
            ("KITTEN", "SITTING"),
            ("ACGT", "TGCA"),
            ("AAAA", "AA"),
            ("A", "TTTTTT"),
        ];
        for (x, y) in cases {
            let a = sym(x);
            let b = sym(y);
            let al = d.alignment(&a, &b);
            assert_eq!(al.cost, d.distance(&a, &b), "{x} vs {y}");
            assert!(
                al.is_valid(a.len(), b.len()),
                "invalid alignment {x} vs {y}"
            );
        }
    }

    #[test]
    fn alignment_of_empty_inputs() {
        let d = Levenshtein::new();
        let empty: Vec<Symbol> = vec![];
        let al = d.alignment(&empty, &sym("ABC"));
        assert_eq!(al.cost, 3.0);
        assert!(al.couplings.is_empty());
    }

    #[test]
    fn consistency_every_b_subrange_has_a_cheap_a_subrange() {
        // Empirical check of Definition 1 using the optimal alignment's
        // projection, mirroring the proof of Section 4.
        let d = Levenshtein::new();
        let a = sym("ACGTTGCAACGGT");
        let b = sym("TACGTTCCAAGGTT");
        let full = d.distance(&a, &b);
        let al = d.alignment(&a, &b);
        for start in 0..b.len() {
            for end in (start + 1)..=b.len() {
                let a_range = al
                    .a_range_for_b_range(start..end)
                    .expect("every element of b is coupled");
                let sub = d.distance(&a[a_range], &b[start..end]);
                assert!(
                    sub <= full + 1e-9,
                    "consistency violated for b[{start}..{end}]: {sub} > {full}"
                );
            }
        }
    }
}
