//! Reusable scratch buffers for the distance kernels.
//!
//! Every rolling-row dynamic program needs two rows of length `O(m)`. The
//! naive kernels allocated them on every call, which dominates the cost of
//! small window-vs-segment evaluations (the framework's hottest call site —
//! millions of calls per batch). [`DistanceWorkspace`] keeps one set of rows
//! per worker thread in a thread local, so the hot loop is allocation-free
//! after the first call on each thread: the batch engine's `ExecCtx` workers
//! (one query per worker) each warm their own workspace once and reuse it for
//! the rest of the batch.

use std::cell::RefCell;

thread_local! {
    static WORKSPACE: RefCell<DistanceWorkspace> = RefCell::new(DistanceWorkspace::new());
}

/// Per-thread scratch buffers shared by all distance kernels.
///
/// The buffers keep their capacity between calls; [`Self::f64_rows`] and
/// [`Self::u32_rows`] re-initialise length and contents, so a kernel never
/// observes another kernel's leftovers.
#[derive(Debug, Default)]
pub struct DistanceWorkspace {
    f64_a: Vec<f64>,
    f64_b: Vec<f64>,
    u32_a: Vec<u32>,
    u32_b: Vec<u32>,
}

impl DistanceWorkspace {
    /// Creates an empty workspace (buffers grow on first use).
    pub fn new() -> Self {
        DistanceWorkspace::default()
    }

    /// Runs `f` with the current thread's workspace.
    ///
    /// # Panics
    ///
    /// Panics if called re-entrantly from within `f` (the kernels never nest).
    pub fn with<R>(f: impl FnOnce(&mut DistanceWorkspace) -> R) -> R {
        WORKSPACE.with(|ws| f(&mut ws.borrow_mut()))
    }

    /// Two `f64` rows of length `len`, filled with `fill`.
    pub fn f64_rows(&mut self, len: usize, fill: f64) -> (&mut Vec<f64>, &mut Vec<f64>) {
        self.f64_a.clear();
        self.f64_a.resize(len, fill);
        self.f64_b.clear();
        self.f64_b.resize(len, fill);
        (&mut self.f64_a, &mut self.f64_b)
    }

    /// Two `u32` rows of length `len`, filled with `fill`.
    pub fn u32_rows(&mut self, len: usize, fill: u32) -> (&mut Vec<u32>, &mut Vec<u32>) {
        self.u32_a.clear();
        self.u32_a.resize(len, fill);
        self.u32_b.clear();
        self.u32_b.resize(len, fill);
        (&mut self.u32_a, &mut self.u32_b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rows_are_reinitialised_between_uses() {
        DistanceWorkspace::with(|ws| {
            let (a, b) = ws.f64_rows(4, 1.5);
            a[0] = 9.0;
            b[3] = -2.0;
            assert_eq!(a.len(), 4);
        });
        DistanceWorkspace::with(|ws| {
            let (a, b) = ws.f64_rows(6, 0.0);
            assert!(a.iter().chain(b.iter()).all(|&v| v == 0.0));
            assert_eq!(a.len(), 6);
            assert_eq!(b.len(), 6);
        });
        DistanceWorkspace::with(|ws| {
            let (a, b) = ws.u32_rows(3, 7);
            assert_eq!(a, &vec![7, 7, 7]);
            assert_eq!(b, &vec![7, 7, 7]);
        });
    }
}
