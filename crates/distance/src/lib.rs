//! # ssr-distance
//!
//! Sequence distance functions for the subsequence-retrieval framework of
//! Zhu, Kollios and Athitsos (VLDB 2012), together with the two properties the
//! framework cares about:
//!
//! * **metricity** — symmetry and the triangle inequality, which enable
//!   triangle-inequality pruning and metric indexing (Section 3.3);
//! * **consistency** — for every subsequence `SX` of `X` there is a
//!   subsequence `SQ` of `Q` with `δ(SQ, SX) ≤ δ(Q, X)` (Definition 1), which
//!   is what makes window-based filtering complete (Lemmas 1–3).
//!
//! | Distance | Metric | Consistent | Alignment-based |
//! |----------------------|--------|------------|-----------------|
//! | [`Euclidean`]        | yes    | yes        | no (lockstep)   |
//! | [`Hamming`]          | yes    | yes        | no (lockstep)   |
//! | [`Levenshtein`]      | yes    | yes        | yes             |
//! | [`Erp`]              | yes    | yes        | yes             |
//! | [`DiscreteFrechet`]  | yes    | yes        | yes             |
//! | [`Dtw`]              | **no** | yes        | yes             |
//!
//! All distances are generic over the element type through
//! [`ssr_sequence::Element`], whose `ground_distance` supplies the per-coupling
//! cost.
//!
//! ## Threshold-aware evaluation
//!
//! Every measure implements [`SequenceDistance::distance_within`], an exact
//! threshold kernel that returns `Some(d)` precisely when `d ≤ τ`: a cheap
//! lower bound first ([`lower_bounds`]), then a Ukkonen-style banded dynamic
//! program (Levenshtein, and ERP under integral gap costs) with row-minimum
//! early abandoning (all DP measures), or a running-sum abandon (Euclidean,
//! Hamming). Scratch rows live in a per-thread [`DistanceWorkspace`], so the
//! hot loop performs no allocation. The work is observable through
//! deterministic per-thread tallies ([`dp_cells_thread_total`],
//! [`lower_bound_prunes_thread_total`]) and can be switched off globally for
//! ablations ([`set_pruning_enabled`]) without changing any result.

pub mod alignment;
pub mod counting;
pub mod dtw;
pub mod erp;
pub mod euclidean;
pub mod frechet;
pub mod hamming;
pub mod levenshtein;
pub mod lower_bounds;
pub mod traits;
pub mod workspace;

pub use alignment::{Alignment, Coupling};
pub use counting::{
    dp_cells_thread_total, lower_bound_prunes_thread_total, pruning_enabled, record_dp_cells,
    record_lower_bound_prune, set_pruning_enabled, CallCounter, CellCounter, CountingDistance,
};
pub use dtw::Dtw;
pub use erp::Erp;
pub use euclidean::Euclidean;
pub use frechet::DiscreteFrechet;
pub use hamming::Hamming;
pub use levenshtein::Levenshtein;
pub use lower_bounds::{
    erp_gap_sum, erp_lower_bound, erp_lower_bound_from_sums, length_difference_lower_bound,
    scan_gap_costs, scan_gap_costs_with, GapCostScan, EXACT_INT_SUM_LIMIT,
};
pub use traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
pub use workspace::DistanceWorkspace;
