//! # ssr-distance
//!
//! Sequence distance functions for the subsequence-retrieval framework of
//! Zhu, Kollios and Athitsos (VLDB 2012), together with the two properties the
//! framework cares about:
//!
//! * **metricity** — symmetry and the triangle inequality, which enable
//!   triangle-inequality pruning and metric indexing (Section 3.3);
//! * **consistency** — for every subsequence `SX` of `X` there is a
//!   subsequence `SQ` of `Q` with `δ(SQ, SX) ≤ δ(Q, X)` (Definition 1), which
//!   is what makes window-based filtering complete (Lemmas 1–3).
//!
//! | Distance | Metric | Consistent | Alignment-based |
//! |----------------------|--------|------------|-----------------|
//! | [`Euclidean`]        | yes    | yes        | no (lockstep)   |
//! | [`Hamming`]          | yes    | yes        | no (lockstep)   |
//! | [`Levenshtein`]      | yes    | yes        | yes             |
//! | [`Erp`]              | yes    | yes        | yes             |
//! | [`DiscreteFrechet`]  | yes    | yes        | yes             |
//! | [`Dtw`]              | **no** | yes        | yes             |
//!
//! All distances are generic over the element type through
//! [`ssr_sequence::Element`], whose `ground_distance` supplies the per-coupling
//! cost.

pub mod alignment;
pub mod counting;
pub mod dtw;
pub mod erp;
pub mod euclidean;
pub mod frechet;
pub mod hamming;
pub mod levenshtein;
pub mod lower_bounds;
pub mod traits;

pub use alignment::{Alignment, Coupling};
pub use counting::{CallCounter, CountingDistance};
pub use dtw::Dtw;
pub use erp::Erp;
pub use euclidean::Euclidean;
pub use frechet::DiscreteFrechet;
pub use hamming::Hamming;
pub use levenshtein::Levenshtein;
pub use lower_bounds::{erp_lower_bound, length_difference_lower_bound};
pub use traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
