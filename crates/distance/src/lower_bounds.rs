//! Cheap lower bounds for expensive distances.
//!
//! Lower bounds allow a caller to discard a candidate pair without running the
//! full `O(n·m)` dynamic program: if the bound already exceeds the similarity
//! threshold `ε`, the true distance must too. They are optional accelerators
//! for the verification step of the framework (step 5) and are benchmarked in
//! the ablation suite.

use ssr_sequence::Element;

/// Lower bound for the Levenshtein distance: the absolute difference of the
/// two lengths (every missing element needs at least one insertion).
pub fn length_difference_lower_bound(a_len: usize, b_len: usize) -> f64 {
    a_len.abs_diff(b_len) as f64
}

/// Largest magnitude up to which every `f64` addition of integer-valued terms
/// is exact (2⁵³). This is the shared exactness rule for pruning on gap sums:
/// a float comparison against a sum may only discard a pair when every term
/// was integral (`fract() == 0`) **and** the total stays below this limit —
/// otherwise rounding could flip a borderline comparison. Both the ERP kernel
/// and the verification cascade's prefix tables apply the same rule.
pub const EXACT_INT_SUM_LIMIT: f64 = 9_007_199_254_740_992.0;

/// Total ground distance of a sequence's elements to the gap element — the
/// quantity the ERP lower bound compares. Hot paths avoid re-scanning both
/// inputs per pair: the ERP kernel folds a single scan into its lower-bound /
/// band decisions and DP boundary rows, the verification cascade uses
/// per-sequence prefix sums (`O(1)` per range), and the window store keeps
/// one precomputed sum per indexed window for gap-sum-aware consumers
/// (diagnostics, future index backends).
pub fn erp_gap_sum<E: Element>(xs: &[E]) -> f64 {
    let gap = E::gap();
    xs.iter().map(|x| x.ground_distance(&gap)).sum()
}

/// [`erp_lower_bound`] given precomputed gap sums (see [`erp_gap_sum`]).
pub fn erp_lower_bound_from_sums(sum_a: f64, sum_b: f64) -> f64 {
    (sum_a - sum_b).abs()
}

/// Result of [`scan_gap_costs`]: the gap-cost total, whether pruning on it
/// is exact (every term integral and the total below
/// [`EXACT_INT_SUM_LIMIT`]), and the smallest per-element gap cost (which
/// bounds the cost of leaving the DP diagonal, i.e. the Ukkonen band width).
#[derive(Clone, Copy, Debug)]
pub struct GapCostScan {
    /// Total ground distance to the gap element ([`erp_gap_sum`]).
    pub sum: f64,
    /// Whether comparisons against the sum (and any of its prefixes) are
    /// exact, so a lower bound may prune on them.
    pub integral: bool,
    /// Minimum per-element gap cost (`∞` for an empty input).
    pub min_cost: f64,
}

/// Scans a sequence's gap costs once, invoking `visit` with the running sum
/// after each element (so callers can build prefix tables from the same
/// accumulation the exactness verdict describes). This is the **single**
/// implementation of the exactness rule — the ERP kernel and the
/// verification cascade's prefix tables both use it, so they can never
/// disagree on which pairs are prunable.
pub fn scan_gap_costs_with<E: Element>(xs: &[E], mut visit: impl FnMut(f64)) -> GapCostScan {
    let gap = E::gap();
    let mut scan = GapCostScan {
        sum: 0.0,
        integral: true,
        min_cost: f64::INFINITY,
    };
    for x in xs {
        let cost = x.ground_distance(&gap);
        scan.integral &= cost.fract() == 0.0;
        scan.sum += cost;
        scan.min_cost = scan.min_cost.min(cost);
        visit(scan.sum);
    }
    scan.integral &= scan.sum.abs() < EXACT_INT_SUM_LIMIT;
    scan
}

/// [`scan_gap_costs_with`] without a prefix consumer.
pub fn scan_gap_costs<E: Element>(xs: &[E]) -> GapCostScan {
    scan_gap_costs_with(xs, |_| {})
}

/// Lower bound for the ERP distance (Chen & Ng): the absolute difference of
/// the sequences' total ground distances to the gap element.
///
/// `ERP(a, b) ≥ |Σ_i g(a_i, gap) − Σ_j g(b_j, gap)|` follows from the triangle
/// inequality applied to each coupling of the optimal ERP alignment.
pub fn erp_lower_bound<E: Element>(a: &[E], b: &[E]) -> f64 {
    erp_lower_bound_from_sums(erp_gap_sum(a), erp_gap_sum(b))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Erp, Levenshtein, SequenceDistance};
    use ssr_sequence::{Pitch, Symbol};

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    fn pitches(values: &[i16]) -> Vec<Pitch> {
        values.iter().map(|&v| Pitch(v)).collect()
    }

    #[test]
    fn length_difference_bounds_levenshtein() {
        let d = Levenshtein::new();
        let cases = [("ACGTACGT", "ACG"), ("A", "TTTTTTTT"), ("", "ACGT")];
        for (x, y) in cases {
            let a = sym(x);
            let b = sym(y);
            assert!(length_difference_lower_bound(a.len(), b.len()) <= d.distance(&a, &b));
        }
    }

    #[test]
    fn erp_lower_bound_is_a_true_lower_bound() {
        let d = Erp::new();
        let cases = [
            (pitches(&[0, 5, 11, 3]), pitches(&[1, 5, 10])),
            (pitches(&[7, 7, 7]), pitches(&[0])),
            (pitches(&[]), pitches(&[4, 4])),
            (pitches(&[2, 9, 1, 6, 8]), pitches(&[2, 9, 1, 6, 8])),
        ];
        for (a, b) in cases {
            let lb = erp_lower_bound(&a, &b);
            let full = d.distance(&a, &b);
            assert!(lb <= full + 1e-12, "lb {lb} > erp {full} for {a:?} {b:?}");
        }
    }

    #[test]
    fn erp_lower_bound_is_zero_for_identical_sums() {
        let a = pitches(&[3, 3]);
        let b = pitches(&[6]);
        assert_eq!(erp_lower_bound(&a, &b), 0.0);
    }

    #[test]
    fn length_difference_is_symmetric() {
        assert_eq!(
            length_difference_lower_bound(3, 10),
            length_difference_lower_bound(10, 3)
        );
        assert_eq!(length_difference_lower_bound(5, 5), 0.0);
    }
}
