//! Cheap lower bounds for expensive distances.
//!
//! Lower bounds allow a caller to discard a candidate pair without running the
//! full `O(n·m)` dynamic program: if the bound already exceeds the similarity
//! threshold `ε`, the true distance must too. They are optional accelerators
//! for the verification step of the framework (step 5) and are benchmarked in
//! the ablation suite.

use ssr_sequence::Element;

/// Lower bound for the Levenshtein distance: the absolute difference of the
/// two lengths (every missing element needs at least one insertion).
pub fn length_difference_lower_bound(a_len: usize, b_len: usize) -> f64 {
    a_len.abs_diff(b_len) as f64
}

/// Lower bound for the ERP distance (Chen & Ng): the absolute difference of
/// the sequences' total ground distances to the gap element.
///
/// `ERP(a, b) ≥ |Σ_i g(a_i, gap) − Σ_j g(b_j, gap)|` follows from the triangle
/// inequality applied to each coupling of the optimal ERP alignment.
pub fn erp_lower_bound<E: Element>(a: &[E], b: &[E]) -> f64 {
    let gap = E::gap();
    let sum_a: f64 = a.iter().map(|x| x.ground_distance(&gap)).sum();
    let sum_b: f64 = b.iter().map(|x| x.ground_distance(&gap)).sum();
    (sum_a - sum_b).abs()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Erp, Levenshtein, SequenceDistance};
    use ssr_sequence::{Pitch, Symbol};

    fn sym(text: &str) -> Vec<Symbol> {
        text.chars().map(Symbol::from_char).collect()
    }

    fn pitches(values: &[i16]) -> Vec<Pitch> {
        values.iter().map(|&v| Pitch(v)).collect()
    }

    #[test]
    fn length_difference_bounds_levenshtein() {
        let d = Levenshtein::new();
        let cases = [("ACGTACGT", "ACG"), ("A", "TTTTTTTT"), ("", "ACGT")];
        for (x, y) in cases {
            let a = sym(x);
            let b = sym(y);
            assert!(length_difference_lower_bound(a.len(), b.len()) <= d.distance(&a, &b));
        }
    }

    #[test]
    fn erp_lower_bound_is_a_true_lower_bound() {
        let d = Erp::new();
        let cases = [
            (pitches(&[0, 5, 11, 3]), pitches(&[1, 5, 10])),
            (pitches(&[7, 7, 7]), pitches(&[0])),
            (pitches(&[]), pitches(&[4, 4])),
            (pitches(&[2, 9, 1, 6, 8]), pitches(&[2, 9, 1, 6, 8])),
        ];
        for (a, b) in cases {
            let lb = erp_lower_bound(&a, &b);
            let full = d.distance(&a, &b);
            assert!(lb <= full + 1e-12, "lb {lb} > erp {full} for {a:?} {b:?}");
        }
    }

    #[test]
    fn erp_lower_bound_is_zero_for_identical_sums() {
        let a = pitches(&[3, 3]);
        let b = pitches(&[6]);
        assert_eq!(erp_lower_bound(&a, &b), 0.0);
    }

    #[test]
    fn length_difference_is_symmetric() {
        assert_eq!(
            length_difference_lower_bound(3, 10),
            length_difference_lower_bound(10, 3)
        );
        assert_eq!(length_difference_lower_bound(5, 5), 0.0);
    }
}
