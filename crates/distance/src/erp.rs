//! ERP — Edit distance with Real Penalty (Chen & Ng, VLDB 2004).

use ssr_sequence::Element;

use crate::alignment::{Alignment, Coupling};
use crate::counting::{pruning_enabled, record_dp_cells, record_lower_bound_prune};
use crate::lower_bounds::{erp_lower_bound_from_sums, scan_gap_costs};
use crate::traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
use crate::workspace::DistanceWorkspace;

/// ERP: an edit-style distance whose substitution cost is the ground distance
/// between the coupled elements, and whose gap cost is the ground distance of
/// the gapped element to a fixed gap element `g` ([`Element::gap`]).
///
/// ERP "marries" Lp-norms and edit distance: unlike DTW it satisfies the
/// triangle inequality (it is a metric), and unlike the Euclidean distance it
/// tolerates local time shifting and gaps. Together with the discrete Fréchet
/// distance it is the time-series distance used throughout the paper's
/// evaluation (Figures 4, 6, 7, 9 and 10).
///
/// [`SequenceDistance::distance_within`] prunes in three exact stages: the
/// gap-sum lower bound `ERP(a, b) ≥ |Σ g(aᵢ, gap) − Σ g(bⱼ, gap)|` (applied
/// only when both sums are exact integers, so the comparison cannot
/// misclassify a borderline pair), a Ukkonen-style band (a path that strays
/// `w` cells off the diagonal performs at least `w` gap operations, each
/// costing at least the smallest per-element gap cost — again only under
/// integral costs, where banded and full DP agree bit-for-bit), and
/// row-minimum early abandoning (exact for any ground distance: IEEE addition
/// of non-negative costs is monotone, so path values never decrease).
#[derive(Clone, Copy, Debug, Default)]
pub struct Erp;

impl Erp {
    /// Creates the ERP distance with the element type's default gap element.
    pub fn new() -> Self {
        Erp
    }
}

impl<E: Element> SequenceDistance<E> for Erp {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        let gap = E::gap();
        let n = a.len();
        let m = b.len();
        if n == 0 && m == 0 {
            return if 0.0 <= tau { Some(0.0) } else { None };
        }
        let prune = pruning_enabled();
        // The lower bound and the band both come from one gap-cost scan of
        // each input; with pruning disabled — or an infinite threshold,
        // against which neither can ever trigger — the scan's outputs would
        // all be unused, so skip it entirely.
        let mut k = n.max(m);
        if prune && tau.is_finite() {
            let scan_a = scan_gap_costs(a);
            let scan_b = scan_gap_costs(b);
            let exact_sums = scan_a.integral && scan_b.integral;
            if exact_sums
                && crate::counting::exceeds(erp_lower_bound_from_sums(scan_a.sum, scan_b.sum), tau)
            {
                record_lower_bound_prune();
                return None;
            }
            // Band half-width: a path at diagonal offset w has made at least
            // w gap operations, each costing at least `min_gap`, so cells
            // with |i − j| > τ / min_gap cannot lie on a path of cost ≤ τ.
            // Only sound to *restrict* the DP when the arithmetic is exact
            // (integral costs).
            let min_gap = scan_a.min_cost.min(scan_b.min_cost);
            if exact_sums && min_gap > 0.0 && tau >= 0.0 && tau.is_finite() {
                k = ((tau / min_gap).floor() as usize).min(k);
            }
        }
        DistanceWorkspace::with(|ws| {
            let (prev, curr) = ws.f64_rows(m + 1, f64::INFINITY);
            // Row 0: prefix gap sums of `b`, restricted to the band.
            prev[0] = 0.0;
            let mut acc = 0.0f64;
            for j in 1..=m.min(k) {
                acc += b[j - 1].ground_distance(&gap);
                prev[j] = acc;
            }
            let mut a_prefix = 0.0f64;
            let mut cells = 0u64;
            for (i, ai) in a.iter().enumerate() {
                let i = i + 1;
                a_prefix += ai.ground_distance(&gap);
                let lo = i.saturating_sub(k).max(1);
                let hi = m.min(i + k);
                curr[lo - 1] = if lo == 1 && i <= k {
                    a_prefix
                } else {
                    f64::INFINITY
                };
                let mut row_min = curr[lo - 1];
                for j in lo..=hi {
                    let bj = &b[j - 1];
                    let match_cost = prev[j - 1] + ai.ground_distance(bj);
                    let gap_a = prev[j] + ai.ground_distance(&gap);
                    let gap_b = curr[j - 1] + bj.ground_distance(&gap);
                    let value = match_cost.min(gap_a).min(gap_b);
                    curr[j] = value;
                    row_min = row_min.min(value);
                }
                cells += (hi + 1 - lo) as u64;
                if hi < m {
                    curr[hi + 1] = f64::INFINITY;
                }
                if prune && crate::counting::exceeds(row_min, tau) {
                    record_dp_cells(cells);
                    return None;
                }
                std::mem::swap(prev, curr);
            }
            record_dp_cells(cells);
            let d = prev[m];
            if d <= tau {
                Some(d)
            } else {
                None
            }
        })
    }

    fn uses_gap_sums(&self) -> bool {
        true
    }

    fn gap_sum_lower_bound(&self, sum_a: f64, sum_b: f64) -> f64 {
        erp_lower_bound_from_sums(sum_a, sum_b)
    }

    fn name(&self) -> &'static str {
        "ERP"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: true,
            requires_equal_lengths: false,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        // Aligning everything against the gap element costs at most
        // 2 * len * max ground distance; the optimum can only be smaller.
        E::max_ground_distance().map(|g| g * 2.0 * len as f64)
    }
}

impl<E: Element> AlignmentDistance<E> for Erp {
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment {
        let gap = E::gap();
        let n = a.len();
        let m = b.len();
        if n == 0 || m == 0 {
            let cost = <Self as SequenceDistance<E>>::distance(self, a, b);
            return Alignment::new(Vec::new(), cost);
        }
        let mut dp = vec![0.0f64; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        for i in 1..=n {
            dp[idx(i, 0)] = dp[idx(i - 1, 0)] + a[i - 1].ground_distance(&gap);
        }
        for j in 1..=m {
            dp[idx(0, j)] = dp[idx(0, j - 1)] + b[j - 1].ground_distance(&gap);
        }
        for i in 1..=n {
            for j in 1..=m {
                let match_cost = dp[idx(i - 1, j - 1)] + a[i - 1].ground_distance(&b[j - 1]);
                let gap_a = dp[idx(i - 1, j)] + a[i - 1].ground_distance(&gap);
                let gap_b = dp[idx(i, j - 1)] + b[j - 1].ground_distance(&gap);
                dp[idx(i, j)] = match_cost.min(gap_a).min(gap_b);
            }
        }
        let mut couplings = Vec::with_capacity(n + m);
        let mut i = n;
        let mut j = m;
        const EPS: f64 = 1e-9;
        while i > 0 || j > 0 {
            if i > 0 && j > 0 {
                let match_cost = dp[idx(i - 1, j - 1)] + a[i - 1].ground_distance(&b[j - 1]);
                if (dp[idx(i, j)] - match_cost).abs() <= EPS {
                    couplings.push(Coupling {
                        a_index: i - 1,
                        b_index: j - 1,
                    });
                    i -= 1;
                    j -= 1;
                    continue;
                }
            }
            if i > 0 {
                let gap_a = dp[idx(i - 1, j)] + a[i - 1].ground_distance(&gap);
                if (dp[idx(i, j)] - gap_a).abs() <= EPS {
                    couplings.push(Coupling {
                        a_index: i - 1,
                        b_index: j.saturating_sub(1),
                    });
                    i -= 1;
                    continue;
                }
            }
            // Gap in a: b[j-1] is matched to the gap element.
            couplings.push(Coupling {
                a_index: i.saturating_sub(1),
                b_index: j - 1,
            });
            j -= 1;
        }
        couplings.reverse();
        Alignment::new(couplings, dp[idx(n, m)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{Pitch, Point2D, Symbol};

    fn pitches(values: &[i16]) -> Vec<Pitch> {
        values.iter().map(|&v| Pitch(v)).collect()
    }

    #[test]
    fn equal_sequences_have_zero_distance() {
        let d = Erp::new();
        let a = pitches(&[3, 7, 2, 9]);
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn scalar_hand_computed_case() {
        let d = Erp::new();
        // a = [1, 2], b = [1, 2, 3]: best is to match 1-1, 2-2 and gap 3
        // with cost |3 - 0| = 3.
        let a = [1.0, 2.0];
        let b = [1.0, 2.0, 3.0];
        assert_eq!(SequenceDistance::<f64>::distance(&d, &a, &b), 3.0);
    }

    #[test]
    fn empty_sequence_costs_sum_of_gap_distances() {
        let d = Erp::new();
        let a: Vec<f64> = vec![];
        let b = [2.0, -3.0, 1.0];
        assert_eq!(d.distance(&a, &b), 6.0);
        assert_eq!(d.distance(&b, &a), 6.0);
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn symmetry_on_random_like_inputs() {
        let d = Erp::new();
        let a = pitches(&[0, 5, 11, 2, 8, 4]);
        let b = pitches(&[1, 5, 10, 2, 3]);
        assert_eq!(d.distance(&a, &b), d.distance(&b, &a));
    }

    #[test]
    fn triangle_inequality_spot_checks() {
        let d = Erp::new();
        let seqs = [
            pitches(&[0, 1, 2]),
            pitches(&[5, 5]),
            pitches(&[11, 0, 11, 0]),
            pitches(&[3]),
            pitches(&[]),
        ];
        for x in &seqs {
            for y in &seqs {
                for z in &seqs {
                    assert!(
                        d.distance(x, z) <= d.distance(x, y) + d.distance(y, z) + 1e-9,
                        "triangle violated for {x:?} {y:?} {z:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn erp_on_strings_uses_unit_gap_costs() {
        let d = Erp::new();
        let a: Vec<Symbol> = "ACGT".chars().map(Symbol::from_char).collect();
        let b: Vec<Symbol> = "AGT".chars().map(Symbol::from_char).collect();
        // Dropping 'C' costs ground(C, gap) = 1.
        assert_eq!(d.distance(&a, &b), 1.0);
    }

    #[test]
    fn erp_on_trajectories() {
        let d = Erp::new();
        let a = [Point2D::new(0.0, 0.0), Point2D::new(1.0, 0.0)];
        let b = [
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 0.0),
            Point2D::new(1.0, 1.0),
        ];
        // Gap of (1,1) costs its norm sqrt(2).
        assert!((d.distance(&a, &b) - 2.0_f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn alignment_cost_matches_distance_and_is_valid() {
        let d = Erp::new();
        let a = pitches(&[1, 4, 2, 8, 5, 7, 0, 3]);
        let b = pitches(&[2, 4, 1, 8, 8, 6, 1]);
        let al = d.alignment(&a, &b);
        assert!((al.cost - d.distance(&a, &b)).abs() < 1e-9);
        assert!(al.is_valid(a.len(), b.len()));
    }

    #[test]
    fn consistency_holds_empirically_for_every_subsequence_of_b() {
        // Definition 1 asks for *existence* of a cheap subsequence of `a`; we
        // first try the alignment projection (the construction used in the
        // paper's proof) and fall back to an exhaustive search, which also
        // covers the ERP-specific subtlety that the first coupling of a
        // restricted alignment is never charged as a gap.
        let d = Erp::new();
        let a = pitches(&[0, 2, 4, 5, 7, 9, 11, 9, 7, 5, 4, 2]);
        let b = pitches(&[0, 1, 4, 6, 7, 9, 10, 9, 8, 5, 3, 2, 0]);
        let full = d.distance(&a, &b);
        let al = d.alignment(&a, &b);
        for start in 0..b.len() {
            for end in (start + 1)..=b.len() {
                let sx = &b[start..end];
                let a_range = al.a_range_for_b_range(start..end).unwrap();
                let mut best = d.distance(&a[a_range], sx);
                if best > full {
                    for s in 0..a.len() {
                        for e in (s + 1)..=a.len() {
                            best = best.min(d.distance(&a[s..e], sx));
                        }
                    }
                }
                assert!(
                    best <= full + 1e-9,
                    "no subsequence of a within {full} of b[{start}..{end}] (best {best})"
                );
            }
        }
    }

    #[test]
    fn max_distance_bound_is_respected_for_pitches() {
        let d = Erp::new();
        let bound = SequenceDistance::<Pitch>::max_distance(&d, 4).unwrap();
        let a = pitches(&[11, 11, 11, 11]);
        let b = pitches(&[0, 0, 0, 0]);
        assert!(d.distance(&a, &b) <= bound);
    }
}
