//! Euclidean (L2) distance between equal-length sequences.

use ssr_sequence::Element;

use crate::counting::{pruning_enabled, record_dp_cells, record_lower_bound_prune};
use crate::traits::{DistanceProperties, SequenceDistance};

/// The Euclidean distance `δE(Q, X) = (Σ_m ground(q_m, x_m)²)^(1/2)`.
///
/// Defined only for sequences of equal length; pairs of different lengths are
/// reported as `f64::INFINITY` so they can never satisfy a similarity
/// threshold. For scalar elements this is the familiar L2 norm of the
/// difference vector; for symbolic elements the ground distance is 0/1 and the
/// Euclidean distance becomes the square root of the Hamming distance.
///
/// Euclidean distance is metric and consistent (Section 4): the distance of
/// corresponding subsequences sums a subset of the terms of the full distance.
/// It does not tolerate any temporal misalignment, which is why the framework
/// prefers ERP / discrete Fréchet / Levenshtein for retrieval (Section 5).
#[derive(Clone, Copy, Debug, Default)]
pub struct Euclidean;

impl Euclidean {
    /// Creates the Euclidean distance.
    pub fn new() -> Self {
        Euclidean
    }
}

impl<E: Element> SequenceDistance<E> for Euclidean {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    /// Running-sum early abandoning: the partial sum of squares only grows
    /// (IEEE addition of non-negative terms is monotone), and `sqrt` is
    /// monotone too, so `√partial > τ` already proves `distance > τ`. The
    /// cheap squared comparison `partial > τ²` only *gates* the exact `sqrt`
    /// check — it never abandons on its own, so boundary rounding of `τ²`
    /// cannot misclassify a pair.
    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        let prune = pruning_enabled();
        if a.len() != b.len() {
            let d = f64::INFINITY;
            if d <= tau {
                return Some(d);
            }
            if prune {
                record_lower_bound_prune();
            }
            return None;
        }
        let tau_sq = tau * tau;
        let mut sum_sq = 0.0f64;
        let mut cells = 0u64;
        for (x, y) in a.iter().zip(b.iter()) {
            let g = x.ground_distance(y);
            sum_sq += g * g;
            cells += 1;
            if prune && sum_sq > tau_sq && crate::counting::exceeds(sum_sq.sqrt(), tau) {
                record_dp_cells(cells);
                return None;
            }
        }
        record_dp_cells(cells);
        let d = sum_sq.sqrt();
        if d <= tau {
            Some(d)
        } else {
            None
        }
    }

    fn length_lower_bound(&self, a_len: usize, b_len: usize) -> f64 {
        if a_len != b_len {
            f64::INFINITY
        } else {
            0.0
        }
    }

    fn name(&self) -> &'static str {
        "Euclidean"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: false,
            requires_equal_lengths: true,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        E::max_ground_distance().map(|g| g * (len as f64).sqrt())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{Pitch, Point2D, Symbol};

    #[test]
    fn scalar_euclidean_matches_hand_computation() {
        let a = [0.0, 3.0, 1.0];
        let b = [4.0, 3.0, 4.0];
        let d = Euclidean::new();
        assert!((SequenceDistance::<f64>::distance(&d, &a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn unequal_lengths_are_infinitely_far() {
        let d = Euclidean::new();
        let a = [1.0, 2.0];
        let b = [1.0];
        assert!(SequenceDistance::<f64>::distance(&d, &a, &b).is_infinite());
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let d = Euclidean::new();
        let a: Vec<Pitch> = [1, 5, 9, 2].iter().map(|&p| Pitch(p)).collect();
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn symbolic_euclidean_is_sqrt_of_hamming() {
        let d = Euclidean::new();
        let a: Vec<Symbol> = "ACGT".chars().map(Symbol::from_char).collect();
        let b: Vec<Symbol> = "AGGA".chars().map(Symbol::from_char).collect();
        assert!((d.distance(&a, &b) - (2.0_f64).sqrt()).abs() < 1e-12);
    }

    #[test]
    fn point_sequences_use_ground_euclidean() {
        let d = Euclidean::new();
        let a = [Point2D::new(0.0, 0.0), Point2D::new(1.0, 1.0)];
        let b = [Point2D::new(3.0, 4.0), Point2D::new(1.0, 1.0)];
        assert!((d.distance(&a, &b) - 5.0).abs() < 1e-12);
    }

    #[test]
    fn consistency_holds_for_corresponding_subsequences() {
        // delta(SQ, SX) <= delta(Q, X) when SQ, SX are the same index range.
        let d = Euclidean::new();
        let a = [1.0, 2.0, 5.0, -3.0, 0.5];
        let b = [0.0, 2.5, 5.0, -1.0, 4.5];
        let full = SequenceDistance::<f64>::distance(&d, &a, &b);
        for start in 0..a.len() {
            for end in (start + 1)..=a.len() {
                let sub = SequenceDistance::<f64>::distance(&d, &a[start..end], &b[start..end]);
                assert!(sub <= full + 1e-12);
            }
        }
    }

    #[test]
    fn max_distance_bound_is_respected() {
        let d = Euclidean::new();
        let bound = SequenceDistance::<Symbol>::max_distance(&d, 4).unwrap();
        let a: Vec<Symbol> = "AAAA".chars().map(Symbol::from_char).collect();
        let b: Vec<Symbol> = "CCCC".chars().map(Symbol::from_char).collect();
        assert!(d.distance(&a, &b) <= bound + 1e-12);
    }
}
