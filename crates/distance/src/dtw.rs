//! Dynamic Time Warping (DTW).

use ssr_sequence::Element;

use crate::alignment::{Alignment, Coupling};
use crate::counting::{pruning_enabled, record_dp_cells};
use crate::traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
use crate::workspace::DistanceWorkspace;

/// Dynamic Time Warping: the minimum, over all warping paths, of the sum of
/// ground distances of coupled elements.
///
/// DTW tolerates arbitrary temporal misalignment and is **consistent**
/// (Section 4 of the paper) but it is **not a metric**: it violates the
/// triangle inequality, so it cannot be used with the Reference Net or any
/// other metric index. The framework's filtering step (which requires only
/// consistency) still applies to DTW when paired with a linear scan; this
/// implementation exists both for that configuration and as a reference point
/// in the distance benchmarks.
///
/// [`SequenceDistance::distance_within`] adds row-minimum early abandoning:
/// every warping path crosses every row of the DP matrix, and accumulated
/// costs never decrease along a path (IEEE addition of non-negative costs is
/// monotone), so a row whose minimum exceeds `τ` proves the final value does
/// too. There is no band — constraining the warping path would change DTW's
/// semantics — and no cheap lower bound from lengths, since DTW can couple
/// sequences of very different lengths at zero cost.
#[derive(Clone, Copy, Debug, Default)]
pub struct Dtw;

impl Dtw {
    /// Creates the DTW distance.
    pub fn new() -> Self {
        Dtw
    }
}

impl<E: Element> SequenceDistance<E> for Dtw {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        if a.is_empty() && b.is_empty() {
            return if 0.0 <= tau { Some(0.0) } else { None };
        }
        if a.is_empty() || b.is_empty() {
            let d = f64::INFINITY;
            return if d <= tau { Some(d) } else { None };
        }
        let prune = pruning_enabled();
        let m = b.len();
        DistanceWorkspace::with(|ws| {
            let (prev, curr) = ws.f64_rows(m + 1, f64::INFINITY);
            prev[0] = 0.0;
            let mut cells = 0u64;
            for ai in a.iter() {
                curr[0] = f64::INFINITY;
                let mut row_min = f64::INFINITY;
                for (j, bj) in b.iter().enumerate() {
                    let cost = ai.ground_distance(bj);
                    let best_prev = prev[j].min(prev[j + 1]).min(curr[j]);
                    let value = cost + best_prev;
                    curr[j + 1] = value;
                    row_min = row_min.min(value);
                }
                cells += m as u64;
                if prune && crate::counting::exceeds(row_min, tau) {
                    record_dp_cells(cells);
                    return None;
                }
                std::mem::swap(prev, curr);
            }
            record_dp_cells(cells);
            let d = prev[m];
            if d <= tau {
                Some(d)
            } else {
                None
            }
        })
    }

    fn name(&self) -> &'static str {
        "DTW"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: false,
            consistent: true,
            allows_time_shift: true,
            requires_equal_lengths: false,
        }
    }

    fn max_distance(&self, len: usize) -> Option<f64> {
        // A warping path between sequences of length <= len has at most
        // 2*len - 1 couplings, each costing at most the ground bound.
        E::max_ground_distance().map(|g| g * (2 * len).saturating_sub(1) as f64)
    }
}

impl<E: Element> AlignmentDistance<E> for Dtw {
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment {
        if a.is_empty() || b.is_empty() {
            let cost = if a.is_empty() && b.is_empty() {
                0.0
            } else {
                f64::INFINITY
            };
            return Alignment::new(Vec::new(), cost);
        }
        let n = a.len();
        let m = b.len();
        let mut dp = vec![f64::INFINITY; (n + 1) * (m + 1)];
        let idx = |i: usize, j: usize| i * (m + 1) + j;
        dp[idx(0, 0)] = 0.0;
        for i in 1..=n {
            for j in 1..=m {
                let cost = a[i - 1].ground_distance(&b[j - 1]);
                let best = dp[idx(i - 1, j - 1)]
                    .min(dp[idx(i - 1, j)])
                    .min(dp[idx(i, j - 1)]);
                dp[idx(i, j)] = cost + best;
            }
        }
        let mut couplings = Vec::with_capacity(n + m);
        let mut i = n;
        let mut j = m;
        while i >= 1 && j >= 1 {
            couplings.push(Coupling {
                a_index: i - 1,
                b_index: j - 1,
            });
            if i == 1 && j == 1 {
                break;
            }
            let diag = if i > 1 && j > 1 {
                dp[idx(i - 1, j - 1)]
            } else {
                f64::INFINITY
            };
            let up = if i > 1 {
                dp[idx(i - 1, j)]
            } else {
                f64::INFINITY
            };
            let left = if j > 1 {
                dp[idx(i, j - 1)]
            } else {
                f64::INFINITY
            };
            if diag <= up && diag <= left {
                i -= 1;
                j -= 1;
            } else if up <= left {
                i -= 1;
            } else {
                j -= 1;
            }
        }
        couplings.reverse();
        Alignment::new(couplings, dp[idx(n, m)])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::Pitch;

    fn pitches(values: &[i16]) -> Vec<Pitch> {
        values.iter().map(|&v| Pitch(v)).collect()
    }

    #[test]
    fn paper_example_repeated_values_have_zero_distance() {
        // "sequence 111222333 according to DTW has a distance of 0 to 123"
        let d = Dtw::new();
        let long = pitches(&[1, 1, 1, 2, 2, 2, 3, 3, 3]);
        let short = pitches(&[1, 2, 3]);
        assert_eq!(d.distance(&long, &short), 0.0);
    }

    #[test]
    fn simple_scalar_case() {
        let d = Dtw::new();
        let a = [1.0, 2.0, 3.0];
        let b = [1.0, 2.0, 4.0];
        assert_eq!(SequenceDistance::<f64>::distance(&d, &a, &b), 1.0);
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let d = Dtw::new();
        let a = pitches(&[0, 4, 7, 4, 0]);
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn empty_handling() {
        let d = Dtw::new();
        let empty: Vec<f64> = vec![];
        assert_eq!(d.distance(&empty, &empty), 0.0);
        assert!(d.distance(&empty, &[1.0]).is_infinite());
    }

    #[test]
    fn dtw_is_not_a_metric_triangle_violation_exists() {
        // Known counterexample: DTW violates the triangle inequality because a
        // short "bridge" sequence can warp cheaply onto both extremes.
        let d = Dtw::new();
        let a = [0.0, 0.0, 0.0, 0.0];
        let b = [0.0, 2.0];
        let c = [2.0, 2.0, 2.0, 2.0];
        let dab = SequenceDistance::<f64>::distance(&d, &a, &b);
        let dbc = SequenceDistance::<f64>::distance(&d, &b, &c);
        let dac = SequenceDistance::<f64>::distance(&d, &a, &c);
        assert!(
            dac > dab + dbc,
            "expected violation, got d(a,c)={dac} <= {dab}+{dbc}"
        );
        assert!(!SequenceDistance::<f64>::is_metric(&d));
    }

    #[test]
    fn alignment_cost_matches_distance_and_is_valid() {
        let d = Dtw::new();
        let a = pitches(&[1, 3, 4, 9, 8, 2, 1, 5, 7, 3]);
        let b = pitches(&[2, 5, 4, 7, 8, 3, 1, 4, 2]);
        let al = d.alignment(&a, &b);
        assert!((al.cost - d.distance(&a, &b)).abs() < 1e-9);
        assert!(al.is_valid(a.len(), b.len()));
    }

    #[test]
    fn consistency_holds_empirically_via_alignment_projection() {
        let d = Dtw::new();
        let a = pitches(&[0, 2, 4, 5, 7, 9, 11, 9, 7, 5, 4, 2]);
        let b = pitches(&[0, 1, 4, 6, 7, 9, 10, 9, 8, 5, 3, 2, 0]);
        let full = d.distance(&a, &b);
        let al = d.alignment(&a, &b);
        for start in 0..b.len() {
            for end in (start + 1)..=b.len() {
                let a_range = al.a_range_for_b_range(start..end).unwrap();
                let sub = d.distance(&a[a_range], &b[start..end]);
                assert!(sub <= full + 1e-9);
            }
        }
    }
}
