//! Discrete Fréchet distance (Eiter & Mannila, 1994).

use ssr_sequence::Element;

use crate::alignment::{Alignment, Coupling};
use crate::counting::{pruning_enabled, record_dp_cells};
use crate::traits::{AlignmentDistance, DistanceProperties, SequenceDistance};
use crate::workspace::DistanceWorkspace;

/// The discrete Fréchet distance: the minimum, over all couplings (warping
/// paths), of the **maximum** ground distance of any coupled pair.
///
/// Intuitively the "dog-leash" distance restricted to the vertices of two
/// polygonal curves. It is a metric, it is consistent (the maximum over a
/// subset of couplings cannot exceed the maximum over all of them), and it
/// tolerates temporal misalignment — which is why the paper pairs it with ERP
/// for the SONGS and TRAJ experiments.
///
/// [`SequenceDistance::distance_within`] adds reachability early abandoning:
/// reach values aggregate by `max`, so they never decrease along a coupling,
/// every coupling crosses every row, and a row whose minimum reach exceeds
/// `τ` proves the final bottleneck cost does too. The check is exact for any
/// ground distance (`max` involves no rounding at all).
#[derive(Clone, Copy, Debug, Default)]
pub struct DiscreteFrechet;

impl DiscreteFrechet {
    /// Creates the discrete Fréchet distance.
    pub fn new() -> Self {
        DiscreteFrechet
    }
}

impl<E: Element> SequenceDistance<E> for DiscreteFrechet {
    fn distance(&self, a: &[E], b: &[E]) -> f64 {
        self.distance_within(a, b, f64::INFINITY)
            .expect("every distance is within an infinite threshold")
    }

    fn distance_within(&self, a: &[E], b: &[E], tau: f64) -> Option<f64> {
        if a.is_empty() && b.is_empty() {
            return if 0.0 <= tau { Some(0.0) } else { None };
        }
        if a.is_empty() || b.is_empty() {
            let d = f64::INFINITY;
            return if d <= tau { Some(d) } else { None };
        }
        let prune = pruning_enabled();
        let m = b.len();
        DistanceWorkspace::with(|ws| {
            let (prev, curr) = ws.f64_rows(m, f64::INFINITY);
            let mut cells = 0u64;
            for (i, ai) in a.iter().enumerate() {
                let mut row_min = f64::INFINITY;
                for (j, bj) in b.iter().enumerate() {
                    let cost = ai.ground_distance(bj);
                    let reach = if i == 0 && j == 0 {
                        cost
                    } else {
                        let mut best = f64::INFINITY;
                        if i > 0 {
                            best = best.min(prev[j]);
                        }
                        if j > 0 {
                            best = best.min(curr[j - 1]);
                        }
                        if i > 0 && j > 0 {
                            best = best.min(prev[j - 1]);
                        }
                        best.max(cost)
                    };
                    curr[j] = reach;
                    row_min = row_min.min(reach);
                }
                cells += m as u64;
                if prune && crate::counting::exceeds(row_min, tau) {
                    record_dp_cells(cells);
                    return None;
                }
                std::mem::swap(prev, curr);
            }
            record_dp_cells(cells);
            let d = prev[m - 1];
            if d <= tau {
                Some(d)
            } else {
                None
            }
        })
    }

    fn name(&self) -> &'static str {
        "DiscreteFrechet"
    }

    fn properties(&self) -> DistanceProperties {
        DistanceProperties {
            metric: true,
            consistent: true,
            allows_time_shift: true,
            requires_equal_lengths: false,
        }
    }

    fn max_distance(&self, _len: usize) -> Option<f64> {
        // The maximum coupling cost is bounded by the ground-distance bound
        // irrespective of sequence length.
        E::max_ground_distance()
    }
}

impl<E: Element> AlignmentDistance<E> for DiscreteFrechet {
    fn alignment(&self, a: &[E], b: &[E]) -> Alignment {
        if a.is_empty() || b.is_empty() {
            let cost = if a.is_empty() && b.is_empty() {
                0.0
            } else {
                f64::INFINITY
            };
            return Alignment::new(Vec::new(), cost);
        }
        let n = a.len();
        let m = b.len();
        let mut dp = vec![f64::INFINITY; n * m];
        let idx = |i: usize, j: usize| i * m + j;
        for i in 0..n {
            for j in 0..m {
                let cost = a[i].ground_distance(&b[j]);
                dp[idx(i, j)] = if i == 0 && j == 0 {
                    cost
                } else {
                    let mut best = f64::INFINITY;
                    if i > 0 {
                        best = best.min(dp[idx(i - 1, j)]);
                    }
                    if j > 0 {
                        best = best.min(dp[idx(i, j - 1)]);
                    }
                    if i > 0 && j > 0 {
                        best = best.min(dp[idx(i - 1, j - 1)]);
                    }
                    best.max(cost)
                };
            }
        }
        // Greedy traceback: from (n-1, m-1) repeatedly move to the predecessor
        // with the smallest reach value.
        let mut couplings = Vec::with_capacity(n + m);
        let mut i = n - 1;
        let mut j = m - 1;
        loop {
            couplings.push(Coupling {
                a_index: i,
                b_index: j,
            });
            if i == 0 && j == 0 {
                break;
            }
            let diag = if i > 0 && j > 0 {
                dp[idx(i - 1, j - 1)]
            } else {
                f64::INFINITY
            };
            let up = if i > 0 {
                dp[idx(i - 1, j)]
            } else {
                f64::INFINITY
            };
            let left = if j > 0 {
                dp[idx(i, j - 1)]
            } else {
                f64::INFINITY
            };
            if diag <= up && diag <= left {
                i -= 1;
                j -= 1;
            } else if up <= left {
                i -= 1;
            } else {
                j -= 1;
            }
        }
        couplings.reverse();
        Alignment::new(couplings, dp[idx(n - 1, m - 1)])
    }

    fn aggregates_by_sum(&self) -> bool {
        false
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ssr_sequence::{Pitch, Point2D};

    fn pitches(values: &[i16]) -> Vec<Pitch> {
        values.iter().map(|&v| Pitch(v)).collect()
    }

    #[test]
    fn identical_sequences_have_zero_distance() {
        let d = DiscreteFrechet::new();
        let a = pitches(&[0, 4, 7, 11]);
        assert_eq!(d.distance(&a, &a), 0.0);
    }

    #[test]
    fn repeated_elements_do_not_increase_distance() {
        let d = DiscreteFrechet::new();
        let long = pitches(&[1, 1, 1, 2, 2, 2, 3, 3, 3]);
        let short = pitches(&[1, 2, 3]);
        assert_eq!(d.distance(&long, &short), 0.0);
    }

    #[test]
    fn distance_is_the_bottleneck_coupling_cost() {
        let d = DiscreteFrechet::new();
        // b's middle element (5.0) must couple with something; the closest
        // element of a is 2.0, so the bottleneck cost is 3.0.
        let a = [0.0, 1.0, 2.0];
        let b = [0.0, 5.0, 2.0];
        assert_eq!(SequenceDistance::<f64>::distance(&d, &a, &b), 3.0);
    }

    #[test]
    fn trajectory_example() {
        let d = DiscreteFrechet::new();
        let a = [
            Point2D::new(0.0, 0.0),
            Point2D::new(1.0, 0.0),
            Point2D::new(2.0, 0.0),
        ];
        let b = [
            Point2D::new(0.0, 1.0),
            Point2D::new(1.0, 1.0),
            Point2D::new(2.0, 1.0),
        ];
        assert!((d.distance(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_handling() {
        let d = DiscreteFrechet::new();
        let empty: Vec<f64> = vec![];
        assert_eq!(d.distance(&empty, &empty), 0.0);
        assert!(d.distance(&empty, &[1.0]).is_infinite());
    }

    #[test]
    fn symmetry_and_triangle_inequality_spot_checks() {
        let d = DiscreteFrechet::new();
        let seqs = [
            pitches(&[0, 2, 4]),
            pitches(&[1, 1, 1, 1]),
            pitches(&[11, 0]),
            pitches(&[5]),
        ];
        for x in &seqs {
            for y in &seqs {
                assert_eq!(d.distance(x, y), d.distance(y, x));
                for z in &seqs {
                    assert!(d.distance(x, z) <= d.distance(x, y) + d.distance(y, z) + 1e-12);
                }
            }
        }
    }

    #[test]
    fn bounded_by_max_ground_distance() {
        let d = DiscreteFrechet::new();
        let a = pitches(&[0, 0, 0]);
        let b = pitches(&[11, 11]);
        assert_eq!(d.distance(&a, &b), 11.0);
        assert_eq!(SequenceDistance::<Pitch>::max_distance(&d, 100), Some(11.0));
    }

    #[test]
    fn alignment_cost_matches_distance_and_is_valid() {
        let d = DiscreteFrechet::new();
        let a = pitches(&[1, 3, 4, 9, 8, 2, 1, 5]);
        let b = pitches(&[2, 5, 4, 7, 8, 3, 1]);
        let al = d.alignment(&a, &b);
        assert!((al.cost - d.distance(&a, &b)).abs() < 1e-9);
        assert!(al.is_valid(a.len(), b.len()));
        assert!(!AlignmentDistance::<Pitch>::aggregates_by_sum(&d));
    }

    #[test]
    fn consistency_holds_empirically_via_alignment_projection() {
        let d = DiscreteFrechet::new();
        let a = pitches(&[0, 2, 4, 5, 7, 9, 11, 9, 7, 5, 4, 2]);
        let b = pitches(&[0, 1, 4, 6, 7, 9, 10, 9, 8, 5, 3, 2, 0]);
        let full = d.distance(&a, &b);
        let al = d.alignment(&a, &b);
        for start in 0..b.len() {
            for end in (start + 1)..=b.len() {
                let a_range = al.a_range_for_b_range(start..end).unwrap();
                let sub = d.distance(&a[a_range], &b[start..end]);
                assert!(sub <= full + 1e-9);
            }
        }
    }
}
