//! Snapshot robustness: round-trips across all four datagen element types
//! (DNA, proteins, songs, trajectories) and a corruption suite — truncation
//! at every section boundary (and at every byte of a small snapshot) and
//! single-byte flips in every region. Damaged input must always yield a
//! typed [`StorageError`], never a panic, and a clean round-trip must be
//! query-parity-identical.

use ssr_core::{FrameworkConfig, QueryOutcome, SubsequenceDatabase, SubsequenceMatch};
use ssr_datagen::{
    generate_dna, generate_proteins, generate_songs, generate_trajectories, plant_query, DnaConfig,
    PitchMutator, PointMutator, ProteinConfig, QueryConfig, QueryMutator, SongsConfig,
    SymbolMutator, TrajConfig,
};
use ssr_distance::{DiscreteFrechet, Erp, Levenshtein, SequenceDistance};
use ssr_sequence::{Element, SequenceDataset, Symbol};
use ssr_storage::{Snapshot, StorableElement, StorageError};

const LAMBDA: usize = 12;

fn build<E, D>(dataset: SequenceDataset<E>, distance: D) -> SubsequenceDatabase<E, D>
where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
{
    SubsequenceDatabase::builder(FrameworkConfig::new(LAMBDA).with_max_shift(1), distance)
        .add_dataset(&dataset)
        .build()
        .expect("generated dataset builds")
}

/// Builds, snapshots, reloads and checks Type I + Type II query parity
/// (results AND stats) on a planted query.
fn assert_roundtrip_parity<E, D, M>(
    dataset: SequenceDataset<E>,
    distance_factory: impl Fn() -> D,
    mutator: M,
    epsilon: f64,
) where
    E: Element + StorableElement + Send + Sync,
    D: SequenceDistance<E>,
    M: QueryMutator<E>,
{
    let db = build(dataset, distance_factory());
    let loaded =
        SubsequenceDatabase::<E, D>::from_snapshot_bytes(db.snapshot_bytes(), distance_factory())
            .expect("snapshot loads");

    let planted = plant_query(
        db.dataset(),
        &mutator,
        &QueryConfig {
            planted_len: 2 * LAMBDA,
            context_len: LAMBDA / 2,
            perturbation_rate: 0.05,
            seed: 99,
        },
    )
    .expect("dataset large enough to plant a query");

    let a: QueryOutcome<Vec<SubsequenceMatch>> = db.query_type1(&planted.query, epsilon);
    let b = loaded.query_type1(&planted.query, epsilon);
    assert_eq!(a.result, b.result);
    assert_eq!(a.stats, b.stats);

    let a = db.query_type2(&planted.query, epsilon);
    let b = loaded.query_type2(&planted.query, epsilon);
    assert!(a.result.is_some(), "planted query should be retrievable");
    assert_eq!(a.result, b.result);
    assert_eq!(a.stats, b.stats);
}

#[test]
fn dna_snapshots_roundtrip_with_query_parity() {
    let dataset = generate_dna(&DnaConfig {
        num_sequences: 8,
        min_len: 40,
        max_len: 80,
        seed: 11,
        ..Default::default()
    });
    assert_roundtrip_parity(dataset, Levenshtein::new, SymbolMutator, 2.0);
}

#[test]
fn protein_snapshots_roundtrip_with_query_parity() {
    let dataset = generate_proteins(&ProteinConfig::sized_for_windows(40, LAMBDA / 2, 12));
    assert_roundtrip_parity(dataset, Levenshtein::new, SymbolMutator, 3.0);
}

#[test]
fn songs_snapshots_roundtrip_with_query_parity() {
    let dataset = generate_songs(&SongsConfig::sized_for_windows(40, LAMBDA / 2, 13));
    assert_roundtrip_parity(dataset, Erp::new, PitchMutator, 6.0);
}

#[test]
fn trajectory_snapshots_roundtrip_with_query_parity() {
    let dataset = generate_trajectories(&TrajConfig::sized_for_windows(40, LAMBDA / 2, 14));
    assert_roundtrip_parity(dataset, DiscreteFrechet::new, PointMutator::default(), 2.0);
}

/// A small proteins snapshot for the corruption battery.
fn small_snapshot_bytes() -> Vec<u8> {
    let dataset = generate_proteins(&ProteinConfig::sized_for_windows(10, LAMBDA / 2, 21));
    build(dataset, Levenshtein::new()).snapshot_bytes()
}

fn try_load(bytes: Vec<u8>) -> Result<SubsequenceDatabase<Symbol, Levenshtein>, StorageError> {
    SubsequenceDatabase::from_snapshot_bytes(bytes, Levenshtein::new())
}

#[test]
fn truncation_at_every_section_boundary_is_a_typed_error() {
    let bytes = small_snapshot_bytes();
    let snapshot = Snapshot::from_bytes(bytes.clone()).unwrap();
    let mut boundaries: Vec<usize> = snapshot
        .sections()
        .iter()
        .flat_map(|s| [s.offset as usize, (s.offset + s.len) as usize])
        .collect();
    boundaries.push(0);
    boundaries.push(8); // after magic
    boundaries.push(16); // after version + table length
    boundaries.sort_unstable();
    boundaries.dedup();
    for boundary in boundaries {
        if boundary == bytes.len() {
            continue;
        }
        let err = try_load(bytes[..boundary].to_vec())
            .err()
            .unwrap_or_else(|| panic!("truncation at byte {boundary} must fail"));
        // Typed, never a panic; the display must render too.
        let _ = err.to_string();
    }
}

#[test]
fn truncation_at_every_byte_is_a_typed_error() {
    let bytes = small_snapshot_bytes();
    for cut in 0..bytes.len() {
        let result = try_load(bytes[..cut].to_vec());
        assert!(result.is_err(), "prefix of {cut} bytes unexpectedly loaded");
    }
}

#[test]
fn single_byte_flips_in_every_section_are_checksum_errors() {
    let bytes = small_snapshot_bytes();
    let snapshot = Snapshot::from_bytes(bytes.clone()).unwrap();
    for entry in snapshot.sections() {
        let positions = [
            entry.offset as usize,
            entry.offset as usize + entry.len as usize / 2,
            entry.offset as usize + entry.len as usize - 1,
        ];
        for &pos in &positions {
            let mut damaged = bytes.clone();
            damaged[pos] ^= 0x20;
            let err = try_load(damaged)
                .err()
                .unwrap_or_else(|| panic!("flip in '{}' at byte {pos} must fail", entry.name));
            assert!(
                matches!(err, StorageError::ChecksumMismatch { ref section } if *section == entry.name),
                "flip in '{}' at byte {pos} gave {err:?}",
                entry.name
            );
        }
    }
}

#[test]
fn header_corruption_is_a_typed_error() {
    let bytes = small_snapshot_bytes();

    let mut bad_magic = bytes.clone();
    bad_magic[0] ^= 0xFF;
    assert!(matches!(try_load(bad_magic), Err(StorageError::BadMagic)));

    // A flip anywhere in the section table is caught by the header CRC.
    let mut bad_table = bytes.clone();
    bad_table[20] ^= 0x01;
    assert!(matches!(
        try_load(bad_table),
        Err(StorageError::HeaderChecksumMismatch)
    ));

    // Flipping every single byte of the file must never panic and never load.
    for i in 0..bytes.len() {
        let mut damaged = bytes.clone();
        damaged[i] ^= 0x08;
        assert!(try_load(damaged).is_err(), "flip at byte {i} loaded");
    }
}

#[test]
fn non_snapshot_files_are_rejected() {
    assert!(matches!(
        try_load(Vec::new()),
        Err(StorageError::Truncated { .. })
    ));
    assert!(matches!(
        try_load(b"this is not a snapshot file at all".to_vec()),
        Err(StorageError::BadMagic)
    ));
}
