//! Seeded chaos schedules: deterministic fault injection against the live
//! database and the query server, asserting the two invariants that matter —
//! **zero acked-append loss** (every operation that returned `Ok` survives a
//! crash) and **bit-identical recovery** (the reopened state equals an
//! uninterrupted reference, byte for byte through `snapshot_bytes()`).
//!
//! Each schedule is a pure function of its seed: the `prob-P-SEED` trigger
//! hashes the per-site hit counter, so a re-run fires the same faults at the
//! same operations. The failpoint registry is process-global — every test
//! here owns it through an [`ssr_fault::FailpointGuard`], which both
//! serializes the armed section and disarms on drop, and the armed tests
//! live here (not in the lib's unit tests) so they cannot fire inside an
//! unrelated threaded test.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use ssr_core::serve::{Client, ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response, WireError};
use ssr_core::{ClientConfig, FrameworkConfig, LiveDatabase, SubsequenceDatabase, WireClient};
use ssr_distance::Levenshtein;
use ssr_fault::FailpointGuard;
use ssr_sequence::{Sequence, Symbol};

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

fn seq(text: &str) -> Sequence<Symbol> {
    Sequence::new(sym(text))
}

fn scratch_path(stem: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("ssr-chaos-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir.join(format!(
        "{stem}-{}.ssr",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

fn initial_database() -> SubsequenceDatabase<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(seq("ACGTACGTACGTACGTACGT"))
        .add_sequence(seq("TTTTCCCCGGGGAAAATTTT"))
        .build()
        .expect("seed dataset builds")
}

/// The appends a schedule attempts, in order. Long enough that a permille
/// probability in the hundreds reliably fires at least once per seed.
const APPEND_SCRIPT: &[&str] = &[
    "GATTACAGATTACAGATTACA",
    "CGCGCGCGATATATATCGCG",
    "AAAACCCCGGGGTTTTAAAA",
    "TTGGTTGGTTGGTTGG",
    "ACACACACACACACACACAC",
    "GGGGAAAAGGGGAAAAGGGG",
    "CATCATCATCATCATCAT",
    "TGCATGCATGCATGCATGCA",
    "AAGGTTCCAAGGTTCCAAGG",
    "CCCCCCCCGGGGGGGGTTTT",
];

/// Runs the append script with `wal.append` armed to fail probabilistically
/// under `seed`, crashes (drops the writer), reopens, and demands the
/// recovered state equal a reference holding exactly the acked appends.
/// Returns (acked, injected) so the caller can check the schedule shape.
fn run_torn_wal_schedule(guard: &FailpointGuard, seed: u64, permille: u32) -> (usize, u64) {
    let path = scratch_path(&format!("torn-wal-{seed}"));
    let mut live = LiveDatabase::create(&path, initial_database()).expect("create succeeds");
    let initial_snapshot = std::fs::read(&path).expect("initial snapshot readable");
    let injected_before = ssr_fault::injected_total();

    // The reference mirrors the open path: load the initial snapshot, then
    // apply in memory exactly the operations the WAL acked.
    let mut reference =
        SubsequenceDatabase::from_snapshot_bytes(initial_snapshot, Levenshtein::new())
            .expect("initial snapshot loads");

    guard
        .rearm(&format!("wal.append=prob-{permille}-{seed}:error"))
        .unwrap();
    let mut acked = 0usize;
    for text in APPEND_SCRIPT {
        match live.append_sequence(seq(text)) {
            Ok(_) => {
                reference.append_sequence(seq(text));
                acked += 1;
            }
            Err(err) => assert!(
                err.to_string().contains("failpoint 'wal.append'"),
                "only injected failures are expected: {err}"
            ),
        }
    }
    // Finale: tear the very last append mid-frame. The torn tail must be
    // dropped on recovery without touching the acked records before it.
    guard.rearm("wal.append=nth-1:partial-7").unwrap();
    let torn = live.append_sequence(seq("TORNTORNTORNTORN"));
    guard.disarm();
    assert!(torn.is_err(), "the torn append must not be acked");

    let wal_path = live.wal_path().to_path_buf();
    drop(live); // the crash

    let reopened =
        LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).expect("reopen succeeds");
    assert_eq!(reopened.pending_ops(), acked, "zero acked-append loss");
    assert_eq!(
        reopened.database().snapshot_bytes(),
        reference.snapshot_bytes(),
        "recovered state must be bit-identical to the acked reference"
    );

    let injected = ssr_fault::injected_total() - injected_before;
    assert_eq!(
        injected as usize,
        (APPEND_SCRIPT.len() - acked) + 1,
        "every non-acked append (plus the torn finale) was an injection"
    );
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
    (acked, injected)
}

#[test]
fn torn_wal_schedules_lose_no_acked_append_under_any_seed() {
    let guard = FailpointGuard::disarmed();
    // Distinct seeds produce distinct-but-deterministic schedules; each must
    // fire at least once and ack at least once for the assertion to bite.
    let mut shapes = Vec::new();
    for seed in [7, 23, 5151] {
        let (acked, injected) = run_torn_wal_schedule(&guard, seed, 350);
        assert!(acked > 0, "seed {seed}: schedule acked nothing");
        assert!(injected > 1, "seed {seed}: schedule never fired mid-script");
        shapes.push((acked, injected));
    }
    // Determinism: replaying a seed replays its exact schedule.
    let (acked, injected) = run_torn_wal_schedule(&guard, 7, 350);
    assert_eq!((acked, injected), shapes[0], "seed 7 must replay exactly");
}

#[test]
fn compact_window_crash_never_double_applies() {
    let guard = FailpointGuard::disarmed();
    let path = scratch_path("compact-window");
    let mut live = LiveDatabase::create(&path, initial_database()).expect("create succeeds");
    for text in &APPEND_SCRIPT[..4] {
        live.append_sequence(seq(text)).expect("append acks");
    }
    let folded = live.database().snapshot_bytes();

    // Crash in the compaction window: the new snapshot is durably renamed
    // into place, the WAL still carries the (now stale) log bound to the
    // old snapshot.
    guard.rearm("live.compact=nth-1:error").unwrap();
    let err = live.compact().expect_err("the window failpoint fires");
    guard.disarm();
    assert!(err.to_string().contains("failpoint 'live.compact'"));
    let wal_path = live.wal_path().to_path_buf();
    drop(live); // the crash

    let reopened =
        LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).expect("reopen succeeds");
    assert_eq!(
        reopened.pending_ops(),
        0,
        "the stale log must be discarded, not double-applied"
    );
    assert_eq!(reopened.database().snapshot_bytes(), folded);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

/// Kill-and-reopen torture: across several seeds, interleave appends and
/// injected `wal.reset` / `wal.append` failures with compactions, crash
/// after each stretch and reopen, demanding parity every time.
#[test]
fn kill_and_reopen_cycles_preserve_parity_across_seeds() {
    let guard = FailpointGuard::disarmed();
    for seed in [101u64, 202, 303] {
        let path = scratch_path(&format!("kill-reopen-{seed}"));
        let mut live = LiveDatabase::create(&path, initial_database()).expect("create succeeds");
        let mut reference = SubsequenceDatabase::from_snapshot_bytes(
            std::fs::read(&path).expect("initial snapshot readable"),
            Levenshtein::new(),
        )
        .expect("initial snapshot loads");
        let mut wal_path = live.wal_path().to_path_buf();

        for (cycle, chunk) in APPEND_SCRIPT.chunks(3).enumerate() {
            guard
                .rearm(&format!(
                    "wal.append=prob-250-{}:error;wal.reset=prob-500-{}:error",
                    seed + cycle as u64,
                    seed ^ cycle as u64
                ))
                .unwrap();
            for text in chunk {
                if live.append_sequence(seq(text)).is_ok() {
                    reference.append_sequence(seq(text));
                }
            }
            // A compaction may fail at the reset (after the snapshot landed)
            // — either way the state must survive the kill below. No append
            // follows a failed compact on the same writer: its log is stale.
            let _ = live.compact();
            guard.disarm();
            wal_path = live.wal_path().to_path_buf();
            drop(live); // kill
            live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new())
                .unwrap_or_else(|e| panic!("seed {seed} cycle {cycle}: reopen failed: {e}"));
            assert_eq!(
                live.database().snapshot_bytes(),
                reference.snapshot_bytes(),
                "seed {seed} cycle {cycle}: reopen diverged"
            );
        }
        drop(live);
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&wal_path);
    }
}

fn build_server_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
        .add_sequence(seq("ACACACACACACACACACACACACACACACAC"))
        .build()
        .expect("server database builds")
}

fn query_request() -> Request<Symbol> {
    Request::Query {
        spec: QuerySpec::Type1 { epsilon: 2.0 },
        queries: vec![sym("ACACACACACACACAC")],
    }
}

fn metric_value(exposition: &str, family: &str) -> Option<u64> {
    exposition
        .lines()
        .find(|l| l.starts_with(family) && !l.starts_with('#'))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn worker_panic_is_isolated_and_counted() {
    let guard = FailpointGuard::disarmed();
    let server = Server::bind(
        build_server_db(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let mut client = Client::<Symbol>::connect(server.local_addr()).expect("connect");

    // First query panics inside the (only) worker; the connection gets a
    // typed Internal, not a hang, and the worker survives to serve more.
    guard.rearm("serve.worker=nth-1:error").unwrap();
    let first = client.request(&query_request()).expect("connection lives");
    guard.disarm();
    assert!(
        matches!(first, Response::Error(WireError::Internal(_))),
        "a panicked job answers Internal, got {first:?}"
    );

    // Same worker, same connection: the pool did not shrink.
    match client.request(&query_request()).expect("retry works") {
        Response::Outcomes(outcomes) => assert_eq!(outcomes.len(), 1),
        other => panic!("expected outcomes after the panic, got {other:?}"),
    }
    match client.request(&Request::Metrics).expect("metrics answer") {
        Response::Metrics(text) => {
            assert_eq!(
                metric_value(&text, "ssr_worker_panics_total"),
                Some(1),
                "the panic must be counted"
            );
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn stalled_peer_is_timed_out_and_counted_without_pinning_the_server() {
    let _guard = FailpointGuard::disarmed();
    let server = Server::bind(
        build_server_db(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 1,
            read_timeout: Some(Duration::from_millis(150)),
            ..ServeConfig::default()
        },
    )
    .expect("bind");

    // A slowloris: open a connection, write half a frame header, stall.
    let mut stall = std::net::TcpStream::connect(server.local_addr()).expect("connect");
    {
        use std::io::Write;
        stall.write_all(&[0x10, 0x00]).expect("partial header");
        stall.flush().expect("flush");
    }

    // A healthy client keeps being served while the stalled one waits out
    // its timeout.
    let mut healthy = Client::<Symbol>::connect(server.local_addr()).expect("connect");
    assert!(matches!(
        healthy.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));

    // The stalled connection is answered a typed refusal, then closed.
    stall
        .set_read_timeout(Some(Duration::from_secs(5)))
        .expect("deadline");
    let refusal = ssr_storage::read_frame(&mut stall, 1 << 20)
        .expect("typed refusal frame")
        .expect("server answers before closing");
    match Response::decode_payload(&refusal).expect("refusal decodes") {
        Response::Error(WireError::Malformed(msg)) => {
            assert!(msg.contains("timed out"), "refusal names the cause: {msg}")
        }
        other => panic!("expected a malformed/timeout refusal, got {other:?}"),
    }

    // The healthy connection idled past the same timeout while the stall
    // played out, so it was reaped too — reconnect for the scrape. The
    // counter holds at least the stalled peer (the idle one may add more).
    let mut fresh = Client::<Symbol>::connect(server.local_addr()).expect("reconnect");
    match fresh.request(&Request::Metrics).expect("metrics answer") {
        Response::Metrics(text) => {
            let timeouts =
                metric_value(&text, "ssr_connection_timeouts_total").expect("family present");
            assert!(timeouts >= 1, "the stall must be counted, saw {timeouts}");
        }
        other => panic!("expected metrics, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn drain_finishes_probes_refuses_queries_and_exits() {
    let _guard = FailpointGuard::disarmed();
    let server = Server::bind(
        build_server_db(),
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            ..ServeConfig::default()
        },
    )
    .expect("bind");
    let addr = server.local_addr();

    // Connection A outlives the drain; connection B triggers it.
    let mut surviving = Client::<Symbol>::connect(addr).expect("connect A");
    assert!(matches!(
        surviving
            .request(&query_request())
            .expect("pre-drain query"),
        Response::Outcomes(_)
    ));

    let mut trigger = WireClient::<Symbol>::new(addr, ClientConfig::default()).expect("client B");
    match trigger.request(&Request::Shutdown) {
        Ok(Response::ShuttingDown) => {}
        other => panic!("expected a shutdown ack, got {other:?}"),
    }

    // The ack is written before the drain flag flips, so poll the gauge
    // until the drain is observable; probes must keep answering throughout.
    let deadline = std::time::Instant::now() + Duration::from_secs(5);
    loop {
        assert!(matches!(
            surviving
                .request(&Request::Ping)
                .expect("probe during drain"),
            Response::Pong
        ));
        match surviving
            .request(&Request::Metrics)
            .expect("metrics answer")
        {
            Response::Metrics(text) => {
                if metric_value(&text, "ssr_draining") == Some(1) {
                    break;
                }
            }
            other => panic!("expected metrics, got {other:?}"),
        }
        assert!(
            std::time::Instant::now() < deadline,
            "drain gauge never rose"
        );
        std::thread::sleep(Duration::from_millis(5));
    }
    // With the drain observable, a new query batch is refused, typed.
    match surviving.request(&query_request()).expect("typed refusal") {
        Response::Error(WireError::Draining) => {}
        other => panic!("expected the draining refusal, got {other:?}"),
    }

    // The drain completes: every server thread exits (the test harness
    // itself is the hang bound — wait() returning is the assertion).
    server.wait();
}

#[test]
fn retrying_client_rides_out_accept_faults_deterministically() {
    let guard = FailpointGuard::disarmed();
    let server =
        Server::bind(build_server_db(), "127.0.0.1:0", ServeConfig::default()).expect("bind");

    // The server drops the client's first connection at accept; the retry
    // budget (4 attempts) rides it out with room to spare.
    let mut client = WireClient::<Symbol>::new(
        server.local_addr(),
        ClientConfig {
            read_timeout: Duration::from_millis(300),
            base_backoff: Duration::from_millis(5),
            max_backoff: Duration::from_millis(20),
            jitter_seed: 42,
            ..ClientConfig::default()
        },
    )
    .expect("client");
    guard.rearm("serve.accept=nth-1:error").unwrap();
    let response = client.request(&Request::Ping).expect("retries succeed");
    guard.disarm();
    assert!(matches!(response, Response::Pong));
    assert!(
        client.retries() >= 1,
        "the dropped accept must have cost at least one retry"
    );
    server.shutdown();
}
