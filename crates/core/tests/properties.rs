//! Property tests for the subsequence-matching framework.
//!
//! * **Soundness** — every match reported by a Type I query satisfies the
//!   framework's constraints and its distance, recomputed from scratch, does
//!   not exceed ε.
//! * **Planted recovery** — if the query literally contains a copy of a
//!   database region of length ≥ λ, a Type II query must find a match
//!   (consistency + Lemma 3 guarantee the shortlist covers it).
//! * **Backend agreement** — Reference Net, Cover Tree and linear scan
//!   backends produce the same set of matched windows in step 4.

use proptest::prelude::*;

use ssr_core::{FrameworkConfig, IndexBackend, SubsequenceDatabase};
use ssr_distance::{Levenshtein, SequenceDistance};
use ssr_sequence::{Sequence, Symbol};

fn sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        16..max_len,
    )
}

fn db(
    config: FrameworkConfig,
    texts: &[Vec<Symbol>],
) -> Option<SubsequenceDatabase<Symbol, Levenshtein>> {
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for t in texts {
        builder = builder.add_sequence(Sequence::new(t.clone()));
    }
    builder.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn type1_results_are_sound(
        texts in prop::collection::vec(sym_seq(60), 1..4),
        query in sym_seq(40),
        epsilon in 0.0f64..4.0,
    ) {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        let Some(database) = db(config.clone(), &texts) else { return Ok(()); };
        let query = Sequence::new(query);
        let outcome = database.query_type1(&query, epsilon);
        let lev = Levenshtein::new();
        for m in &outcome.result {
            prop_assert!(m.query_len() >= config.lambda);
            prop_assert!(m.db_len() >= config.lambda);
            prop_assert!((m.query_len() as i64 - m.db_len() as i64).abs() <= config.max_shift as i64);
            let db_seq = database.sequence(m.sequence).unwrap();
            let recomputed = lev.distance(
                &query.elements()[m.query_range.clone()],
                &db_seq.elements()[m.db_range.clone()],
            );
            prop_assert!((recomputed - m.distance).abs() < 1e-9);
            prop_assert!(recomputed <= epsilon + 1e-9);
        }
    }

    #[test]
    fn planted_copies_are_recovered_by_type2(
        base in sym_seq(80),
        prefix in prop::collection::vec((0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)), 0..10),
        start_frac in 0.0f64..1.0,
    ) {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        prop_assume!(base.len() >= 24);
        // Plant: the query is a prefix of noise followed by a verbatim copy of
        // base[start .. start+16].
        let start = ((base.len() - 16) as f64 * start_frac) as usize;
        let planted: Vec<Symbol> = base[start..start + 16].to_vec();
        let mut query_elements = prefix.clone();
        query_elements.extend(planted);
        let Some(database) = db(config, std::slice::from_ref(&base)) else { return Ok(()); };
        let query = Sequence::new(query_elements);
        let outcome = database.query_type2(&query, 2.0);
        let m = outcome.result;
        prop_assert!(m.is_some(), "planted copy of length 16 >= lambda 8 not found");
        let m = m.unwrap();
        prop_assert!(m.distance <= 2.0);
        prop_assert!(m.query_len() >= 8);
    }

    #[test]
    fn backends_agree_on_matched_windows(
        texts in prop::collection::vec(sym_seq(60), 1..3),
        query in sym_seq(30),
        epsilon in 0.0f64..3.0,
    ) {
        let query = Sequence::new(query);
        let mut matched_sets = Vec::new();
        for backend in [IndexBackend::ReferenceNet, IndexBackend::CoverTree, IndexBackend::LinearScan] {
            let config = FrameworkConfig::new(8).with_max_shift(1).with_backend(backend);
            let Some(database) = db(config, &texts) else { return Ok(()); };
            let scan = database.matching_segments(&query, epsilon);
            let mut keys: Vec<(usize, usize, usize)> = scan
                .matches
                .iter()
                .map(|m| (m.window.0, m.query_start, m.query_len))
                .collect();
            keys.sort_unstable();
            keys.dedup();
            matched_sets.push(keys);
        }
        prop_assert_eq!(&matched_sets[0], &matched_sets[2], "reference net vs linear scan");
        prop_assert_eq!(&matched_sets[1], &matched_sets[2], "cover tree vs linear scan");
    }

    #[test]
    fn stats_are_internally_consistent(
        texts in prop::collection::vec(sym_seq(60), 1..3),
        query in sym_seq(30),
        epsilon in 0.0f64..4.0,
    ) {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        let Some(database) = db(config, &texts) else { return Ok(()); };
        let query = Sequence::new(query);
        let outcome = database.query_type1(&query, epsilon);
        let stats = outcome.stats;
        prop_assert!(stats.unique_windows <= database.window_count());
        prop_assert!(stats.unique_windows <= stats.segment_matches);
        // Each match yields at most its best chain plus one single-window
        // candidate (duplicates merged).
        prop_assert!(stats.candidates <= 2 * stats.segment_matches);
        prop_assert!(stats.verification_calls <= database.config().max_verifications as u64);
    }
}
