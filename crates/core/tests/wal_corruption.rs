//! WAL robustness, mirroring `snapshot_corruption`: a multi-record log
//! produced by real [`LiveDatabase`] mutations is subjected to truncation at
//! **every byte prefix** and a single-byte flip at **every position**.
//! Recovery must be total — every outcome is either a clean recovery (a
//! verbatim prefix of the original records, with the damage dropped as a
//! torn tail) or a typed [`StorageError`], never a panic and never a
//! silently divergent record. The same battery is then replayed against the
//! real on-disk open path, which additionally truncates torn tails in place.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ssr_core::{wal_path_for, FrameworkConfig, LiveDatabase, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, SequenceId, Symbol};
use ssr_storage::{decode_wal, StorageError, WAL_HEADER_LEN};

fn seq(text: &str) -> Sequence<Symbol> {
    Sequence::new(text.chars().map(Symbol::from_char).collect())
}

fn scratch_path(stem: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("ssr-walcorrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir.join(format!(
        "{stem}-{}.ssr",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// Builds a snapshot plus a four-record WAL (three appends, one remove)
/// through the real mutation API and returns both files' bytes.
fn fixture() -> (Vec<u8>, Vec<u8>) {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let db = SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(seq("ACGTACGTACGTACGTACGT"))
        .add_sequence(seq("TTTTCCCCGGGGAAAATTTT"))
        .build()
        .expect("seed dataset builds");

    let path = scratch_path("fixture");
    let mut live = LiveDatabase::create(&path, db).expect("create succeeds");
    live.append_sequence(seq("GATTACAGATTACAGATTACA"))
        .expect("append 1");
    let mut labeled = seq("CGCGCGCGATATATAT");
    labeled.set_label("labeled tail");
    live.append_sequence(labeled).expect("append 2");
    assert!(live.remove_sequence(SequenceId(0)).expect("remove"));
    live.append_sequence(seq("AAAACCCCGGGGTTTT"))
        .expect("append 3");
    assert_eq!(live.pending_ops(), 4);

    let snapshot = std::fs::read(&path).expect("snapshot readable");
    let wal = std::fs::read(live.wal_path()).expect("wal readable");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(live.wal_path());
    (snapshot, wal)
}

#[test]
fn truncation_at_every_byte_prefix_recovers_a_verbatim_record_prefix() {
    let (_, wal) = fixture();
    let full = decode_wal(&wal).expect("undamaged wal decodes");
    assert_eq!(full.records.len(), 4);
    assert_eq!(full.dropped_bytes, 0);

    for cut in 0..wal.len() {
        match decode_wal(&wal[..cut]) {
            Ok(read) => {
                assert!(read.valid_len <= cut, "prefix {cut}: valid_len overruns");
                assert!(
                    read.records.len() <= full.records.len(),
                    "prefix {cut}: more records than the original"
                );
                assert_eq!(
                    read.records[..],
                    full.records[..read.records.len()],
                    "prefix {cut}: recovered records diverge from the original"
                );
            }
            Err(err) => {
                // Typed, and the display must render.
                let _ = err.to_string();
            }
        }
    }

    // Truncation inside the fixed magic+version prefix is BadMagic territory
    // only when the bytes stop being a prefix of the canonical header; a
    // clean empty file and a bare header both recover to zero records.
    let empty = decode_wal(&wal[..WAL_HEADER_LEN]).expect("bare header recovers");
    assert_eq!(empty.records.len(), 0);
    assert_eq!(empty.dropped_bytes, 0);
}

#[test]
fn single_byte_flips_never_corrupt_the_preceding_records() {
    let (_, wal) = fixture();
    let full = decode_wal(&wal).expect("undamaged wal decodes");

    for pos in 0..wal.len() {
        for mask in [0x01u8, 0x80] {
            let mut damaged = wal.clone();
            damaged[pos] ^= mask;
            match decode_wal(&damaged) {
                Ok(read) => {
                    // Whatever was recovered must be a verbatim prefix of the
                    // true records: a flip in record i may cost records >= i,
                    // but may never alter the state rebuilt from records < i.
                    assert!(
                        read.records.len() <= full.records.len(),
                        "flip at {pos}: extra records appeared"
                    );
                    assert_eq!(
                        read.records[..],
                        full.records[..read.records.len()],
                        "flip at {pos}: recovered records diverge"
                    );
                }
                Err(err) => {
                    let _ = err.to_string();
                }
            }
        }
    }
}

#[test]
fn mid_log_damage_is_a_typed_checksum_error_and_tail_damage_is_torn() {
    let (_, wal) = fixture();
    let full = decode_wal(&wal).expect("undamaged wal decodes");

    // Flip a payload byte of the FIRST record: the log still holds records
    // after it, so this is unrecoverable mid-log damage, named precisely.
    let mut damaged = wal.clone();
    damaged[WAL_HEADER_LEN + 8] ^= 0xFF;
    match decode_wal(&damaged) {
        Err(StorageError::ChecksumMismatch { section }) => {
            assert_eq!(section, "wal record 0");
        }
        other => panic!("mid-log flip gave {other:?}"),
    }

    // Flip a byte of the LAST record's payload: that frame ends at EOF, so
    // it reads as a torn tail from an interrupted append and is dropped.
    let mut damaged = wal.clone();
    let last = wal.len() - 1;
    damaged[last] ^= 0xFF;
    let read = decode_wal(&damaged).expect("tail damage recovers");
    assert_eq!(read.records.len(), full.records.len() - 1);
    assert_eq!(read.records[..], full.records[..full.records.len() - 1]);
    assert!(read.dropped_bytes > 0);
}

/// Replays the whole battery against the real open path: the damaged bytes
/// are written to disk next to the snapshot, and [`LiveDatabase::open`] must
/// either replay a clean prefix or fail with a typed error — never panic,
/// and never apply a record that the pure decoder would not return.
#[test]
fn damaged_wal_files_on_disk_never_panic_at_open() {
    let (snapshot, wal) = fixture();
    let full = decode_wal(&wal).expect("undamaged wal decodes");
    let path = scratch_path("disk");
    let wal_path = wal_path_for(&path);

    let mut variants: Vec<Vec<u8>> = (0..wal.len()).map(|cut| wal[..cut].to_vec()).collect();
    for pos in 0..wal.len() {
        let mut damaged = wal.clone();
        damaged[pos] ^= 0x20;
        variants.push(damaged);
    }

    for (i, variant) in variants.iter().enumerate() {
        std::fs::write(&path, &snapshot).expect("snapshot writes");
        std::fs::write(&wal_path, variant).expect("wal variant writes");
        match LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()) {
            Ok(live) => {
                assert!(
                    live.pending_ops() <= full.records.len(),
                    "variant {i}: replayed more ops than the original log held"
                );
                // Recovery truncated any torn tail: a second open must see
                // the identical clean state.
                let replayed = live.pending_ops();
                drop(live);
                let again = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new())
                    .unwrap_or_else(|e| panic!("variant {i}: recovered log failed to reopen: {e}"));
                assert_eq!(again.pending_ops(), replayed, "variant {i}");
            }
            Err(err) => {
                let _ = err.to_string();
            }
        }
    }

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}
