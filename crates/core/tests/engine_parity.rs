//! Parallel-vs-sequential parity: for random databases and query batches,
//! a [`QueryEngine`] with `threads = N` must produce **exactly** the same
//! outcomes — same matches, same order after the result sort, same work
//! statistics — as `threads = 1`. This is the property that makes the
//! `--threads` axis of the bench harness trustworthy: any divergence is an
//! engine bug, never "parallel nondeterminism".

use proptest::prelude::*;

use ssr_core::{FrameworkConfig, QueryEngine, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

fn sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        16..max_len,
    )
}

fn db(texts: &[Vec<Symbol>]) -> Option<SubsequenceDatabase<Symbol, Levenshtein>> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for t in texts {
        builder = builder.add_sequence(Sequence::new(t.clone()));
    }
    builder.build().ok()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn type1_batches_are_identical_across_thread_counts(
        texts in prop::collection::vec(sym_seq(60), 1..4),
        queries in prop::collection::vec(sym_seq(40), 1..5),
        epsilon in 0.0f64..4.0,
    ) {
        let Some(database) = db(&texts) else { return Ok(()); };
        let queries: Vec<Sequence<Symbol>> =
            queries.into_iter().map(Sequence::new).collect();
        let sequential = QueryEngine::new(&database).batch_type1(&queries, epsilon);
        for threads in [2usize, 4] {
            let parallel = QueryEngine::new(&database)
                .with_threads(threads)
                .batch_type1(&queries, epsilon);
            prop_assert_eq!(sequential.outcomes.len(), parallel.outcomes.len());
            for (i, (a, b)) in sequential.outcomes.iter().zip(&parallel.outcomes).enumerate() {
                // Same candidates, same order after the result sort, and
                // bit-identical statistics (thread-local call attribution).
                prop_assert_eq!(&a.result, &b.result, "query {} threads {}", i, threads);
                prop_assert_eq!(&a.stats, &b.stats, "query {} threads {}", i, threads);
            }
        }
        // The sequential engine path must also agree with the plain API.
        for (query, outcome) in queries.iter().zip(&sequential.outcomes) {
            let direct = database.query_type1(query, epsilon);
            prop_assert_eq!(&direct.result, &outcome.result);
            prop_assert_eq!(&direct.stats, &outcome.stats);
        }
    }

    #[test]
    fn type2_and_type3_batches_are_identical_across_thread_counts(
        texts in prop::collection::vec(sym_seq(60), 1..4),
        queries in prop::collection::vec(sym_seq(40), 1..4),
    ) {
        let Some(database) = db(&texts) else { return Ok(()); };
        let queries: Vec<Sequence<Symbol>> =
            queries.into_iter().map(Sequence::new).collect();
        let seq2 = QueryEngine::new(&database).batch_type2(&queries, 2.0);
        let seq3 = QueryEngine::new(&database).batch_type3(&queries, 4.0, 1.0);
        for threads in [2usize, 4] {
            let engine = QueryEngine::new(&database).with_threads(threads);
            let par2 = engine.batch_type2(&queries, 2.0);
            let par3 = engine.batch_type3(&queries, 4.0, 1.0);
            for (a, b) in seq2.outcomes.iter().zip(&par2.outcomes) {
                prop_assert_eq!(&a.result, &b.result);
                prop_assert_eq!(&a.stats, &b.stats);
            }
            for (a, b) in seq3.outcomes.iter().zip(&par3.outcomes) {
                prop_assert_eq!(&a.result, &b.result);
                prop_assert_eq!(&a.stats, &b.stats);
            }
        }
    }
}
