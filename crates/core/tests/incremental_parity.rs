//! Incremental-maintenance parity: a [`LiveDatabase`] driven through an
//! arbitrary interleaving of appends, removes and compactions must be
//! **query-parity-identical** — same results, same per-query statistics —
//! to an in-memory database driven through the identical mutation sequence,
//! for Type I/II/III queries at every thread count. For append-only
//! histories the incremental database must additionally match a true
//! from-scratch rebuild over the final dataset, which is the property that
//! makes `append_sequence` a real alternative to rebuilding. Finally, a
//! reopen (snapshot + WAL replay) and a compaction must both preserve all
//! of the above, and compaction must be byte-stable.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use proptest::prelude::*;

use ssr_core::{FrameworkConfig, LiveDatabase, QueryEngine, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, SequenceId, Symbol};

/// One step of a scripted mutation history.
#[derive(Debug, Clone)]
enum Step {
    Append(Vec<Symbol>),
    /// Remove the `selector % assigned`-th sequence id handed out so far
    /// (which may already be dead — both sides must agree on the no-op).
    Remove(usize),
    Compact,
}

fn sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        16..max_len,
    )
}

fn step() -> impl Strategy<Value = Step> {
    // Weighted mix: 3 appends : 2 removes : 1 compaction.
    ((0u8..6), sym_seq(48), 0usize..1 << 16).prop_map(|(kind, elements, selector)| match kind {
        0..=2 => Step::Append(elements),
        3 | 4 => Step::Remove(selector),
        _ => Step::Compact,
    })
}

fn config() -> FrameworkConfig {
    FrameworkConfig::new(8).with_max_shift(1)
}

fn build(texts: &[Vec<Symbol>]) -> Option<SubsequenceDatabase<Symbol, Levenshtein>> {
    let mut builder = SubsequenceDatabase::builder(config(), Levenshtein::new());
    for t in texts {
        builder = builder.add_sequence(Sequence::new(t.clone()));
    }
    builder.build().ok()
}

/// A unique snapshot path per proptest case, so shrunk re-runs never see a
/// stale file from a previous iteration.
fn scratch_path() -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("ssr-incparity-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir.join(format!("case-{}.ssr", CASE.fetch_add(1, Ordering::Relaxed)))
}

fn assert_query_parity(
    a: &SubsequenceDatabase<Symbol, Levenshtein>,
    b: &SubsequenceDatabase<Symbol, Levenshtein>,
    queries: &[Sequence<Symbol>],
    epsilon: f64,
    label: &str,
) -> Result<(), TestCaseError> {
    for threads in [1usize, 2, 4] {
        let ea = QueryEngine::new(a).with_threads(threads);
        let eb = QueryEngine::new(b).with_threads(threads);

        macro_rules! check {
            ($ra:expr, $rb:expr, $ty:literal) => {
                for (i, (oa, ob)) in $ra.outcomes.iter().zip(&$rb.outcomes).enumerate() {
                    prop_assert_eq!(
                        &oa.result,
                        &ob.result,
                        "{}: type {} query {} threads {}",
                        label,
                        $ty,
                        i,
                        threads
                    );
                    prop_assert_eq!(
                        &oa.stats,
                        &ob.stats,
                        "{}: type {} query {} threads {}",
                        label,
                        $ty,
                        i,
                        threads
                    );
                }
            };
        }
        check!(
            ea.batch_type1(queries, epsilon),
            eb.batch_type1(queries, epsilon),
            1
        );
        check!(
            ea.batch_type2(queries, epsilon),
            eb.batch_type2(queries, epsilon),
            2
        );
        check!(
            ea.batch_type3(queries, 4.0, 1.0),
            eb.batch_type3(queries, 4.0, 1.0),
            3
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn any_mutation_history_matches_the_in_memory_reference(
        texts in prop::collection::vec(sym_seq(48), 1..3),
        script in prop::collection::vec(step(), 1..8),
        queries in prop::collection::vec(sym_seq(32), 1..3),
        epsilon in 0.0f64..4.0,
    ) {
        let Some(reference_seed) = build(&texts) else { return Ok(()); };
        let Some(initial) = build(&texts) else { return Ok(()); };

        let path = scratch_path();
        let mut live = LiveDatabase::create(&path, initial)
            .expect("creating a live database on a fresh path succeeds");
        let mut reference = reference_seed;

        // Drive both sides through the identical script, checking that the
        // mutation APIs agree step by step.
        let mut assigned = texts.len();
        let mut append_only = true;
        for op in &script {
            match op {
                Step::Append(elements) => {
                    let a = live
                        .append_sequence(Sequence::new(elements.clone()))
                        .expect("logged append succeeds");
                    let b = reference.append_sequence(Sequence::new(elements.clone()));
                    prop_assert_eq!(a, b, "both sides assign the same sequence id");
                    assigned += 1;
                }
                Step::Remove(selector) => {
                    append_only = false;
                    let id = SequenceId(selector % assigned);
                    let a = live.remove_sequence(id).expect("logged remove succeeds");
                    let b = reference.remove_sequence(id);
                    prop_assert_eq!(a, b, "both sides agree whether {:?} was live", id);
                }
                Step::Compact => {
                    live.compact().expect("compaction succeeds");
                    prop_assert_eq!(live.pending_ops(), 0);
                }
            }
        }

        prop_assert_eq!(
            live.database().live_sequence_count(),
            reference.live_sequence_count()
        );

        let queries: Vec<Sequence<Symbol>> =
            queries.iter().map(|q| Sequence::new(q.clone())).collect();

        // 1. The live database answers exactly like the in-memory reference.
        assert_query_parity(live.database(), &reference, &queries, epsilon, "live vs reference")?;

        // 2. Append-only histories additionally match a true from-scratch
        //    build over the final dataset (incremental == rebuild).
        if append_only {
            let mut all = texts.clone();
            for op in &script {
                if let Step::Append(elements) = op {
                    all.push(elements.clone());
                }
            }
            if let Some(scratch) = build(&all) {
                prop_assert_eq!(live.database().window_count(), scratch.window_count());
                assert_query_parity(
                    live.database(),
                    &scratch,
                    &queries,
                    epsilon,
                    "incremental vs scratch",
                )?;
            }
        }

        // 3. A reopen (snapshot load + WAL replay) reaches the same state.
        drop(live);
        let reopened = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new())
            .expect("reopening after a clean shutdown succeeds");
        assert_query_parity(
            reopened.database(),
            &reference,
            &queries,
            epsilon,
            "reopened vs reference",
        )?;

        // 4. Compaction folds the log into the snapshot without changing
        //    answers, and the compacted snapshot is byte-stable.
        let mut reopened = reopened;
        reopened.compact().expect("final compaction succeeds");
        prop_assert_eq!(reopened.pending_ops(), 0);
        let on_disk = std::fs::read(&path).expect("compacted snapshot is readable");
        prop_assert_eq!(&on_disk, &reopened.database().snapshot_bytes());
        let cold = SubsequenceDatabase::from_snapshot_bytes(on_disk, Levenshtein::new())
            .expect("the compacted snapshot loads");
        prop_assert_eq!(&cold.snapshot_bytes(), &reopened.database().snapshot_bytes());
        assert_query_parity(&cold, &reference, &queries, epsilon, "compacted vs reference")?;

        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(reopened.wal_path());
    }
}
