//! Snapshot format-version skew: the v3 arena layout changed the section
//! schema (one contiguous `arena` element section, no `windows` section, no
//! per-window data), so files written by earlier builds must be rejected
//! cleanly — a v1/v2 payload parsed as v3 would misinterpret element bytes.
//! Also covers the degenerate end of the format: an empty-dataset v3
//! snapshot loads, answers queries (with empty results) and re-saves
//! byte-identically.

use ssr_core::storage::{
    SnapshotManifest, SECTION_ARENA, SECTION_DATASET, SECTION_INDEX, SECTION_MANIFEST,
};
use ssr_core::{FrameworkConfig, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_index::{FnMetric, LinearScan};
use ssr_sequence::{ElementArena, Sequence, SequenceDataset, Symbol, WindowId};
use ssr_storage::{crc32, Encode, SnapshotBuilder, StorageError, FORMAT_VERSION};

fn seq(text: &str) -> Sequence<Symbol> {
    Sequence::new(text.chars().map(Symbol::from_char).collect())
}

fn v3_snapshot_bytes() -> Vec<u8> {
    SubsequenceDatabase::builder(
        FrameworkConfig::new(8).with_max_shift(1),
        Levenshtein::new(),
    )
    .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
    .build()
    .unwrap()
    .snapshot_bytes()
}

/// Rewrites the format-version word of a snapshot and fixes the header CRC,
/// isolating the version check from the integrity checks.
fn with_version(mut bytes: Vec<u8>, version: u32) -> Vec<u8> {
    bytes[8..12].copy_from_slice(&version.to_le_bytes());
    let table_len = u32::from_le_bytes([bytes[12], bytes[13], bytes[14], bytes[15]]) as usize;
    let header_end = 16 + table_len;
    let crc = crc32(&bytes[..header_end]);
    bytes[header_end..header_end + 4].copy_from_slice(&crc.to_le_bytes());
    bytes
}

fn try_load(bytes: Vec<u8>) -> Result<SubsequenceDatabase<Symbol, Levenshtein>, StorageError> {
    SubsequenceDatabase::from_snapshot_bytes(bytes, Levenshtein::new())
}

#[test]
fn current_format_version_is_3() {
    assert_eq!(FORMAT_VERSION, 3);
}

#[test]
fn v1_and_v2_snapshots_are_rejected_with_unsupported_version() {
    let bytes = v3_snapshot_bytes();
    assert!(try_load(bytes.clone()).is_ok(), "v3 control load");
    for old in [1u32, 2] {
        let err = try_load(with_version(bytes.clone(), old))
            .err()
            .unwrap_or_else(|| panic!("a v{old} snapshot must be rejected"));
        assert!(
            matches!(err, StorageError::UnsupportedVersion(v) if v == old),
            "v{old} gave {err:?}"
        );
    }
    // Future versions are rejected the same way, never guessed at.
    let err = try_load(with_version(bytes, 4))
        .err()
        .expect("a v4 snapshot must be rejected");
    assert!(
        matches!(err, StorageError::UnsupportedVersion(4)),
        "{err:?}"
    );
}

/// Builds a structurally valid v3 snapshot of a database with **zero**
/// sequences — a state the builder itself refuses to construct (it demands
/// at least one window) but the format, and a loader facing arbitrary
/// files, must handle totally.
fn empty_v3_snapshot_bytes() -> Vec<u8> {
    let config = FrameworkConfig::new(8)
        .with_max_shift(1)
        .with_backend(ssr_core::IndexBackend::LinearScan);
    let manifest = SnapshotManifest {
        element: "symbol".to_string(),
        distance: "Levenshtein".to_string(),
        config,
        sequences: 0,
        windows: 0,
        build_distance_calls: 0,
        build_dp_cells: 0,
    };
    let arena = ElementArena::<Symbol>::from_dataset(&SequenceDataset::new());
    let index: LinearScan<WindowId, _> =
        LinearScan::new(FnMetric(|_: &WindowId, _: &WindowId| 0.0));
    let mut builder = SnapshotBuilder::new();
    builder.section(SECTION_MANIFEST, |w| manifest.encode(w));
    builder.section(SECTION_ARENA, |w| arena.encode(w));
    builder.section(SECTION_DATASET, |w| w.put_usize(0));
    builder.section(SECTION_INDEX, |w| {
        ssr_core::IndexBackend::LinearScan.encode(w);
        index.encode(w);
    });
    builder.to_bytes()
}

#[test]
fn empty_dataset_v3_snapshot_roundtrips() {
    let bytes = empty_v3_snapshot_bytes();
    let db = try_load(bytes.clone()).expect("an empty v3 snapshot is valid");
    assert_eq!(db.dataset().len(), 0);
    assert_eq!(db.window_count(), 0);
    assert_eq!(db.windows().arena().len(), 0);

    // Queries against the empty database answer, with empty results.
    let outcome = db.query_type1(&seq("ACDEFGHIKLMN"), 2.0);
    assert!(outcome.result.is_empty());
    assert_eq!(outcome.stats.index_distance_calls, 0);
    assert!(db.query_type2(&seq("ACDEFGHIKLMN"), 2.0).result.is_none());

    // Save → load → save is a fixed point, down to the byte.
    assert_eq!(db.snapshot_bytes(), bytes);
}

#[test]
fn save_load_save_is_byte_stable_under_the_arena_layout() {
    let bytes = v3_snapshot_bytes();
    let loaded = try_load(bytes.clone()).unwrap();
    assert_eq!(loaded.snapshot_bytes(), bytes);
}

#[test]
fn crafted_out_of_range_index_handles_are_rejected() {
    // A snapshot whose index section claims handles beyond the window table
    // must be a typed error, not a panic at first slice resolution.
    let db = SubsequenceDatabase::<Symbol, _>::builder(
        FrameworkConfig::new(8)
            .with_max_shift(1)
            .with_backend(ssr_core::IndexBackend::LinearScan),
        Levenshtein::new(),
    )
    .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
    .build()
    .unwrap();
    let snapshot = ssr_storage::Snapshot::from_bytes(db.snapshot_bytes()).unwrap();
    let windows = db.window_count();

    // Re-assemble the snapshot with an index that shifts every handle by
    // one, pointing the last one past the window table.
    let crafted: LinearScan<WindowId, _> = {
        let mut scan = LinearScan::new(FnMetric(|_: &WindowId, _: &WindowId| 0.0));
        scan.extend((1..=windows).map(WindowId));
        scan
    };
    let mut builder = SnapshotBuilder::new();
    for name in [SECTION_MANIFEST, SECTION_ARENA, SECTION_DATASET] {
        let mut r = snapshot.section_reader(name).unwrap();
        let payload = r.take(r.remaining(), "section payload").unwrap().to_vec();
        builder.section(name, |w| w.put_raw(&payload));
    }
    builder.section(SECTION_INDEX, |w| {
        ssr_core::IndexBackend::LinearScan.encode(w);
        crafted.encode(w);
    });
    let err = try_load(builder.to_bytes())
        .err()
        .expect("shifted handles must be rejected");
    assert!(matches!(err, StorageError::Malformed(_)), "{err:?}");
}
