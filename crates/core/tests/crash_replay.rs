//! Crash-point replay: a scripted workload is run against a [`LiveDatabase`],
//! then a crash is simulated after **every record boundary** by handing the
//! open path a WAL truncated to that prefix. Reopen + replay must reach
//! exactly the state an uninterrupted run had after the same number of
//! operations — verified byte-for-byte through `snapshot_bytes()`, which
//! covers the arena, dataset, index and tombstones at once. The interrupted
//! compaction window (new snapshot written, WAL not yet reset) must not
//! double-apply, and a compacted snapshot must be a byte-stable fixed point.

use std::path::PathBuf;
use std::sync::atomic::{AtomicUsize, Ordering};

use ssr_core::{wal_path_for, FrameworkConfig, LiveDatabase, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, SequenceId, Symbol};
use ssr_storage::{decode_wal, write_atomic, WAL_HEADER_LEN};

fn seq(text: &str) -> Sequence<Symbol> {
    Sequence::new(text.chars().map(Symbol::from_char).collect())
}

fn scratch_path(stem: &str) -> PathBuf {
    static CASE: AtomicUsize = AtomicUsize::new(0);
    let dir = std::env::temp_dir().join(format!("ssr-crashreplay-{}", std::process::id()));
    std::fs::create_dir_all(&dir).expect("temp dir is creatable");
    dir.join(format!(
        "{stem}-{}.ssr",
        CASE.fetch_add(1, Ordering::Relaxed)
    ))
}

/// The scripted workload. Each op becomes exactly one WAL record.
#[derive(Clone, Copy)]
enum Op {
    Append(&'static str, Option<&'static str>),
    Remove(usize),
}

const SCRIPT: &[Op] = &[
    Op::Append("GATTACAGATTACAGATTACA", None),
    Op::Append("CGCGCGCGATATATATCGCG", Some("second")),
    Op::Remove(0),
    Op::Append("AAAACCCCGGGGTTTTAAAA", None),
    Op::Remove(2),
    Op::Append("TTGGTTGGTTGGTTGG", Some("last")),
];

fn initial_database() -> SubsequenceDatabase<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(seq("ACGTACGTACGTACGTACGT"))
        .add_sequence(seq("TTTTCCCCGGGGAAAATTTT"))
        .build()
        .expect("seed dataset builds")
}

fn apply(db: &mut SubsequenceDatabase<Symbol, Levenshtein>, op: Op) {
    match op {
        Op::Append(text, label) => {
            let mut sequence = seq(text);
            if let Some(label) = label {
                sequence.set_label(label);
            }
            db.append_sequence(sequence);
        }
        Op::Remove(id) => {
            assert!(
                db.remove_sequence(SequenceId(id)),
                "script removes live ids"
            );
        }
    }
}

/// Runs the script through a real LiveDatabase and returns the initial
/// snapshot bytes plus the final WAL bytes.
fn run_workload() -> (Vec<u8>, Vec<u8>) {
    let path = scratch_path("workload");
    let mut live = LiveDatabase::create(&path, initial_database()).expect("create succeeds");
    for &op in SCRIPT {
        match op {
            Op::Append(text, label) => {
                let mut sequence = seq(text);
                if let Some(label) = label {
                    sequence.set_label(label);
                }
                live.append_sequence(sequence).expect("append logs");
            }
            Op::Remove(id) => {
                assert!(live.remove_sequence(SequenceId(id)).expect("remove logs"));
            }
        }
    }
    assert_eq!(live.pending_ops(), SCRIPT.len());
    let snapshot = std::fs::read(&path).expect("snapshot readable");
    let wal = std::fs::read(live.wal_path()).expect("wal readable");
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(live.wal_path());
    (snapshot, wal)
}

#[test]
fn replay_after_a_crash_at_every_record_boundary_matches_the_live_run() {
    let (snapshot, wal) = run_workload();
    let records = decode_wal(&wal).expect("undamaged wal decodes").records;
    assert_eq!(records.len(), SCRIPT.len());

    // Byte offset of the end of each record frame: boundary[k] is the file
    // length after exactly k committed operations.
    let mut boundaries = vec![WAL_HEADER_LEN];
    for record in &records {
        boundaries.push(boundaries.last().unwrap() + 8 + record.len());
    }
    assert_eq!(*boundaries.last().unwrap(), wal.len());

    // The uninterrupted reference after k ops, built exactly as the open
    // path does: load the snapshot, then mutate in memory.
    let mut reference =
        SubsequenceDatabase::from_snapshot_bytes(snapshot.clone(), Levenshtein::new())
            .expect("initial snapshot loads");

    let path = scratch_path("crash");
    let wal_path = wal_path_for(&path);
    for (k, &boundary) in boundaries.iter().enumerate() {
        if k > 0 {
            apply(&mut reference, SCRIPT[k - 1]);
        }
        std::fs::write(&path, &snapshot).expect("snapshot writes");
        std::fs::write(&wal_path, &wal[..boundary]).expect("wal prefix writes");

        let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new())
            .unwrap_or_else(|e| panic!("crash after {k} ops: reopen failed: {e}"));
        assert_eq!(live.pending_ops(), k, "crash after {k} ops");
        assert_eq!(
            live.database().snapshot_bytes(),
            reference.snapshot_bytes(),
            "crash after {k} ops: replayed state diverges from the live run"
        );
    }
    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn a_crash_mid_record_replays_the_completed_prefix() {
    let (snapshot, wal) = run_workload();
    let records = decode_wal(&wal).expect("undamaged wal decodes").records;

    // Tear the final record in half: the crash hit mid-append. Replay must
    // surface every completed op and drop the torn one.
    let torn = wal.len() - records.last().unwrap().len() / 2;
    let path = scratch_path("torn");
    let wal_path = wal_path_for(&path);
    std::fs::write(&path, &snapshot).expect("snapshot writes");
    std::fs::write(&wal_path, &wal[..torn]).expect("torn wal writes");

    let live =
        LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).expect("torn log reopens");
    assert_eq!(live.pending_ops(), SCRIPT.len() - 1);

    let mut reference = SubsequenceDatabase::from_snapshot_bytes(snapshot, Levenshtein::new())
        .expect("initial snapshot loads");
    for &op in &SCRIPT[..SCRIPT.len() - 1] {
        apply(&mut reference, op);
    }
    assert_eq!(live.database().snapshot_bytes(), reference.snapshot_bytes());

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn an_interrupted_compaction_never_double_applies() {
    let (snapshot, wal) = run_workload();

    // Simulate the compaction crash window: the new snapshot has been
    // renamed into place, but the process died before the WAL was reset.
    // The stale log is still bound to the OLD snapshot and must be
    // discarded, not replayed on top of the already-folded state.
    let mut folded = SubsequenceDatabase::from_snapshot_bytes(snapshot, Levenshtein::new())
        .expect("initial snapshot loads");
    for &op in SCRIPT {
        apply(&mut folded, op);
    }
    let folded_bytes = folded.snapshot_bytes();

    let path = scratch_path("compaction");
    let wal_path = wal_path_for(&path);
    write_atomic(&path, &folded_bytes).expect("folded snapshot writes");
    std::fs::write(&wal_path, &wal).expect("stale wal writes");

    let live = LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).expect("reopen succeeds");
    assert_eq!(live.pending_ops(), 0, "stale log must be discarded");
    assert_eq!(live.database().snapshot_bytes(), folded_bytes);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(&wal_path);
}

#[test]
fn compaction_is_a_byte_stable_fixed_point() {
    let path = scratch_path("fixedpoint");
    let mut live = LiveDatabase::create(&path, initial_database()).expect("create succeeds");
    for &op in SCRIPT {
        match op {
            Op::Append(text, label) => {
                let mut sequence = seq(text);
                if let Some(label) = label {
                    sequence.set_label(label);
                }
                live.append_sequence(sequence).expect("append logs");
            }
            Op::Remove(id) => {
                assert!(live.remove_sequence(SequenceId(id)).expect("remove logs"));
            }
        }
    }
    live.compact().expect("compaction succeeds");
    let compacted = std::fs::read(&path).expect("compacted snapshot readable");
    assert_eq!(compacted, live.database().snapshot_bytes());

    // Reopen from the compacted snapshot: no pending ops, and a second
    // compaction writes the identical bytes (save -> load -> save is a
    // fixed point even with tombstones present).
    drop(live);
    let mut reopened =
        LiveDatabase::<Symbol, _>::open(&path, Levenshtein::new()).expect("reopen succeeds");
    assert_eq!(reopened.pending_ops(), 0);
    assert_eq!(reopened.database().snapshot_bytes(), compacted);
    reopened.compact().expect("idempotent compaction succeeds");
    assert_eq!(std::fs::read(&path).expect("still readable"), compacted);

    let _ = std::fs::remove_file(&path);
    let _ = std::fs::remove_file(reopened.wal_path());
}
