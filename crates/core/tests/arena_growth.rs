//! Arena-growth invariants: the flat [`ElementArena`] is append-only, and
//! window partitioning is **prefix-stable** — growing the arena never moves
//! an existing sequence, never reassigns a window id, and never changes what
//! an outstanding [`WindowId`] resolves to. This is the property the whole
//! incremental-maintenance path leans on: `append_sequence` re-partitions a
//! grown arena and hands the index only the *tail* ids, which is sound only
//! if every id below the old count is untouched. Checked both directly at
//! the `ssr-sequence` layer and end-to-end through a snapshot-loaded
//! database driven through appends.

use std::sync::Arc;

use proptest::prelude::*;

use ssr_core::{FrameworkConfig, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{ElementArena, Sequence, Symbol, Window, WindowId, WindowStore};

const WINDOW_LEN: usize = 4;

fn sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        1..max_len,
    )
}

fn long_sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        16..max_len,
    )
}

/// Everything an outstanding window handle promises: its provenance and the
/// exact elements it resolves to.
fn capture(store: &WindowStore<Symbol>) -> Vec<(Window, Vec<Symbol>)> {
    (0..store.len())
        .map(|i| {
            let id = WindowId(i);
            let window = store.get(id).expect("id below len resolves");
            let slice = store.slice(id).expect("id below len has elements");
            (window, slice.to_vec())
        })
        .collect()
}

fn assert_prefix_stable(
    before: &[(Window, Vec<Symbol>)],
    after: &WindowStore<Symbol>,
) -> Result<(), TestCaseError> {
    prop_assert!(after.len() >= before.len(), "growth never drops windows");
    for (i, (window, slice)) in before.iter().enumerate() {
        let id = WindowId(i);
        prop_assert_eq!(
            &after.get(id).expect("outstanding id stays valid"),
            window,
            "window {} changed provenance",
            i
        );
        prop_assert_eq!(
            after.slice(id).expect("outstanding id stays resolvable"),
            slice.as_slice(),
            "window {} changed contents",
            i
        );
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// The pure-sequence-layer property: re-partitioning a grown clone of an
    /// arena extends the window table without disturbing its prefix, and the
    /// original arena is untouched.
    #[test]
    fn repartitioning_a_grown_arena_is_prefix_stable(
        initial in prop::collection::vec(sym_seq(24), 1..4),
        appended in prop::collection::vec(sym_seq(24), 1..4),
    ) {
        let mut arena = ElementArena::from_parts(Vec::new(), vec![0])
            .expect("an empty arena is structurally valid");
        for elements in &initial {
            arena.push_sequence(elements);
        }
        let arena = Arc::new(arena);
        let store = WindowStore::partition(Arc::clone(&arena), WINDOW_LEN);
        let before = capture(&store);
        let elements_before = arena.elements().to_vec();

        let mut grown = ElementArena::clone(&arena);
        for (i, elements) in appended.iter().enumerate() {
            let id = grown.push_sequence(elements);
            prop_assert_eq!(id.0, initial.len() + i, "ids are handed out in order");
        }
        // The clone grew; the original arena behind the old store is frozen.
        prop_assert_eq!(arena.elements(), elements_before.as_slice());
        prop_assert_eq!(arena.sequence_count(), initial.len());

        let grown_store = WindowStore::partition(Arc::new(grown), WINDOW_LEN);
        assert_prefix_stable(&before, &grown_store)?;

        // Each appended sequence contributes exactly floor(len / l) windows.
        let expected_new: usize = appended.iter().map(|s| s.len() / WINDOW_LEN).sum();
        prop_assert_eq!(grown_store.len(), before.len() + expected_new);

        // And the old store still answers identically afterwards.
        assert_prefix_stable(&before, &store)?;
    }

    /// The end-to-end property: a snapshot-loaded database keeps every
    /// outstanding window id valid across a run of appends.
    #[test]
    fn appends_after_a_snapshot_load_never_shift_existing_windows(
        texts in prop::collection::vec(long_sym_seq(48), 1..3),
        appended in prop::collection::vec(long_sym_seq(48), 1..4),
    ) {
        let config = FrameworkConfig::new(2 * WINDOW_LEN).with_max_shift(1);
        let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
        for t in &texts {
            builder = builder.add_sequence(Sequence::new(t.clone()));
        }
        let Ok(built) = builder.build() else { return Ok(()); };
        let mut db =
            SubsequenceDatabase::from_snapshot_bytes(built.snapshot_bytes(), Levenshtein::new())
                .expect("fresh snapshot loads");

        let mut before = capture(db.windows());
        for elements in &appended {
            let id = db.append_sequence(Sequence::new(elements.clone()));

            // Every window captured before this append still resolves to the
            // same provenance and the same elements...
            assert_prefix_stable(&before, db.windows())?;
            // ...the new windows sit strictly at the tail and point at the
            // new sequence...
            let expected_new = elements.len() / WINDOW_LEN;
            prop_assert_eq!(db.window_count(), before.len() + expected_new);
            for i in before.len()..db.window_count() {
                let window = db.windows().get(WindowId(i)).expect("tail id resolves");
                prop_assert_eq!(window.sequence, id);
                let slice = db.windows().slice(WindowId(i)).expect("tail id has elements");
                prop_assert_eq!(slice, &elements[window.start..window.start + WINDOW_LEN]);
            }
            // ...and the store's arena agrees with the dataset about the
            // appended sequence.
            prop_assert_eq!(
                db.windows().arena().sequence_slice(id).expect("arena holds the new sequence"),
                elements.as_slice()
            );

            before = capture(db.windows());
        }
    }
}
