//! [`WireClient`] policy tests against stub listeners that misbehave on
//! purpose: accept-then-stall, respond-slowly, reset-mid-frame, and always
//! refuse. No failpoints here — the stubs *are* the faults — so this binary
//! runs freely in parallel.

use std::io::Write;
use std::net::{SocketAddr, TcpListener};
use std::time::{Duration, Instant};

use ssr_core::client::{backoff_delay, ClientConfig, ClientError, WireClient};
use ssr_core::wire::{Request, Response, WireError};
use ssr_sequence::Symbol;
use ssr_storage::{read_frame, write_frame};

/// A fast-failing config for the stub scenarios: tight deadlines, tiny
/// backoff, fixed seed.
fn test_config() -> ClientConfig {
    ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(200),
        max_attempts: 3,
        base_backoff: Duration::from_millis(2),
        max_backoff: Duration::from_millis(8),
        jitter_seed: 7,
        ..ClientConfig::default()
    }
}

/// Binds a stub listener and runs `serve` on it in a background thread.
fn stub(serve: impl FnOnce(TcpListener) + Send + 'static) -> SocketAddr {
    let listener = TcpListener::bind("127.0.0.1:0").expect("stub binds");
    let addr = listener.local_addr().expect("stub addr");
    std::thread::spawn(move || serve(listener));
    addr
}

#[test]
fn a_stalled_server_costs_bounded_time_and_a_typed_retryable() {
    // Accepts every connection, never writes a byte.
    let addr = stub(|listener| {
        let mut held = Vec::new();
        while let Ok((stream, _)) = listener.accept() {
            held.push(stream); // keep the sockets open so reads stall
        }
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    let started = Instant::now();
    match client.request(&Request::Ping) {
        Err(ClientError::Retryable { attempts, last }) => {
            assert_eq!(attempts, 3, "the whole budget is spent");
            assert!(last.contains("io"), "the stall surfaces as io: {last}");
        }
        other => panic!("expected a retryable failure, got {other:?}"),
    }
    // 3 read deadlines plus 2 backoffs, with generous slack: the client
    // must never hang past its own arithmetic.
    assert!(
        started.elapsed() < Duration::from_secs(2),
        "a stalled server must cost bounded wall-clock"
    );
    assert_eq!(client.retries(), 2, "attempts beyond the first");
}

#[test]
fn a_slow_server_within_the_deadline_succeeds_without_retries() {
    let addr = stub(|listener| {
        let (mut stream, _) = listener.accept().expect("accept");
        let request = read_frame(&mut stream, 1 << 20)
            .expect("request frame")
            .expect("request present");
        assert!(Request::<Symbol>::decode_payload(&request).is_ok());
        // Slow, but inside the client's 200ms read deadline.
        std::thread::sleep(Duration::from_millis(80));
        write_frame(&mut stream, &Response::Pong.encode_payload()).expect("pong");
        stream.flush().expect("flush");
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    assert!(matches!(
        client.request(&Request::Ping).expect("slow but fine"),
        Response::Pong
    ));
    assert_eq!(client.retries(), 0);
}

#[test]
fn a_reset_mid_frame_is_retried_and_the_second_attempt_wins() {
    let addr = stub(|listener| {
        // First connection: read the request, write half a frame, vanish.
        let (mut stream, _) = listener.accept().expect("accept 1");
        let _ = read_frame(&mut stream, 1 << 20);
        let frame_prefix = [8u8, 0, 0, 0, 0xDE, 0xAD]; // a lying half-header
        let _ = stream.write_all(&frame_prefix);
        drop(stream);
        // Second connection: behave.
        let (mut stream, _) = listener.accept().expect("accept 2");
        let _ = read_frame(&mut stream, 1 << 20);
        write_frame(&mut stream, &Response::Pong.encode_payload()).expect("pong");
        stream.flush().expect("flush");
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    assert!(matches!(
        client
            .request(&Request::Ping)
            .expect("second attempt answers"),
        Response::Pong
    ));
    assert_eq!(client.retries(), 1, "exactly the cut attempt was retried");
}

#[test]
fn overloaded_answers_are_retried_until_the_budget_runs_out() {
    let addr = stub(|listener| {
        while let Ok((mut stream, _)) = listener.accept() {
            while let Ok(Some(payload)) = read_frame(&mut stream, 1 << 20) {
                assert!(Request::<Symbol>::decode_payload(&payload).is_ok());
                let refusal = Response::Error(WireError::Overloaded).encode_payload();
                if write_frame(&mut stream, &refusal).is_err() {
                    break;
                }
                let _ = stream.flush();
            }
        }
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    match client.request(&Request::Stats) {
        Err(ClientError::Retryable { attempts, last }) => {
            assert_eq!(attempts, 3);
            assert!(last.contains("overloaded"), "cause is preserved: {last}");
        }
        other => panic!("expected a retryable failure, got {other:?}"),
    }
    assert_eq!(client.retries(), 2);
}

#[test]
fn fatal_server_errors_come_back_verbatim_without_retries() {
    let addr = stub(|listener| {
        let (mut stream, _) = listener.accept().expect("accept");
        let _ = read_frame(&mut stream, 1 << 20);
        let refusal = Response::Error(WireError::ElementMismatch {
            expected: "pitch".into(),
            found: "symbol".into(),
        })
        .encode_payload();
        write_frame(&mut stream, &refusal).expect("refusal");
        stream.flush().expect("flush");
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    match client
        .request(&Request::Ping)
        .expect("the error is the answer")
    {
        Response::Error(WireError::ElementMismatch { expected, found }) => {
            assert_eq!((expected.as_str(), found.as_str()), ("pitch", "symbol"));
        }
        other => panic!("expected the server's refusal verbatim, got {other:?}"),
    }
    assert_eq!(client.retries(), 0, "a retry cannot fix a mismatch");
}

#[test]
fn shutdown_is_never_retried() {
    // Accepts and hangs up before responding: the classic ambiguous
    // failure. For any other request that is a retry; for Shutdown the
    // client must refuse to guess.
    let addr = stub(|listener| {
        while let Ok((stream, _)) = listener.accept() {
            drop(stream);
        }
    });
    let mut client = WireClient::<Symbol>::new(addr, test_config()).expect("client");
    match client.request(&Request::Shutdown) {
        Err(ClientError::Fatal(msg)) => {
            assert!(
                msg.contains("shutdown not retried"),
                "the refusal explains itself: {msg}"
            );
        }
        other => panic!("expected a fatal single-attempt failure, got {other:?}"),
    }
    assert_eq!(client.retries(), 0, "shutdown gets exactly one attempt");
}

#[test]
fn a_backoff_that_would_blow_the_deadline_returns_without_sleeping() {
    // A server that refuses instantly, forever: every attempt is cheap, so
    // the request's wall-clock is dominated by backoff sleeps — exactly the
    // budget the per-op deadline is supposed to protect.
    let addr = stub(|listener| {
        while let Ok((mut stream, _)) = listener.accept() {
            while let Ok(Some(payload)) = read_frame(&mut stream, 1 << 20) {
                assert!(Request::<Symbol>::decode_payload(&payload).is_ok());
                let refusal = Response::Error(WireError::Overloaded).encode_payload();
                if write_frame(&mut stream, &refusal).is_err() {
                    break;
                }
                let _ = stream.flush();
            }
        }
    });
    let config = ClientConfig {
        connect_timeout: Duration::from_millis(500),
        read_timeout: Duration::from_millis(200),
        write_timeout: Duration::from_millis(200),
        max_attempts: 4,
        base_backoff: Duration::from_millis(2000),
        max_backoff: Duration::from_millis(2000),
        jitter_seed: 11,
        op_deadline: Some(Duration::from_millis(50)),
        ..ClientConfig::default()
    };
    // The seeded schedule is known in advance: the very first backoff sits
    // in [1000ms, 2000ms], which cannot fit the 50ms budget left after a
    // local-loopback attempt. The client must see that coming.
    let first_delay = backoff_delay(&config, 1);
    assert!(
        first_delay >= Duration::from_millis(1000),
        "schedule envelope: exp/2 floor"
    );
    let mut client = WireClient::<Symbol>::new(addr, config).expect("client");
    let started = Instant::now();
    match client.request(&Request::Ping) {
        Err(ClientError::DeadlineExceeded { attempts, elapsed }) => {
            assert_eq!(attempts, 1, "the budget died before a second attempt");
            assert!(
                elapsed < first_delay,
                "the recorded elapsed time contains no backoff sleep"
            );
        }
        other => panic!("expected DeadlineExceeded, got {other:?}"),
    }
    // The proof it never slept: total wall-clock stays under the schedule's
    // first delay (one instant refusal plus bookkeeping, not 100ms+).
    assert!(
        started.elapsed() < first_delay,
        "DeadlineExceeded must not pay the sleep it refused: {:?} >= {:?}",
        started.elapsed(),
        first_delay
    );
    assert_eq!(client.retries(), 1, "the noted retry was never attempted");
}

#[test]
fn a_dead_first_address_falls_through_to_the_second_inside_one_attempt() {
    // A freshly-freed port: connecting gets an instant refusal.
    let dead = {
        let throwaway = TcpListener::bind("127.0.0.1:0").expect("bind");
        throwaway.local_addr().expect("addr")
    };
    let live = stub(|listener| {
        let (mut stream, _) = listener.accept().expect("accept");
        let _ = read_frame(&mut stream, 1 << 20);
        write_frame(&mut stream, &Response::Pong.encode_payload()).expect("pong");
        stream.flush().expect("flush");
    });
    // Multi-address candidates: the dead one first, on purpose.
    let mut client = WireClient::<Symbol>::new(&[dead, live][..], test_config()).expect("client");
    assert_eq!(client.addrs(), &[dead, live], "resolution order preserved");
    assert!(matches!(
        client
            .request(&Request::Ping)
            .expect("second address answers"),
        Response::Pong
    ));
    // The fall-through happens inside `connect`, not by burning a retry:
    // candidate iteration is free, the retry budget is for real weather.
    assert_eq!(client.retries(), 0);
}

#[test]
fn the_backoff_schedule_is_a_pure_function_of_the_seed() {
    let config = ClientConfig {
        base_backoff: Duration::from_millis(25),
        max_backoff: Duration::from_millis(1000),
        jitter_seed: 42,
        ..ClientConfig::default()
    };
    let schedule: Vec<Duration> = (1..=8).map(|n| backoff_delay(&config, n)).collect();
    // Replaying the seed replays the schedule exactly.
    assert_eq!(
        schedule,
        (1..=8)
            .map(|n| backoff_delay(&config, n))
            .collect::<Vec<_>>()
    );
    // Every delay sits inside its exponential envelope: [exp/2, exp] for
    // exp = base × 2^(n-1) capped at max_backoff.
    for (i, delay) in schedule.iter().enumerate() {
        let exp = (25u64 << i).min(1000);
        let ms = delay.as_millis() as u64;
        assert!(
            ms >= exp / 2 && ms <= exp,
            "attempt {}: {ms}ms outside [{}, {exp}]",
            i + 1,
            exp / 2
        );
    }
    // The cap holds forever after.
    assert!(backoff_delay(&config, 32).as_millis() <= 1000);
    // A different seed yields a different schedule (overwhelmingly likely
    // across eight draws; pinned here so jitter is demonstrably seeded).
    let other = ClientConfig {
        jitter_seed: 43,
        ..config.clone()
    };
    assert_ne!(
        schedule,
        (1..=8)
            .map(|n| backoff_delay(&other, n))
            .collect::<Vec<_>>(),
        "seeds must actually steer the jitter"
    );
}
