//! Hostile-bytes battery for the serve wire protocol, mirroring
//! `wal_corruption.rs`: a valid framed request is subjected to truncation at
//! **every byte prefix** and a bit flip at **every position**, first through
//! the pure decoders and then over a live TCP connection. The invariant is
//! the ISSUE's: malformed frames always yield a *typed* protocol error —
//! never a panic, never a hang, never a silently wrong decode.

use std::io::Write;
use std::net::TcpStream;
use std::time::Duration;

use ssr_core::serve::{ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response, WireError};
use ssr_core::{FrameworkConfig, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};
use ssr_storage::{decode_frame, frame_bytes, read_frame, write_frame, StorageError};

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

fn sample_request() -> Request<Symbol> {
    Request::Query {
        spec: QuerySpec::Type2 { epsilon: 2.0 },
        queries: vec![sym("ACDEFGHIKLMNPQRSTVWY"), sym("ACACACAC")],
    }
}

fn sample_frame() -> Vec<u8> {
    frame_bytes(&sample_request().encode_payload()).expect("valid payload frames")
}

#[test]
fn every_frame_truncation_is_a_typed_error() {
    let frame = sample_frame();
    for cut in 0..frame.len() {
        let err = decode_frame(&frame[..cut]).expect_err("strict prefix must not decode");
        assert!(
            matches!(
                err,
                StorageError::Truncated { .. }
                    | StorageError::TrailingBytes { .. }
                    | StorageError::Malformed(_)
                    | StorageError::ChecksumMismatch { .. }
            ),
            "cut at {cut}: unexpected error {err:?}"
        );
    }
}

#[test]
fn every_frame_bit_flip_is_a_typed_error() {
    let frame = sample_frame();
    for pos in 0..frame.len() {
        for bit in 0..8 {
            let mut damaged = frame.clone();
            damaged[pos] ^= 1 << bit;
            // The length prefix no longer matches the buffer, the CRC no
            // longer matches the payload, or the payload CRC-mismatches:
            // always an error, never a silent decode of flipped bytes.
            let err = decode_frame(&damaged).expect_err("flipped frame must not decode");
            assert!(
                matches!(
                    err,
                    StorageError::Truncated { .. }
                        | StorageError::TrailingBytes { .. }
                        | StorageError::Malformed(_)
                        | StorageError::ChecksumMismatch { .. }
                ),
                "flip at {pos}.{bit}: unexpected error {err:?}"
            );
        }
    }
}

#[test]
fn every_payload_truncation_is_a_typed_error() {
    let payload = sample_request().encode_payload();
    for cut in 0..payload.len() {
        // Every strict prefix is missing bytes of some field (the decoder
        // demands exact consumption), so `Ok` here would be a codec hole.
        assert!(
            Request::<Symbol>::decode_payload(&payload[..cut]).is_err(),
            "payload prefix {cut} decoded"
        );
    }
}

#[test]
fn every_payload_bit_flip_decodes_or_errors_but_never_panics() {
    let payload = sample_request().encode_payload();
    for pos in 0..payload.len() {
        for bit in 0..8 {
            let mut damaged = payload.clone();
            damaged[pos] ^= 1 << bit;
            // A flip can land in a float radius or an element and still form
            // a *different valid* request — that is the frame CRC's job to
            // catch, not the payload codec's. The payload decoder's contract
            // is narrower: typed error or clean decode, no panic, no huge
            // allocation (length prefixes are capped against the buffer).
            let _ = Request::<Symbol>::decode_payload(&damaged);
        }
    }
}

fn tiny_server() -> Server<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let db = SubsequenceDatabase::builder(config, Levenshtein::new())
        .add_sequence(Sequence::new(sym("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM")))
        .build()
        .expect("tiny database builds");
    Server::bind(
        db,
        "127.0.0.1:0",
        ServeConfig {
            workers: 2,
            read_timeout: Some(Duration::from_secs(5)),
            ..ServeConfig::default()
        },
    )
    .expect("server binds")
}

/// Sends raw bytes, half-closes the write side (so a server blocked on a
/// lying length prefix sees EOF instead of waiting forever) and returns the
/// server's framed answer, if any. The read timeout converts any residual
/// hang into a test failure rather than a stuck suite.
fn send_raw(addr: std::net::SocketAddr, bytes: &[u8]) -> Option<Response> {
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(bytes).expect("send");
    stream.flush().unwrap();
    // Best-effort: the server may already have answered and reset the
    // connection, in which case the half-close finds it gone.
    let _ = stream.shutdown(std::net::Shutdown::Write);
    match read_frame(&mut stream, 16 * 1024 * 1024) {
        Ok(Some(payload)) => {
            Some(Response::decode_payload(&payload).expect("server answers are well-formed"))
        }
        // The server may also just close on frame-level damage — either a
        // clean FIN or, when it closes with our damaged bytes still unread,
        // an RST surfacing as a reset/EOF error. Both count as "no answer".
        Ok(None) => None,
        Err(StorageError::Io(err)) => match err.kind() {
            std::io::ErrorKind::ConnectionReset
            | std::io::ErrorKind::ConnectionAborted
            | std::io::ErrorKind::BrokenPipe
            | std::io::ErrorKind::UnexpectedEof => None,
            kind => panic!("read failed ({kind:?}) — a hang converted to timeout?"),
        },
        Err(err) => panic!("server sent a damaged frame: {err}"),
    }
}

#[test]
fn live_truncation_battery_yields_typed_errors_and_no_hangs() {
    let server = tiny_server();
    let addr = server.local_addr();
    let frame = sample_frame();

    // Sub-sample prefixes to keep the live battery fast: every cut inside
    // the 8-byte header, then every fourth cut through the payload.
    let cuts: Vec<usize> = (1..frame.len()).filter(|&c| c <= 8 || c % 4 == 0).collect();
    for cut in cuts {
        match send_raw(addr, &frame[..cut]) {
            None => {}
            Some(Response::Error(_)) => {}
            Some(other) => panic!("cut {cut}: unexpected success {other:?}"),
        }
    }

    // The server survived the whole battery: a valid request still answers.
    let mut client = ssr_core::Client::<Symbol>::connect(addr).expect("connect");
    match client.request(&sample_request()).expect("valid request") {
        Response::Outcomes(outcomes) => assert_eq!(outcomes.len(), 2),
        other => panic!("expected outcomes, got {other:?}"),
    }
    server.shutdown();
}

#[test]
fn live_flip_battery_yields_typed_errors_and_no_hangs() {
    let server = tiny_server();
    let addr = server.local_addr();
    let frame = sample_frame();

    // Every header byte plus a stride through the payload, one bit each.
    let positions: Vec<usize> = (0..frame.len()).filter(|&p| p < 8 || p % 4 == 0).collect();
    for pos in positions {
        let mut damaged = frame.clone();
        damaged[pos] ^= 0x10;
        match send_raw(addr, &damaged) {
            None => {}
            Some(Response::Error(_)) => {}
            Some(other) => panic!("flip at {pos}: unexpected success {other:?}"),
        }
    }

    let mut client = ssr_core::Client::<Symbol>::connect(addr).expect("connect");
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    server.shutdown();
}

#[test]
fn payload_damage_keeps_the_connection_usable() {
    let server = tiny_server();
    let addr = server.local_addr();

    // A frame whose CRC is valid but whose payload has an unknown request
    // kind: the frame boundary is trustworthy, so the server must answer a
    // typed error and keep serving on the *same* connection.
    let bogus = frame_bytes(&[ssr_core::WIRE_VERSION, 250]).unwrap();
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&bogus).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("answer");
    match Response::decode_payload(&payload).unwrap() {
        Response::Error(WireError::Malformed(_)) => {}
        other => panic!("expected malformed, got {other:?}"),
    }

    // Same socket, now a valid request.
    write_frame(&mut stream, &Request::<Symbol>::Ping.encode_payload()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("answer");
    assert!(matches!(
        Response::decode_payload(&payload).unwrap(),
        Response::Pong
    ));

    // A wrong element tag is likewise a typed, connection-preserving error.
    let mismatched: Request<ssr_sequence::Pitch> = Request::Query {
        spec: QuerySpec::Type1 { epsilon: 1.0 },
        queries: vec![vec![]],
    };
    write_frame(&mut stream, &mismatched.encode_payload()).unwrap();
    let payload = read_frame(&mut stream, 1 << 20).unwrap().expect("answer");
    match Response::decode_payload(&payload).unwrap() {
        Response::Error(WireError::ElementMismatch { expected, found }) => {
            assert_eq!(expected, "symbol");
            assert_eq!(found, "pitch");
        }
        other => panic!("expected element mismatch, got {other:?}"),
    }
    drop(stream);
    server.shutdown();
}

#[test]
fn oversized_length_prefix_is_refused_without_reading_the_payload() {
    let server = tiny_server();
    let addr = server.local_addr();

    // A header promising a 1 GiB payload. The server must refuse from the
    // length prefix alone — responding (or closing) immediately instead of
    // trying to read or allocate a gigabyte.
    let mut hostile = Vec::new();
    hostile.extend_from_slice(&(1u32 << 30).to_le_bytes());
    hostile.extend_from_slice(&0u32.to_le_bytes());
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(10)))
        .unwrap();
    stream.write_all(&hostile).unwrap();
    // Deliberately NOT half-closing: the refusal must not depend on EOF.
    match read_frame(&mut stream, 1 << 20) {
        Ok(Some(payload)) => {
            assert!(matches!(
                Response::decode_payload(&payload).unwrap(),
                Response::Error(_)
            ));
        }
        Ok(None) => {}
        Err(err) => panic!("expected a typed refusal, got {err}"),
    }
    server.shutdown();
}
