//! Snapshot parity, mirroring `engine_parity`: a database loaded from a
//! snapshot must be **query-parity-identical** to the database it was saved
//! from — same results, same per-query statistics (including index
//! distance-call counts, which depend on the exact index structure and
//! reference-visit order) — for Type I/II/III queries, at every thread
//! count. This is the property that makes cold-starting from disk safe: a
//! restart may never change what the system answers or how it accounts for
//! the work.

use proptest::prelude::*;

use ssr_core::{FrameworkConfig, QueryEngine, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

fn sym_seq(max_len: usize) -> impl Strategy<Value = Vec<Symbol>> {
    prop::collection::vec(
        (0u8..4).prop_map(|i| Symbol::from_char(b"ACGT"[i as usize] as char)),
        16..max_len,
    )
}

fn db(texts: &[Vec<Symbol>]) -> Option<SubsequenceDatabase<Symbol, Levenshtein>> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for t in texts {
        builder = builder.add_sequence(Sequence::new(t.clone()));
    }
    builder.build().ok()
}

fn roundtrip(
    database: &SubsequenceDatabase<Symbol, Levenshtein>,
) -> SubsequenceDatabase<Symbol, Levenshtein> {
    SubsequenceDatabase::from_snapshot_bytes(database.snapshot_bytes(), Levenshtein::new())
        .expect("a freshly saved snapshot always loads")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    #[test]
    fn loaded_databases_answer_all_query_types_identically(
        texts in prop::collection::vec(sym_seq(60), 1..4),
        queries in prop::collection::vec(sym_seq(40), 1..4),
        epsilon in 0.0f64..4.0,
    ) {
        let Some(database) = db(&texts) else { return Ok(()); };
        let loaded = roundtrip(&database);
        prop_assert_eq!(loaded.window_count(), database.window_count());
        prop_assert_eq!(
            loaded.build_distance_calls(),
            database.build_distance_calls()
        );

        for query in queries.iter().map(|q| Sequence::new(q.clone())) {
            let a1 = database.query_type1(&query, epsilon);
            let b1 = loaded.query_type1(&query, epsilon);
            prop_assert_eq!(&a1.result, &b1.result);
            prop_assert_eq!(&a1.stats, &b1.stats);

            let a2 = database.query_type2(&query, epsilon);
            let b2 = loaded.query_type2(&query, epsilon);
            prop_assert_eq!(&a2.result, &b2.result);
            prop_assert_eq!(&a2.stats, &b2.stats);

            let a3 = database.query_type3(&query, 4.0, 1.0);
            let b3 = loaded.query_type3(&query, 4.0, 1.0);
            prop_assert_eq!(&a3.result, &b3.result);
            prop_assert_eq!(&a3.stats, &b3.stats);
        }
    }

    #[test]
    fn loaded_databases_are_batch_identical_at_every_thread_count(
        texts in prop::collection::vec(sym_seq(60), 1..4),
        queries in prop::collection::vec(sym_seq(40), 1..5),
        epsilon in 0.0f64..4.0,
    ) {
        let Some(database) = db(&texts) else { return Ok(()); };
        let loaded = roundtrip(&database);
        let queries: Vec<Sequence<Symbol>> =
            queries.into_iter().map(Sequence::new).collect();

        let reference = QueryEngine::new(&database).batch_type1(&queries, epsilon);
        for threads in [1usize, 2, 4] {
            let batch = QueryEngine::new(&loaded)
                .with_threads(threads)
                .batch_type1(&queries, epsilon);
            prop_assert_eq!(reference.outcomes.len(), batch.outcomes.len());
            for (i, (a, b)) in reference.outcomes.iter().zip(&batch.outcomes).enumerate() {
                prop_assert_eq!(&a.result, &b.result, "query {} threads {}", i, threads);
                prop_assert_eq!(&a.stats, &b.stats, "query {} threads {}", i, threads);
            }
        }

        let reference3 = QueryEngine::new(&database).batch_type3(&queries, 4.0, 1.0);
        for threads in [2usize, 4] {
            let batch = QueryEngine::new(&loaded)
                .with_threads(threads)
                .batch_type3(&queries, 4.0, 1.0);
            for (a, b) in reference3.outcomes.iter().zip(&batch.outcomes) {
                prop_assert_eq!(&a.result, &b.result);
                prop_assert_eq!(&a.stats, &b.stats);
            }
        }
    }

    #[test]
    fn snapshots_are_deterministic_and_stable_across_a_reload_cycle(
        texts in prop::collection::vec(sym_seq(50), 1..3),
    ) {
        let Some(database) = db(&texts) else { return Ok(()); };
        let bytes = database.snapshot_bytes();
        // Saving is deterministic…
        prop_assert_eq!(&bytes, &database.snapshot_bytes());
        // …and save → load → save is a fixed point.
        let loaded = roundtrip(&database);
        prop_assert_eq!(&bytes, &loaded.snapshot_bytes());
    }
}
