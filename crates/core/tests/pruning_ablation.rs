//! End-to-end ablation of the threshold-aware pruning cascade: with pruning
//! disabled, every query must return **bit-identical results and
//! distance-call statistics** — only `dp_cells_evaluated` may grow (and
//! `pruned_by_lower_bound` must drop to zero). This is the in-repo proof that
//! the pruning machinery is pure performance, never behaviour, and it pins
//! the headline saving: the full pipeline must evaluate at least 3× fewer DP
//! cells with pruning on than off at this (smoke-like) scale.
//!
//! Lives in its own integration-test binary because the ablation knob is
//! process-global.

use ssr_core::{FrameworkConfig, IndexBackend, QueryEngine, QueryStats, SubsequenceDatabase};
use ssr_distance::{set_pruning_enabled, Levenshtein};
use ssr_sequence::{Sequence, Symbol};

fn seq(text: &str) -> Sequence<Symbol> {
    Sequence::new(text.chars().map(Symbol::from_char).collect())
}

/// A deterministic, non-trivial database: repeated noisy context with a few
/// planted motifs, long enough that verification dominates.
const MOTIF: &str = "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY";

fn build_db(backend: IndexBackend) -> SubsequenceDatabase<Symbol, Levenshtein> {
    let alphabet: Vec<char> = "ACDEFGHIKLMNPQRSTVWY".chars().collect();
    let mut sequences = Vec::new();
    for s in 0..2u64 {
        let mut text = String::new();
        let mut state = s * 2654435761 + 12345;
        for _ in 0..140 {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            text.push(alphabet[(state >> 33) as usize % alphabet.len()]);
        }
        // Plant the motif mid-sequence so queries have real matches.
        text.insert_str(60, MOTIF);
        sequences.push(seq(&text));
    }
    // Mirrors the smoke bench shape: λ = 40 (windows of 20) at radius 8.
    let mut builder = SubsequenceDatabase::builder(
        FrameworkConfig::new(40)
            .with_max_shift(2)
            .with_backend(backend),
        Levenshtein::new(),
    );
    for s in sequences {
        builder = builder.add_sequence(s);
    }
    builder.build().expect("ablation database builds")
}

fn queries() -> Vec<Sequence<Symbol>> {
    vec![
        seq(&format!("WWWWWWWWWW{MOTIF}WWWWWWWWWW")),
        seq("QLNWYHKTQDGARESVFCPIQLNWYHKTQDGARESVFCPIQLNWYHKTQDGARESVFCPI"),
    ]
}

/// Strips the fields pruning is allowed to change.
fn frozen(stats: &QueryStats) -> QueryStats {
    QueryStats {
        dp_cells_evaluated: 0,
        pruned_by_lower_bound: 0,
        ..*stats
    }
}

#[test]
fn pruning_is_pure_performance() {
    for backend in [
        IndexBackend::ReferenceNet,
        IndexBackend::CoverTree,
        IndexBackend::MvReference { references: 4 },
        IndexBackend::LinearScan,
    ] {
        let db = build_db(backend);
        let qs = queries();
        let engine = QueryEngine::new(&db);

        // Type III's ε-sweep re-runs Type I at several radii, so comparing
        // it unpruned on every backend would dominate the whole test suite;
        // the default backend exercises the sweep (incl. the memo-backed
        // `verify_tau` path), Type I covers the per-backend tau threading.
        let sweep = backend == IndexBackend::ReferenceNet;
        set_pruning_enabled(true);
        let pruned1 = engine.batch_type1(&qs, 5.0);
        let pruned3 = sweep.then(|| engine.batch_type3(&qs, 8.0, 2.0));
        set_pruning_enabled(false);
        let full1 = engine.batch_type1(&qs, 5.0);
        let full3 = sweep.then(|| engine.batch_type3(&qs, 8.0, 2.0));
        set_pruning_enabled(true);

        for (a, b) in pruned1.outcomes.iter().zip(&full1.outcomes) {
            assert_eq!(a.result, b.result, "{backend}: Type I results changed");
            assert_eq!(
                frozen(&a.stats),
                frozen(&b.stats),
                "{backend}: Type I distance-call stats changed"
            );
        }
        if let (Some(pruned3), Some(full3)) = (&pruned3, &full3) {
            for (a, b) in pruned3.outcomes.iter().zip(&full3.outcomes) {
                assert_eq!(a.result, b.result, "{backend}: Type III results changed");
                assert_eq!(
                    frozen(&a.stats),
                    frozen(&b.stats),
                    "{backend}: Type III distance-call stats changed"
                );
            }
        }

        let type3_cells = |b: &Option<ssr_core::BatchOutcome<_>>| {
            b.as_ref().map_or(0, |b| b.total_stats().dp_cells_evaluated)
        };
        let pruned_cells = pruned1.total_stats().dp_cells_evaluated + type3_cells(&pruned3);
        let full_cells = full1.total_stats().dp_cells_evaluated + type3_cells(&full3);
        assert_eq!(
            full1.total_stats().pruned_by_lower_bound
                + full3
                    .as_ref()
                    .map_or(0, |b| b.total_stats().pruned_by_lower_bound),
            0,
            "{backend}: disabled pruning still recorded lower-bound prunes"
        );
        assert!(
            pruned_cells * 3 <= full_cells,
            "{backend}: expected ≥3× DP-cell saving, got {pruned_cells} vs {full_cells}"
        );
    }
}
