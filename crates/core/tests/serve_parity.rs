//! Served-vs-in-process parity: results that cross the wire must be
//! **bit-identical** — matches and work statistics — to the same queries run
//! through a local [`QueryEngine`]. Alongside parity, this file pins the
//! server's operational contracts: cache replays return the originally
//! computed outcome flagged `cached`, a saturated admission queue rejects
//! with a typed `Overloaded` (while `Ping`/`Stats` keep answering), and both
//! shutdown paths (handle and wire) drain cleanly.

use std::time::Duration;

use ssr_core::serve::{Client, ServeConfig, Server};
use ssr_core::wire::{QuerySpec, Request, Response, WireError};
use ssr_core::{FrameworkConfig, QueryEngine, SubsequenceDatabase};
use ssr_distance::Levenshtein;
use ssr_sequence::{Sequence, Symbol};

fn sym(text: &str) -> Vec<Symbol> {
    text.chars().map(Symbol::from_char).collect()
}

const DB_TEXTS: &[&str] = &[
    "MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM",
    "ACDEFGHIKLMNPQRSTVWYACDEFGHIKLMNPQRSTVWY",
    "GGGGGGGGGGGGGGGGGGGGGGGGGGGGGGGG",
    "ACACACACACACACACACACACACACACACAC",
];

const QUERY_TEXTS: &[&str] = &[
    "YYYYACDEFGHIKLMNPQRSTVWYYYYY",
    "ACACACACACACACAC",
    "QQQQQQQQQQQQQQQQQQQQ",
    "YYYYACDEFGHIKLMNPQRSTVWYYYYY", // exact duplicate of the first
];

fn build_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
    let config = FrameworkConfig::new(8).with_max_shift(1);
    let mut builder = SubsequenceDatabase::builder(config, Levenshtein::new());
    for text in DB_TEXTS {
        builder = builder.add_sequence(Sequence::new(sym(text)));
    }
    builder.build().expect("test database builds")
}

fn queries() -> Vec<Sequence<Symbol>> {
    QUERY_TEXTS.iter().map(|t| Sequence::new(sym(t))).collect()
}

fn query_request(spec: QuerySpec) -> Request<Symbol> {
    Request::Query {
        spec,
        queries: QUERY_TEXTS.iter().map(|t| sym(t)).collect(),
    }
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        workers: 2,
        replicas: 2,
        read_timeout: Some(Duration::from_secs(10)),
        ..ServeConfig::default()
    }
}

#[test]
fn served_outcomes_are_bit_identical_to_in_process_outcomes() {
    let db = build_db();
    let engine = QueryEngine::new(&db);
    let specs = [
        QuerySpec::Type1 { epsilon: 2.0 },
        QuerySpec::Type2 { epsilon: 3.0 },
        QuerySpec::Type3 {
            epsilon_max: 4.0,
            epsilon_increment: 1.0,
        },
    ];

    let server = Server::bind(build_db(), "127.0.0.1:0", serve_config()).expect("bind");
    let mut client = Client::<Symbol>::connect(server.local_addr()).expect("connect");

    for spec in specs {
        // The in-process reference, through the same engine the server uses.
        let expected: Vec<(Vec<ssr_core::SubsequenceMatch>, ssr_core::QueryStats)> = match spec {
            QuerySpec::Type1 { epsilon } => engine
                .batch_type1(&queries(), epsilon)
                .outcomes
                .into_iter()
                .map(|o| (o.result, o.stats))
                .collect(),
            QuerySpec::Type2 { epsilon } => engine
                .batch_type2(&queries(), epsilon)
                .outcomes
                .into_iter()
                .map(|o| (o.result.into_iter().collect(), o.stats))
                .collect(),
            QuerySpec::Type3 {
                epsilon_max,
                epsilon_increment,
            } => engine
                .batch_type3(&queries(), epsilon_max, epsilon_increment)
                .outcomes
                .into_iter()
                .map(|o| (o.result.into_iter().collect(), o.stats))
                .collect(),
        };

        let response = client.request(&query_request(spec)).expect("request");
        let Response::Outcomes(served) = response else {
            panic!("expected outcomes, got {response:?}");
        };
        assert_eq!(served.len(), expected.len());
        for (i, (wire, (matches, stats))) in served.iter().zip(&expected).enumerate() {
            assert_eq!(&wire.matches, matches, "spec {spec:?} query {i}: matches");
            assert_eq!(&wire.stats, stats, "spec {spec:?} query {i}: stats");
        }
    }
    server.shutdown();
}

#[test]
fn cache_replays_the_original_outcome_bit_identically() {
    let server = Server::bind(build_db(), "127.0.0.1:0", serve_config()).expect("bind");
    let mut client = Client::<Symbol>::connect(server.local_addr()).expect("connect");
    let request = query_request(QuerySpec::Type3 {
        epsilon_max: 4.0,
        epsilon_increment: 1.0,
    });

    let Response::Outcomes(first) = client.request(&request).expect("first") else {
        panic!("expected outcomes");
    };
    // The duplicate query inside the batch hits the entry its first
    // occurrence populated only on the *next* request; within one batch the
    // engine's own dedup already collapses it.
    let Response::Outcomes(second) = client.request(&request).expect("second") else {
        panic!("expected outcomes");
    };
    assert!(
        second.iter().all(|o| o.cached),
        "second round must be answered by the result cache"
    );
    for (i, (a, b)) in first.iter().zip(&second).enumerate() {
        assert_eq!(a.matches, b.matches, "query {i}: cached matches diverge");
        assert_eq!(a.stats, b.stats, "query {i}: cached stats diverge");
    }

    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    assert_eq!(stats.cache_hits, QUERY_TEXTS.len() as u64);
    assert_eq!(stats.cache_misses, QUERY_TEXTS.len() as u64);
    // The engine deduplicated the in-batch duplicate, but the cache stores
    // per distinct key, so three entries back the four queries.
    assert_eq!(stats.cache_entries, 3);
    assert!(stats.queries_executed >= 3);
    assert_eq!(stats.replicas, 2);
    server.shutdown();
}

#[test]
fn saturated_queue_rejects_with_typed_overload_and_keeps_answering_pings() {
    // `queue_depth: 0` refuses every admission deterministically — no racing
    // against worker drain speed.
    let config = ServeConfig {
        queue_depth: 0,
        ..serve_config()
    };
    let server = Server::bind(build_db(), "127.0.0.1:0", config).expect("bind");
    let mut client = Client::<Symbol>::connect(server.local_addr()).expect("connect");

    let request = query_request(QuerySpec::Type1 { epsilon: 2.0 });
    for round in 0..3 {
        match client
            .request(&request)
            .expect("request survives rejection")
        {
            Response::Error(WireError::Overloaded) => {}
            other => panic!("round {round}: expected overload, got {other:?}"),
        }
    }
    // Control traffic bypasses admission: the overloaded server still pings
    // and still reports stats, including the rejections it just issued.
    assert!(matches!(
        client.request(&Request::Ping).expect("ping"),
        Response::Pong
    ));
    let Response::Stats(stats) = client.request(&Request::Stats).expect("stats") else {
        panic!("expected stats");
    };
    assert_eq!(stats.rejected_overload, 3);
    assert_eq!(stats.queries_executed, 0);
    server.shutdown();
}

#[test]
fn wire_shutdown_drains_the_server() {
    let server = Server::bind(build_db(), "127.0.0.1:0", serve_config()).expect("bind");
    let addr = server.local_addr();
    let mut client = Client::<Symbol>::connect(addr).expect("connect");
    assert!(matches!(
        client.request(&Request::Shutdown).expect("shutdown ack"),
        Response::ShuttingDown
    ));
    // The handle join must complete promptly — the wire request already
    // closed the queue and woke the accept loop.
    server.shutdown();
    // New connections are refused or die unanswered once drained.
    if let Ok(mut late) = Client::<Symbol>::connect(addr) {
        assert!(late.request(&Request::Ping).is_err());
    }
}

#[test]
fn replicas_share_the_arena_and_answer_identically() {
    let db = build_db();
    let replica = db.clone_replica();
    // Same allocation, not equal bytes: the replica borrows the arena.
    assert!(std::ptr::eq(
        db.windows().arena() as *const _,
        replica.windows().arena() as *const _
    ));
    let query = Sequence::new(sym(QUERY_TEXTS[0]));
    let a = db.query_type2(&query, 3.0);
    let b = replica.query_type2(&query, 3.0);
    assert_eq!(a.result, b.result);
    assert_eq!(a.stats, b.stats);
    // Counters are private per replica: the replica's queries never moved
    // the original's query-time counters.
    let before = db.query_distance_counter().get();
    let _ = replica.query_type2(&query, 3.0);
    assert_eq!(db.query_distance_counter().get(), before);
}
