//! Batched, parallel query execution.
//!
//! The five-step pipeline is embarrassingly parallel across queries: every
//! query independently segments itself (step 3), filters against the shared
//! window index (step 4) and chains + verifies candidates (step 5). The
//! [`QueryEngine`] exploits that by fanning a batch of queries out over a
//! scoped worker pool ([`crate::parallel`]), while a shared, mutex-sharded
//! [`VerificationMemo`] caches verified subsequence-pair distances — a Type
//! III query's ε-sweep re-verifies the same pairs at every radius, and the
//! memo collapses those to one distance computation each.
//!
//! Determinism is a hard guarantee: each query is executed by exactly one
//! worker with the same per-query code path as the sequential API, memo keys
//! are namespaced per query, and index distance calls are attributed through
//! a thread-local tally ([`ssr_distance::CallCounter::thread_total`]), so a
//! batch produces **bit-identical results and statistics at every thread
//! count** — `threads = 1` simply runs the fan-out loop inline. Exact
//! duplicate queries (common under multi-user traffic) are detected up
//! front, executed once and replicated into their original batch positions.

use std::ops::Range;
use std::time::Instant;

use ssr_distance::SequenceDistance;
use ssr_sequence::{Element, Sequence, SequenceId};

use crate::database::SubsequenceDatabase;
use crate::parallel::{parallel_map, resolve_threads, ShardedMemo};
use crate::query::{ExecCtx, QueryOutcome, QueryStats, StageTimings, SubsequenceMatch};

/// Memo key: the engine-assigned query key plus the candidate pair's
/// provenance. Namespacing by query key keeps entries from distinct queries
/// apart, so sharing the memo across workers can never mix results.
type PairKey = (usize, usize, usize, usize, usize, usize);

/// A mutex-sharded cache of verified subsequence-pair distances, shared by
/// all workers of one batch.
pub struct VerificationMemo {
    inner: ShardedMemo<PairKey, f64>,
}

impl VerificationMemo {
    /// Creates a memo with the given number of shards.
    pub fn new(shards: usize) -> Self {
        VerificationMemo {
            inner: ShardedMemo::new(shards),
        }
    }

    /// Number of cached verified pairs.
    pub fn len(&self) -> usize {
        self.inner.len()
    }

    /// Whether the memo holds no entry.
    pub fn is_empty(&self) -> bool {
        self.inner.is_empty()
    }

    pub(crate) fn get(
        &self,
        query_key: usize,
        sequence: SequenceId,
        q: &Range<usize>,
        x: &Range<usize>,
    ) -> Option<f64> {
        self.inner
            .get(&(query_key, sequence.0, q.start, q.end, x.start, x.end))
    }

    pub(crate) fn insert(
        &self,
        query_key: usize,
        sequence: SequenceId,
        q: &Range<usize>,
        x: &Range<usize>,
        distance: f64,
    ) {
        self.inner.insert(
            (query_key, sequence.0, q.start, q.end, x.start, x.end),
            distance,
        );
    }
}

/// The result of a batch together with its execution accounting.
#[derive(Clone, Debug)]
pub struct BatchOutcome<R> {
    /// One outcome per input query, in input order. Duplicate queries share
    /// the outcome of their first occurrence.
    pub outcomes: Vec<QueryOutcome<R>>,
    /// Per-stage wall-clock summed over all executed queries (CPU time, not
    /// elapsed time — with `threads > 1` this exceeds [`Self::wall_ns`]).
    pub timings: StageTimings,
    /// End-to-end wall-clock of the batch, including fan-out overhead.
    pub wall_ns: u64,
    /// Resolved number of worker threads used.
    pub threads: usize,
    /// Number of distinct queries actually executed after deduplication.
    pub unique_queries: usize,
    /// Number of distinct verified pairs cached in the shared memo.
    pub memo_entries: usize,
}

impl<R> BatchOutcome<R> {
    /// Sums the per-query statistics into whole-batch totals. Deduplicated
    /// queries are counted once per input occurrence, mirroring `outcomes`.
    pub fn total_stats(&self) -> QueryStats {
        let mut total = QueryStats::default();
        for outcome in &self.outcomes {
            total.merge(&outcome.stats);
        }
        total
    }
}

/// A parallel, batched front-end to a [`SubsequenceDatabase`].
///
/// The engine borrows the database immutably, so any number of engines (and
/// plain [`SubsequenceDatabase::query_type1`]-style calls) can coexist.
///
/// ```
/// use ssr_core::{FrameworkConfig, QueryEngine, SubsequenceDatabase};
/// use ssr_distance::Levenshtein;
/// use ssr_sequence::{Sequence, Symbol};
///
/// fn seq(text: &str) -> Sequence<Symbol> {
///     Sequence::new(text.chars().map(Symbol::from_char).collect())
/// }
///
/// let config = FrameworkConfig::new(8).with_max_shift(1);
/// let db = SubsequenceDatabase::builder(config, Levenshtein::new())
///     .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
///     .build()
///     .unwrap();
/// let queries = vec![
///     seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY"),
///     seq("QQQQQQQQQQQQQQQQQQQQ"),
/// ];
/// let batch = QueryEngine::new(&db).with_threads(2).batch_type2(&queries, 3.0);
/// assert_eq!(batch.outcomes.len(), 2);
/// assert!(batch.outcomes[0].result.is_some());
/// assert!(batch.outcomes[1].result.is_none());
/// ```
pub struct QueryEngine<'db, E: Element, D: SequenceDistance<E>> {
    db: &'db SubsequenceDatabase<E, D>,
    threads: usize,
    memo_shards: usize,
    slow_query_ns: Option<u64>,
}

impl<'db, E: Element + Send + Sync, D: SequenceDistance<E>> QueryEngine<'db, E, D> {
    /// Creates an engine over `db`, initially sequential (`threads = 1`).
    pub fn new(db: &'db SubsequenceDatabase<E, D>) -> Self {
        QueryEngine {
            db,
            threads: 1,
            memo_shards: 16,
            slow_query_ns: None,
        }
    }

    /// Sets the worker-thread count: `0` means one worker per available
    /// hardware thread, `1` runs the batch inline on the caller. Results are
    /// bit-identical at every setting.
    pub fn with_threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// Sets the number of mutex shards of the verification memo.
    pub fn with_memo_shards(mut self, shards: usize) -> Self {
        self.memo_shards = shards.max(1);
        self
    }

    /// Enables the slow-query log: every executed query is span-traced, its
    /// spans flushed into the global [`ssr_obs::trace_ring`], and a query
    /// slower than `threshold_ms` dumps its span tree and statistics to
    /// stderr. Tracing records deterministic trace ids (the query's slot in
    /// its batch) and never changes results or counters — only wall-clock
    /// observations ride along. `None` (the default) skips all of it.
    pub fn with_slow_query_log(mut self, threshold_ms: Option<u64>) -> Self {
        self.slow_query_ns = threshold_ms.map(|ms| ms.saturating_mul(1_000_000));
        self
    }

    /// The database the engine queries.
    pub fn database(&self) -> &'db SubsequenceDatabase<E, D> {
        self.db
    }

    /// The resolved worker-thread count batches will use.
    pub fn threads(&self) -> usize {
        resolve_threads(self.threads)
    }

    /// **Type I batch** — range query over every query in the batch (see
    /// [`SubsequenceDatabase::query_type1`]). No memo: a single Type I pass
    /// already verifies each pair at most once, so caching could never hit.
    pub fn batch_type1(
        &self,
        queries: &[Sequence<E>],
        epsilon: f64,
    ) -> BatchOutcome<Vec<SubsequenceMatch>> {
        self.run(queries, false, |query, ctx| {
            self.db.query_type1_ctx(query, epsilon, ctx)
        })
    }

    /// **Type II batch** — longest similar subsequence per query (see
    /// [`SubsequenceDatabase::query_type2`]). No memo, as for Type I.
    pub fn batch_type2(
        &self,
        queries: &[Sequence<E>],
        epsilon: f64,
    ) -> BatchOutcome<Option<SubsequenceMatch>> {
        self.run(queries, false, |query, ctx| {
            self.db.query_type2_ctx(query, epsilon, ctx)
        })
    }

    /// **Type III batch** — nearest pair per query (see
    /// [`SubsequenceDatabase::query_type3`]). The shared memo makes the
    /// ε-sweep cheap: pairs verified at one radius are reused at the next
    /// instead of being recomputed.
    pub fn batch_type3(
        &self,
        queries: &[Sequence<E>],
        epsilon_max: f64,
        epsilon_increment: f64,
    ) -> BatchOutcome<Option<SubsequenceMatch>> {
        self.run(queries, true, |query, ctx| {
            self.db
                .query_type3_ctx(query, epsilon_max, epsilon_increment, ctx)
        })
    }

    /// Shared batch driver: dedup exact-duplicate queries, fan the distinct
    /// ones out over the worker pool, merge timings and replicate outcomes
    /// back into input order. `use_memo` attaches the shared verification
    /// memo; only query types that revisit pairs (Type III) benefit.
    fn run<R, F>(&self, queries: &[Sequence<E>], use_memo: bool, run_one: F) -> BatchOutcome<R>
    where
        R: Send + Clone,
        F: Fn(&Sequence<E>, &mut ExecCtx<'_>) -> QueryOutcome<R> + Sync,
    {
        let threads = self.threads();
        let started = Instant::now();

        // Exact-duplicate detection by element comparison (elements are not
        // hashable in general — trajectory points are floats). Quadratic in
        // the number of *distinct* queries, which is fine for realistic
        // batches; the length pre-check makes misses cheap.
        let mut unique: Vec<usize> = Vec::new();
        let mut assignment: Vec<usize> = Vec::with_capacity(queries.len());
        for query in queries {
            let slot = unique.iter().position(|&u| {
                queries[u].len() == query.len() && queries[u].elements() == query.elements()
            });
            match slot {
                Some(s) => assignment.push(s),
                None => {
                    // This query claims the next slot; `unique[slot]` records
                    // the index of the slot's first occurrence.
                    assignment.push(unique.len());
                    unique.push(assignment.len() - 1);
                }
            }
        }

        let memo = VerificationMemo::new(self.memo_shards);
        let slow_query_ns = self.slow_query_ns;
        let executed = parallel_map(threads, &unique, |slot, &query_index| {
            let mut ctx = if use_memo {
                ExecCtx::with_memo(&memo, slot)
            } else {
                ExecCtx::detached()
            };
            if slow_query_ns.is_some() {
                // Deterministic trace id: the query's dedup slot.
                ctx = ctx.with_trace(slot as u64);
            }
            let query_started = Instant::now();
            let outcome = run_one(&queries[query_index], &mut ctx);
            if let (Some(threshold), Some(trace)) = (slow_query_ns, ctx.trace.as_ref()) {
                trace.flush_to(ssr_obs::trace_ring());
                let elapsed_ns = query_started.elapsed().as_nanos() as u64;
                if elapsed_ns >= threshold {
                    eprintln!(
                        "[ssr] slow query #{slot} ({:.3}ms >= {:.3}ms): {:?}\n{}",
                        elapsed_ns as f64 / 1e6,
                        threshold as f64 / 1e6,
                        outcome.stats,
                        trace.render_tree(),
                    );
                }
            }
            (outcome, ctx.timings)
        });

        let mut timings = StageTimings::default();
        for (_, t) in &executed {
            timings.merge(t);
        }
        let outcomes = assignment
            .iter()
            .map(|&slot| executed[slot].0.clone())
            .collect();
        BatchOutcome {
            outcomes,
            timings,
            wall_ns: started.elapsed().as_nanos() as u64,
            threads,
            unique_queries: unique.len(),
            memo_entries: memo.len(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::FrameworkConfig;
    use ssr_distance::Levenshtein;
    use ssr_sequence::Symbol;

    fn seq(text: &str) -> Sequence<Symbol> {
        Sequence::new(text.chars().map(Symbol::from_char).collect())
    }

    fn planted_db() -> SubsequenceDatabase<Symbol, Levenshtein> {
        let config = FrameworkConfig::new(8).with_max_shift(1);
        SubsequenceDatabase::builder(config, Levenshtein::new())
            .add_sequence(seq("MMMMMMMMACDEFGHIKLMNPQRSTVWYMMMMMMMM"))
            .add_sequence(seq("WWWWWWWWWWWWWWWWWWWWWWWWWWWWWWWW"))
            .build()
            .unwrap()
    }

    fn queries() -> Vec<Sequence<Symbol>> {
        vec![
            seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY"),
            seq("QQQQQQQQQQQQQQQQQQQQ"),
            seq("MMMMMMMMACDEFGHIKLMNPQRSTVWY"),
            // Exact duplicate of the first query: executed once.
            seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY"),
        ]
    }

    #[test]
    fn batch_type2_matches_sequential_queries() {
        let db = planted_db();
        let engine = QueryEngine::new(&db).with_threads(4);
        let batch = engine.batch_type2(&queries(), 3.0);
        assert_eq!(batch.outcomes.len(), 4);
        assert_eq!(batch.unique_queries, 3);
        assert_eq!(batch.threads, 4);
        for (query, outcome) in queries().iter().zip(&batch.outcomes) {
            let direct = db.query_type2(query, 3.0);
            assert_eq!(outcome.result, direct.result);
            assert_eq!(outcome.stats, direct.stats);
        }
    }

    #[test]
    fn thread_counts_give_identical_outcomes() {
        let db = planted_db();
        let qs = queries();
        let sequential = QueryEngine::new(&db).batch_type1(&qs, 3.0);
        for threads in [2, 4, 0] {
            let parallel = QueryEngine::new(&db)
                .with_threads(threads)
                .batch_type1(&qs, 3.0);
            for (a, b) in sequential.outcomes.iter().zip(&parallel.outcomes) {
                assert_eq!(a.result, b.result);
                assert_eq!(a.stats, b.stats);
            }
            assert_eq!(sequential.unique_queries, parallel.unique_queries);
        }
    }

    #[test]
    fn duplicate_queries_share_one_execution() {
        let db = planted_db();
        let engine = QueryEngine::new(&db);
        let q = seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY");
        let batch = engine.batch_type2(&[q.clone(), q.clone(), q], 3.0);
        assert_eq!(batch.unique_queries, 1);
        assert_eq!(batch.outcomes.len(), 3);
        assert_eq!(batch.outcomes[0], batch.outcomes[1]);
        assert_eq!(batch.outcomes[0], batch.outcomes[2]);
        // Totals replicate the shared execution per input occurrence.
        let total = batch.total_stats();
        assert_eq!(
            total.verification_calls,
            3 * batch.outcomes[0].stats.verification_calls
        );
    }

    #[test]
    fn type3_sweep_reuses_memoised_verifications() {
        let db = planted_db();
        let q = vec![seq("YYYYACDEFGHIKLMNPQRSTVWYYYYY")];
        let engine = QueryEngine::new(&db);
        let batch = engine.batch_type3(&q, 10.0, 1.0);
        let direct = db.query_type3(&q[0], 10.0, 1.0);
        // Same answer as the memo-less sequential API...
        assert_eq!(batch.outcomes[0].result, direct.result);
        // ...for no more (and usually far fewer) verification calls.
        assert!(batch.outcomes[0].stats.verification_calls <= direct.stats.verification_calls);
        assert!(batch.memo_entries > 0);
    }

    #[test]
    fn batch_reports_timings_and_wall_clock() {
        let db = planted_db();
        let batch = QueryEngine::new(&db)
            .with_threads(2)
            .batch_type2(&queries(), 3.0);
        assert!(batch.wall_ns > 0);
        assert!(batch.timings.total_ns() > 0);
        assert!(batch.timings.filter_ns > 0);
        assert!(batch.timings.verify_ns > 0);
        let total = batch.total_stats();
        assert!(total.segments > 0);
        assert!(total.verification_calls > 0);
    }

    #[test]
    fn empty_batch_is_fine() {
        let db = planted_db();
        let batch = QueryEngine::new(&db).with_threads(4).batch_type1(&[], 1.0);
        assert!(batch.outcomes.is_empty());
        assert_eq!(batch.unique_queries, 0);
        assert_eq!(batch.memo_entries, 0);
    }
}
